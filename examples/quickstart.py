"""Quickstart — a continuous query in ten lines.

Declares a stream, registers a sliding-window aggregation, feeds tuples,
and prints one result batch per window slide.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DataCellEngine


def main() -> None:
    engine = DataCellEngine()
    engine.create_stream("readings", [("sensor", "int"), ("value", "int")])

    # Continuous query: per sliding window of 1000 tuples (advancing every
    # 200), the per-sensor sum of readings above a threshold.
    query = engine.submit(
        "SELECT sensor, sum(value), count(*) "
        "FROM readings [RANGE 1000 SLIDE 200] "
        "WHERE value > 50 GROUP BY sensor ORDER BY sensor"
    )

    # Show what the DataCell rewriter built out of that SQL.
    print("== incremental plan ==")
    print(engine.explain_continuous(query.sql))
    print()

    rng = np.random.default_rng(7)
    for burst in range(5):
        engine.feed(
            "readings",
            columns={
                "sensor": rng.integers(0, 4, 600),
                "value": rng.integers(0, 100, 600),
            },
        )
        engine.run_until_idle()

    print(f"== {len(query.results())} window results ==")
    for batch in query.results():
        print(
            f"window {batch.window_index:2d} "
            f"({batch.response_seconds * 1000:.2f} ms): {batch.rows()}"
        )


if __name__ == "__main__":
    main()

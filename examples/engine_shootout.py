"""Engine shootout — DataCell vs DataCellR vs SystemX on one workload.

A miniature, self-contained rerun of the paper's §4.2 narrative: the same
join query and the same data go through the incremental DataCell, the
re-evaluating DataCellR, and the tuple-at-a-time SystemX; all three must
produce identical windows, and their total times show the scalability
story (run with a bigger SCALE to watch the crossover move).

Run:  python examples/engine_shootout.py
"""

import time

import numpy as np

from repro import DataCellEngine
from repro.dsms import SystemX
from repro.kernel.atoms import Atom
from repro.kernel.storage import Schema
from repro.workloads import join_streams

SCALE = 8_192  # window size; 64 basic windows
SLIDES = 12


def main() -> None:
    step = SCALE // 64
    sql = (
        f"SELECT max(s1.x1), avg(s2.x1), count(*) "
        f"FROM stream1 s1 [RANGE {SCALE} SLIDE {step}], "
        f"stream2 s2 [RANGE {SCALE} SLIDE {step}] "
        f"WHERE s1.x2 = s2.x2"
    )
    workload = join_streams(SCALE + SLIDES * step, 3e-4, seed=23)

    # --- DataCell (incremental) and DataCellR (re-evaluation) ----------
    results = {}
    times = {}
    for mode in ("incremental", "reeval"):
        engine = DataCellEngine()
        engine.create_stream("stream1", [("x1", "int"), ("x2", "int")])
        engine.create_stream("stream2", [("x1", "int"), ("x2", "int")])
        query = engine.submit(sql, mode=mode)
        start = time.perf_counter()
        engine.feed("stream1", columns=workload.left_columns())
        engine.feed("stream2", columns=workload.right_columns())
        engine.run_until_idle()
        times[mode] = time.perf_counter() - start
        results[mode] = query.result_rows()

    # --- SystemX --------------------------------------------------------
    systemx = SystemX()
    schema = Schema.of(("x1", Atom.INT), ("x2", Atom.INT))
    systemx.create_stream("stream1", schema)
    systemx.create_stream("stream2", schema)
    xquery = systemx.submit(sql)
    start = time.perf_counter()
    systemx.push_many("stream1", workload.left_rows())
    systemx.push_many("stream2", workload.right_rows())
    times["systemx"] = time.perf_counter() - start
    results["systemx"] = xquery.results

    # --- agreement and timings ------------------------------------------
    windows = len(results["incremental"])
    assert windows == len(results["reeval"]) == len(results["systemx"])
    for k in range(windows):
        a = [tuple(r) for r in results["incremental"][k]]
        b = [tuple(r) for r in results["reeval"][k]]
        c = [tuple(r) for r in results["systemx"][k]]
        assert len(a) == len(b) == len(c)
        for ra, rb, rc in zip(a, b, c):
            assert ra[0] == rb[0] == rc[0] and ra[2] == rb[2] == rc[2]
            assert abs(ra[1] - rb[1]) < 1e-9 and abs(ra[1] - rc[1]) < 1e-9

    print(f"all three engines agree on {windows} windows of {sql!r}\n")
    print(f"{'engine':12s}  total seconds")
    for name, label in (
        ("incremental", "DataCell"),
        ("reeval", "DataCellR"),
        ("systemx", "SystemX"),
    ):
        print(f"{label:12s}  {times[name]:.4f}")
    print("\n(raise SCALE to watch DataCell pull ahead — Figure 9's story)")


if __name__ == "__main__":
    main()

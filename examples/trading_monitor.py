"""Trading monitor — two correlated streams, a window join, and landmarks.

The scenario from the paper's finance motivation: a trades stream and a
quotes stream are joined on the instrument id inside sliding windows to
watch realized prices against quoted mid-prices, while a landmark query
keeps running session statistics.

Demonstrates: multi-stream window joins, landmark windows, several
concurrent continuous queries over shared streams, and the response-time
metadata on each result batch.

Run:  python examples/trading_monitor.py
"""

import numpy as np

from repro import DataCellEngine

INSTRUMENTS = 8


def make_market_data(count: int, seed: int = 42):
    rng = np.random.default_rng(seed)
    instruments = rng.integers(0, INSTRUMENTS, count)
    base = 100 + instruments * 10
    trades = {
        "instrument": instruments,
        "price": base + rng.integers(-5, 6, count),
        "size": rng.integers(1, 100, count),
    }
    quote_instruments = rng.integers(0, INSTRUMENTS, count)
    quotes = {
        "instrument": quote_instruments,
        "mid": 100 + quote_instruments * 10 + rng.integers(-2, 3, count),
    }
    return trades, quotes


def main() -> None:
    engine = DataCellEngine()
    engine.create_stream(
        "trades", [("instrument", "int"), ("price", "int"), ("size", "int")]
    )
    engine.create_stream("quotes", [("instrument", "int"), ("mid", "int")])

    # 1. Window join: per instrument, how far do trades print from quotes?
    spread = engine.submit(
        "SELECT t.instrument, avg(t.price), avg(q.mid), count(*) "
        "FROM trades t [RANGE 512 SLIDE 128], quotes q [RANGE 512 SLIDE 128] "
        "WHERE t.instrument = q.instrument "
        "GROUP BY t.instrument ORDER BY t.instrument",
        name="spread-monitor",
    )

    # 2. Landmark session statistics: volume since the open, never expiring.
    session = engine.submit(
        "SELECT sum(size), max(price), count(*) "
        "FROM trades [LANDMARK SLIDE 256]",
        name="session-stats",
    )

    # 3. Large-trade ticker: plain selection, small sliding window.
    ticker = engine.submit(
        "SELECT instrument, price, size FROM trades [RANGE 128 SLIDE 64] "
        "WHERE size > 90",
        name="block-trades",
    )

    trades, quotes = make_market_data(4_000)
    batch = 500
    for offset in range(0, 4_000, batch):
        engine.feed(
            "trades",
            columns={k: v[offset : offset + batch] for k, v in trades.items()},
        )
        engine.feed(
            "quotes",
            columns={k: v[offset : offset + batch] for k, v in quotes.items()},
        )
        engine.run_until_idle()

    print("== spread monitor (last window) ==")
    last = spread.last()
    for instrument, avg_price, avg_mid, pairs in last.rows():
        print(
            f"  instrument {instrument}: trades avg {avg_price:7.2f} vs "
            f"mid {avg_mid:7.2f} over {pairs} pairs"
        )

    print("\n== session statistics per landmark step ==")
    for batch_result in session.results()[-5:]:
        volume, high, count = batch_result.rows()[0]
        print(
            f"  window {batch_result.window_index:2d}: volume={volume:7d} "
            f"high={high} trades={count}"
        )

    print("\n== block trades in the last window ==")
    for row in (ticker.last().rows() or [("(none)",)])[:10]:
        print("  ", row)

    mean_ms = 1000 * sum(spread.response_times()) / max(len(spread.results()), 1)
    print(f"\nspread monitor: {len(spread.results())} windows, "
          f"mean response {mean_ms:.2f} ms")


if __name__ == "__main__":
    main()

"""Sensor observatory — time-based windows, receptor threads, adaptation.

Models the paper's scientific-instrument motivation (LSST/LHC style): an
instrument emits timestamped readings at a variable rate; time-based
sliding windows aggregate them, and the m-chunk controller adapts the
incremental plan's processing granularity to the observed response times.

Demonstrates: time-based windows (including empty slices), explicit
arrival timestamps, threaded receptors with the background scheduler, and
the AdaptiveChunker on a count-based monitoring query.

Run:  python examples/sensor_observatory.py
"""

import time

import numpy as np

from repro import AdaptiveChunker, DataCellEngine

US = 1_000_000


def main() -> None:
    engine = DataCellEngine()
    engine.create_stream("photons", [("ccd", "int"), ("flux", "int")])

    # Time-based query: per 40-second window sliding every 10 seconds,
    # the per-CCD mean flux of bright events.
    skymap = engine.submit(
        "SELECT ccd, avg(flux), count(*) "
        "FROM photons [RANGE 40 SECONDS SLIDE 10 SECONDS] "
        "WHERE flux > 700 GROUP BY ccd ORDER BY ccd",
        name="skymap",
    )

    # Simulate 5 minutes of arrivals with a quiet gap in the middle —
    # the empty basic windows are recognized and skipped (paper §3).
    rng = np.random.default_rng(3)
    timestamps = []
    clock = 0
    for second in range(300):
        if 120 <= second < 170:
            continue  # cloud cover: no photons at all
        for __ in range(int(rng.integers(5, 30))):
            timestamps.append(second * US + int(rng.integers(0, US)))
    timestamps.sort()
    count = len(timestamps)
    engine.feed(
        "photons",
        columns={
            "ccd": rng.integers(0, 6, count),
            "flux": rng.integers(0, 1000, count),
        },
        timestamps=np.asarray(timestamps, dtype=np.int64),
    )
    engine.run_until_idle()

    print(f"== skymap: {len(skymap.results())} time windows ==")
    for batch in skymap.results():
        marker = " (empty window)" if len(batch) == 0 else ""
        print(f"  window {batch.window_index:2d}: {len(batch):3d} CCD rows{marker}")

    # ------------------------------------------------------------------
    # Adaptive chunking on a high-rate monitoring query.
    # ------------------------------------------------------------------
    engine2 = DataCellEngine()
    engine2.create_stream("photons", [("ccd", "int"), ("flux", "int")])
    monitor = engine2.submit(
        "SELECT ccd, max(flux) FROM photons [RANGE 65536 SLIDE 8192] "
        "GROUP BY ccd ORDER BY ccd",
        name="monitor",
    )
    chunker = AdaptiveChunker(steps_per_level=4, max_m=512)
    factory = monitor.factory
    fed = 0
    window, step = 65_536, 8_192
    for index in range(40):
        take = window if index == 0 else step
        engine2.feed(
            "photons",
            columns={
                "ccd": rng.integers(0, 6, take),
                "flux": rng.integers(0, 1000, take),
            },
        )
        fed += take
        batch = factory.step_chunked(chunker.current_m)
        chunker.observe(batch.response_seconds)
    print("\n== adaptive chunking on the monitor query ==")
    for m, mean in chunker.history:
        print(f"  m = {m:4d}: mean response {mean * 1000:7.3f} ms")
    print(f"  controller settled on m = {chunker.current_m}"
          f" ({'frozen' if chunker.frozen else 'still exploring'})")

    # ------------------------------------------------------------------
    # Threaded ingestion: receptor thread + background scheduler.
    # ------------------------------------------------------------------
    engine3 = DataCellEngine()
    engine3.create_stream("photons", [("ccd", "int"), ("flux", "int")])
    live = engine3.submit(
        "SELECT count(*) FROM photons [RANGE 2048 SLIDE 1024]", name="live"
    )
    receptor = engine3.receptor(live, "photons")
    engine3.start()
    try:
        receptor.start(iter([(int(i % 6), int(i % 1000)) for i in range(10_240)]))
        receptor.join(timeout=10.0)
        deadline = time.time() + 10.0
        while time.time() < deadline and len(live.results()) < 9:
            time.sleep(0.01)
    finally:
        engine3.stop()
    print(f"\n== threaded ingest: {len(live.results())} windows, "
          f"all of size {live.last().rows()[0][0]} ==")


if __name__ == "__main__":
    main()

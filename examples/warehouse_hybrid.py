"""Warehouse hybrid — streams joined with stored tables, plus one-time SQL.

The paper's data-warehousing motivation: new data streams in continuously
and must be analyzed online *against existing stored data*, then archived
for later one-time analysis.  DataCell's single processing fabric handles
both (Figure 1: a factory can read baskets and tables alike).

Demonstrates: stream ⋈ table continuous queries, archiving stream windows
into a table, and one-time queries over the archive with the same SQL
front-end.

Run:  python examples/warehouse_hybrid.py
"""

import numpy as np

from repro import DataCellEngine


def main() -> None:
    engine = DataCellEngine()

    # Stored dimension data: the product catalog.
    catalog = engine.create_table(
        "products", [("product", "int"), ("price", "int")]
    )
    catalog.append_rows([(p, 5 + 3 * p) for p in range(20)])

    # The archive fact table, filled from the stream as windows complete.
    engine.create_table("sales_archive", [("product", "int"), ("qty", "int")])

    # The live order stream.
    engine.create_stream("orders", [("product", "int"), ("qty", "int")])

    # Hybrid continuous query: per window, order count per *priced* product
    # (products above a price threshold — a stored-table predicate).
    hot_products = engine.submit(
        "SELECT o.product, sum(o.qty) "
        "FROM orders o [RANGE 500 SLIDE 250], products p "
        "WHERE o.product = p.product AND p.price > 30 "
        "GROUP BY o.product ORDER BY o.product",
        name="hot-products",
    )

    # Feed bursts, archiving every consumed window into the warehouse.
    rng = np.random.default_rng(11)
    for __ in range(8):
        products = rng.integers(0, 20, 250)
        qty = rng.integers(1, 10, 250)
        engine.feed("orders", columns={"product": products, "qty": qty})
        engine.run_until_idle()
        engine.catalog.table("sales_archive").append_columns(
            {"product": products, "qty": qty}
        )

    print("== hot products (priced > 30), last window ==")
    for product, total in hot_products.last().rows():
        print(f"  product {product:2d}: {total:4d} units")

    # One-time analysis over everything archived so far, same SQL dialect.
    summary = engine.query_once(
        "SELECT product, sum(qty) AS units FROM sales_archive "
        "GROUP BY product ORDER BY units DESC LIMIT 5"
    )
    print("\n== top 5 products in the archive (one-time query) ==")
    for product, units in zip(summary["product"], summary["units"]):
        print(f"  product {product:2d}: {units:4d} units")

    revenue = engine.query_once(
        "SELECT sum(s.qty * p.price) FROM sales_archive s, products p "
        "WHERE s.product = p.product"
    )
    print(f"\narchived revenue so far: {revenue['col0'][0]}")

    print(f"\nhot-products produced {len(hot_products.results())} windows; "
          f"archive holds {engine.catalog.table('sales_archive').count} rows")


if __name__ == "__main__":
    main()

"""Figure 6 — varying window size, and landmark windows.

(a) Q1 with three window sizes at a fixed 512 basic windows (paper: the
    bigger the window the bigger DataCell's advantage, exceeding 50 %).
(b) Q3 as a landmark query (paper: DataCellR grows linearly with the
    ever-growing landmark window; DataCell drops to a constant after the
    first window).
"""

import pytest

from repro.bench import drive_landmark, drive_single, report
from repro.workloads import selection_stream

from conftest import fresh_engine, q1_sql, q3_sql

BASIC_WINDOWS = 512
WINDOW_SIZES = [51_200, 204_800, 819_200]  # paper: 1e6 / 1e7 / 1e8, scaled
WINDOWS = 4

LANDMARK_STEP = 25_000  # paper: 2.5e6, scaled ÷100
LANDMARK_WINDOWS = 40


def _steady(mode, window):
    step = window // BASIC_WINDOWS
    workload = selection_stream(
        window + WINDOWS * step, selectivity=0.2, seed=60, domain=100
    )
    engine = fresh_engine()
    query = engine.submit(q1_sql(window, step, workload.threshold), mode=mode)
    timings = drive_single(
        engine, query, "stream", workload.columns(), window, step, WINDOWS
    )
    return timings.mean_response(skip_first=1)


class TestFig6a:
    def test_fig6a_vary_window_size(self, benchmark):
        rows = []
        for window in WINDOW_SIZES:
            reev = _steady("reeval", window)
            incr = _steady("incremental", window)
            rows.append((window, reev, incr))
        report(
            "fig6a",
            "Figure 6(a) — Q1 slide response time vs window size (seconds)",
            ["|W|", "DataCellR", "DataCell"],
            rows,
        )
        # the advantage grows with the window and exceeds 50 % at the largest
        # (at the smallest window the merge overhead makes it a near-tie —
        # the re-evaluation-friendly regime of paper §4.2)
        for window, reev, incr in rows[1:]:
            assert incr < reev, rows
        assert rows[-1][2] < rows[-1][1] * 0.5, rows
        ratios = [incr / reev for __, reev, incr in rows]
        assert ratios[-1] < ratios[0], (ratios, "advantage should grow")

        window = WINDOW_SIZES[0]
        step = window // BASIC_WINDOWS
        workload = selection_stream(window + 50 * step, 0.2, seed=61, domain=100)
        engine = fresh_engine()
        query = engine.submit(q1_sql(window, step, workload.threshold))
        engine.feed("stream", columns=workload.columns())
        query.factory.step()
        benchmark.pedantic(lambda: query.factory.step(), rounds=10, iterations=1)


class TestFig6b:
    def test_fig6b_landmark(self, benchmark):
        workload = selection_stream(
            LANDMARK_STEP * (LANDMARK_WINDOWS + 1), selectivity=0.2, seed=62, domain=100
        )
        sql = q3_sql(LANDMARK_STEP, workload.threshold)

        engine = fresh_engine()
        reev_query = engine.submit(sql, mode="reeval")
        reev = drive_landmark(
            engine, reev_query, "stream", workload.columns(),
            LANDMARK_STEP, LANDMARK_WINDOWS,
        )
        engine = fresh_engine()
        incr_query = engine.submit(sql, mode="incremental")
        incr = drive_landmark(
            engine, incr_query, "stream", workload.columns(),
            LANDMARK_STEP, LANDMARK_WINDOWS,
        )
        rows = [
            (k + 1, reev.response_seconds[k], incr.response_seconds[k])
            for k in range(LANDMARK_WINDOWS)
        ]
        report(
            "fig6b",
            "Figure 6(b) — Q3 landmark response time per window (seconds)",
            ["window", "DataCellR", "DataCell"],
            rows,
        )
        # DataCellR grows with the landmark window: last quarter ≫ first quarter
        quarter = LANDMARK_WINDOWS // 4
        reev_early = sum(reev.response_seconds[1 : 1 + quarter]) / quarter
        reev_late = sum(reev.response_seconds[-quarter:]) / quarter
        assert reev_late > reev_early * 2, (reev_early, reev_late)
        # DataCell stays flat: late mean within 5x of early mean (no growth trend)
        incr_early = sum(incr.response_seconds[1 : 1 + quarter]) / quarter
        incr_late = sum(incr.response_seconds[-quarter:]) / quarter
        assert incr_late < incr_early * 5, (incr_early, incr_late)
        assert incr_late < reev_late, "incremental must win on late windows"

        benchmark.pedantic(
            lambda: None, rounds=1, iterations=1
        )  # series already measured above

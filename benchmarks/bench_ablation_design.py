"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. *Bulk vs tuple-at-a-time substrate* — the kernel's vectorized selection
   against a per-tuple Python loop over the same data: the architectural
   gap Figure 9 rests on, isolated from everything else.
2. *Intermediate caching* — an incremental factory with partial reuse vs
   the same factory forced to reprocess every basic window (re-evaluation),
   isolating the value of the cached intermediates.
3. *Fixed m-chunking sweep* — response time vs a fixed ``m`` (complements
   Figure 8's adaptive run and locates the sweet spot statically).
"""

import time

import numpy as np
import pytest

from repro.bench import drive_single, report
from repro.kernel.algebra.select import thetaselect
from repro.kernel.bat import BAT
from repro.workloads import selection_stream

from conftest import fresh_engine, q1_sql


class TestBulkVsTuple:
    def test_ablation_bulk_processing(self, benchmark):
        count = 200_000
        rng = np.random.default_rng(96)
        values = rng.integers(0, 1000, count).astype(np.int64)
        bat = BAT.from_array(values)

        t0 = time.perf_counter()
        bulk = thetaselect(bat, 800, ">")
        bulk_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        hits = [i for i, v in enumerate(values.tolist()) if v > 800]
        tuple_seconds = time.perf_counter() - t0

        assert len(bulk) == len(hits)
        report(
            "ablation_bulk",
            f"Ablation — selection over {count} tuples",
            ["path", "seconds"],
            [("vectorized kernel", bulk_seconds), ("tuple-at-a-time", tuple_seconds)],
        )
        assert bulk_seconds * 5 < tuple_seconds, (bulk_seconds, tuple_seconds)
        benchmark.pedantic(lambda: thetaselect(bat, 800, ">"), rounds=10, iterations=1)


class TestIntermediateCaching:
    def test_ablation_partial_reuse(self, benchmark):
        """The whole point of the paper: reuse beats recompute per slide."""
        window, step, windows = 204_800, 400, 8
        workload = selection_stream(
            window + windows * step, 0.2, seed=97, domain=100
        )
        sql = q1_sql(window, step, workload.threshold)
        engine = fresh_engine()
        cached = drive_single(
            engine, engine.submit(sql), "stream", workload.columns(),
            window, step, windows,
        )
        engine = fresh_engine()
        recompute = drive_single(
            engine, engine.submit(sql, mode="reeval"), "stream",
            workload.columns(), window, step, windows,
        )
        rows = [
            ("with cached partials", cached.mean_response(skip_first=1)),
            ("recompute (no reuse)", recompute.mean_response(skip_first=1)),
        ]
        report(
            "ablation_reuse",
            "Ablation — steady-state slide cost with/without partial reuse",
            ["strategy", "seconds"],
            rows,
        )
        assert rows[0][1] * 2 < rows[1][1], rows
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)


class TestFixedChunkSweep:
    def test_ablation_fixed_m_sweep(self, benchmark):
        window, step, windows = 131_072, 16_384, 6
        workload = selection_stream(
            window + 12 * windows * step, 0.2, seed=98, domain=100
        )
        sql = q1_sql(window, step, workload.threshold)
        rows = []
        for m in (1, 2, 4, 8, 16, 64, 256):
            engine = fresh_engine()
            query = engine.submit(sql)
            timings = drive_single(
                engine, query, "stream", workload.columns(),
                window, step, windows, chunk_m=m,
            )
            rows.append((m, timings.mean_response(skip_first=1)))
        report(
            "ablation_chunks",
            "Ablation — response time vs fixed chunk count m",
            ["m", "seconds"],
            rows,
        )
        best_m, best = min(rows, key=lambda r: r[1])
        # some m > 1 beats m = 1, and very large m is worse than the best
        assert best_m > 1, rows
        assert rows[-1][1] > best, rows
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Observability overhead — tracing must cost < 5 % on the fig4 workload.

Drives the Figure 4(a) Q1 micro-workload through the *scheduler* path
(``feed`` + ``run_until_idle``, where spans, histograms and the profiler
observer actually sit) twice per round — once with ``observability=False``
and once with the default-on tracing — in alternating order, and compares
the medians.  The acceptance bound is 5 %: tracing is default-on, so its
cost has to be invisible next to the per-firing kernel work.

Runs standalone (``python benchmarks/bench_obs_overhead.py [--smoke]``)
or under pytest like the other figure benchmarks.  ``--smoke`` shrinks
the workload and relaxes the bound — it checks the harness end-to-end on
CI, not the committed number (benchmarks/results/obs_overhead.txt).
"""

import statistics
import sys
import time

from repro import DataCellEngine
from repro.bench import report
from repro.workloads import selection_stream

WINDOW, BASIC_WINDOWS = 204_800, 512
STEP = WINDOW // BASIC_WINDOWS
WINDOWS = 20
ROUNDS = 5
BOUND = 1.05

SMOKE_SCALE = 16     # WINDOW/STEP ÷ 16, 2 rounds
SMOKE_BOUND = 1.50   # noise floor dominates at smoke scale


def drive(columns, window, step, windows, observability):
    """One timed run: initial window + ``windows`` slides via the scheduler."""
    engine = DataCellEngine(observability=observability)
    engine.create_stream("stream", [("x1", "int"), ("x2", "int")])
    engine.submit(
        f"SELECT x1, sum(x2) FROM stream [RANGE {window} SLIDE {step}] "
        f"WHERE x1 > 50 GROUP BY x1"
    )
    offsets = [window + k * step for k in range(windows + 1)]
    start = time.perf_counter()
    fed = 0
    for end in offsets:
        engine.feed(
            "stream", columns={name: col[fed:end] for name, col in columns.items()}
        )
        fed = end
        engine.run_until_idle()
    return time.perf_counter() - start


def measure(window, step, windows, rounds):
    workload = selection_stream(
        window + (windows + 1) * step, selectivity=0.5, seed=13, domain=100
    )
    columns = workload.columns()
    drive(columns, window, step, windows, observability=False)  # warm-up
    off, on = [], []
    for __ in range(rounds):
        off.append(drive(columns, window, step, windows, observability=False))
        on.append(drive(columns, window, step, windows, observability=True))
    return statistics.median(off), statistics.median(on)


def run(smoke=False):
    if smoke:
        window, step, windows, rounds, bound = (
            WINDOW // SMOKE_SCALE, STEP // SMOKE_SCALE, 5, 2, SMOKE_BOUND
        )
    else:
        window, step, windows, rounds, bound = WINDOW, STEP, WINDOWS, ROUNDS, BOUND
    base, traced = measure(window, step, windows, rounds)
    ratio = traced / base
    rows = [
        ("observability off", base, 1.0),
        ("observability on", traced, ratio),
    ]
    if not smoke:
        report(
            "obs_overhead",
            f"Observability overhead — fig4 Q1 ({windows} windows, "
            f"median of {rounds})",
            ["configuration", "seconds", "ratio"],
            rows,
        )
    else:
        print(f"smoke: off={base:.4f}s on={traced:.4f}s ratio={ratio:.4f}")
    assert ratio < bound, (
        f"tracing overhead {100 * (ratio - 1):.1f}% exceeds the "
        f"{100 * (bound - 1):.0f}% bound (off={base:.4f}s on={traced:.4f}s)"
    )
    return ratio


def test_obs_overhead_under_bound():
    run(smoke=False)


if __name__ == "__main__":
    raise SystemExit(0 if run(smoke="--smoke" in sys.argv[1:]) else 1)

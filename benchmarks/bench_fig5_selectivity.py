"""Figure 5 — varying selectivity.

(a) Q1 with selection selectivity 10–90 % (paper: both grow close to
    linear; DataCellR's gradient is much steeper).
(b) Q2 with join selectivity 1e-5 % – 1e-2 % (paper: same, amplified by the
    more expensive join operators).

Scaled geometry: Q1 |W| = 102400 / 512 bw; Q2 |W| = 25600 / 64 bw.
"""

import pytest

from repro.bench import drive_join, drive_single, report
from repro.workloads import join_streams, selection_stream

from conftest import fresh_engine, q1_sql, q2_sql

WINDOWS = 6

Q1_WINDOW, Q1_BW = 102_400, 512
Q1_STEP = Q1_WINDOW // Q1_BW

Q2_WINDOW, Q2_BW = 102_400, 64
Q2_STEP = Q2_WINDOW // Q2_BW

SELECTIVITIES = [0.1, 0.3, 0.5, 0.7, 0.9]
# paper: 1e-5 % .. 1e-2 % == fractions 1e-7 .. 1e-4; we extend one decade so
# the join-output volume effect is unambiguous at laptop scale
JOIN_SELECTIVITIES = [1e-6, 1e-5, 1e-4, 1e-3]


def _q1_steady(mode, selectivity):
    workload = selection_stream(
        Q1_WINDOW + WINDOWS * Q1_STEP, selectivity, seed=50, domain=100
    )
    engine = fresh_engine()
    query = engine.submit(q1_sql(Q1_WINDOW, Q1_STEP, workload.threshold), mode=mode)
    timings = drive_single(
        engine, query, "stream", workload.columns(), Q1_WINDOW, Q1_STEP, WINDOWS
    )
    return timings.mean_response(skip_first=1)


def _q2_steady(mode, join_selectivity):
    workload = join_streams(Q2_WINDOW + WINDOWS * Q2_STEP, join_selectivity, seed=51)
    engine = fresh_engine()
    query = engine.submit(q2_sql(Q2_WINDOW, Q2_STEP), mode=mode)
    timings = drive_join(
        engine,
        query,
        "stream1",
        workload.left_columns(),
        "stream2",
        workload.right_columns(),
        Q2_WINDOW,
        Q2_STEP,
        WINDOWS,
    )
    return timings.mean_response(skip_first=1)


class TestFig5a:
    def test_fig5a_vary_selectivity(self, benchmark):
        rows = []
        for selectivity in SELECTIVITIES:
            reev = _q1_steady("reeval", selectivity)
            incr = _q1_steady("incremental", selectivity)
            rows.append((int(selectivity * 100), reev, incr))
        report(
            "fig5a",
            "Figure 5(a) — Q1 slide response time vs selectivity (seconds)",
            ["sel %", "DataCellR", "DataCell"],
            rows,
        )
        # DataCellR's cost grows visibly with selectivity; DataCell stays below
        # (the lowest-selectivity point is a near-tie at sub-ms times, like
        # the paper's smallest data points).
        assert rows[-1][1] > rows[0][1] * 1.5, rows
        assert all(incr < reev for __, reev, incr in rows[1:]), rows
        # DataCellR's slope is steeper than DataCell's (absolute growth).
        reev_growth = rows[-1][1] - rows[0][1]
        incr_growth = rows[-1][2] - rows[0][2]
        assert reev_growth > incr_growth, rows

        workload = selection_stream(Q1_WINDOW + 50 * Q1_STEP, 0.5, seed=52, domain=100)
        engine = fresh_engine()
        query = engine.submit(q1_sql(Q1_WINDOW, Q1_STEP, workload.threshold))
        engine.feed("stream", columns=workload.columns())
        query.factory.step()
        benchmark.pedantic(lambda: query.factory.step(), rounds=10, iterations=1)


class TestFig5b:
    def test_fig5b_vary_join_selectivity(self, benchmark):
        rows = []
        for join_selectivity in JOIN_SELECTIVITIES:
            reev = _q2_steady("reeval", join_selectivity)
            incr = _q2_steady("incremental", join_selectivity)
            rows.append((join_selectivity, reev, incr))
        report(
            "fig5b",
            "Figure 5(b) — Q2 slide response time vs join selectivity (seconds)",
            ["join sel", "DataCellR", "DataCell"],
            rows,
        )
        # at high join selectivity (big outputs) incremental must win clearly
        assert rows[-1][2] < rows[-1][1], rows
        # re-evaluation cost rises with join selectivity
        assert rows[-1][1] > rows[0][1], rows

        workload = join_streams(Q2_WINDOW + 50 * Q2_STEP, 1e-4, seed=53)
        engine = fresh_engine()
        query = engine.submit(q2_sql(Q2_WINDOW, Q2_STEP))
        engine.feed("stream1", columns=workload.left_columns())
        engine.feed("stream2", columns=workload.right_columns())
        query.factory.step()
        benchmark.pedantic(lambda: query.factory.step(), rounds=5, iterations=1)

"""Figure 9 — comparison against a specialized stream engine ("SystemX").

The paper feeds Q2 (the two-stream join) through the *complete software
stack*: data is read from a CSV file in chunks, parsed, and pushed into
each system; the metric is the **total time** to consume a fixed number of
sliding windows and produce all results.

Geometry: 64 basic windows per window; window sizes 1e3..1e4 (small, panel
a) and 2.5e4..1e5 (large, panel b); 20 slides (paper: 100 — scaled so the
tuple-at-a-time engine finishes in seconds).

Expected shape (paper §4.2): for very small windows plain DataCellR is
excellent and SystemX has a slight edge over DataCell (incremental-logic
overhead dominates); as windows grow DataCell scales best and overtakes
both — "batch processing gains a significant performance gain over the
typical one tuple at a time processing".
"""

import pytest

from repro.bench import report, total_time_datacell, total_time_systemx
from repro.workloads import join_streams, read_csv_chunks, read_csv_rows, write_csv

from conftest import fresh_engine, fresh_systemx, q2_sql

BASIC_WINDOWS = 64
SLIDES = 20
JOIN_SELECTIVITY = 3e-4
# multiples of 64, matching the paper's 1.024e3-style sizes
SMALL_WINDOWS = [1_024, 2_560, 5_120, 10_240]
LARGE_WINDOWS = [25_600, 51_200, 102_400]
CHUNK = 4_096


def _make_files(tmp_path, window):
    step = max(window // BASIC_WINDOWS, 1)
    total = window + SLIDES * step
    workload = join_streams(total, JOIN_SELECTIVITY, seed=90 + window % 97)
    left = tmp_path / f"left_{window}.csv"
    right = tmp_path / f"right_{window}.csv"
    write_csv(left, workload.left_columns(), order=["x1", "x2"])
    write_csv(right, workload.right_columns(), order=["x1", "x2"])
    return left, right, step


def _datacell_total(tmp_path, window, mode):
    left, right, step = _make_files(tmp_path, window)
    engine = fresh_engine()
    query = engine.submit(q2_sql(window, step), mode=mode)
    schema = engine.catalog.stream("stream1").schema
    import time

    start = time.perf_counter()
    left_chunks = read_csv_chunks(left, schema, CHUNK)
    right_chunks = read_csv_chunks(right, schema, CHUNK)
    while True:
        progressed = False
        for stream, chunks in (("stream1", left_chunks), ("stream2", right_chunks)):
            chunk = next(chunks, None)
            if chunk is not None:
                engine.feed(stream, columns=chunk)
                progressed = True
        engine.run_until_idle()
        if not progressed:
            break
    elapsed = time.perf_counter() - start
    assert len(query.results()) == SLIDES + 1, len(query.results())
    return elapsed


def _systemx_total(tmp_path, window):
    left, right, step = _make_files(tmp_path, window)
    systemx = fresh_systemx()
    query = systemx.submit(q2_sql(window, step))
    schema = systemx.catalog.stream("stream1").schema
    import time

    start = time.perf_counter()
    left_rows = read_csv_rows(left, schema)
    right_rows = read_csv_rows(right, schema)
    while True:
        progressed = False
        for stream, rows in (("stream1", left_rows), ("stream2", right_rows)):
            pushed = 0
            for row in rows:
                systemx.push(stream, row)
                pushed += 1
                if pushed >= CHUNK:
                    break
            progressed = progressed or pushed > 0
        if not progressed:
            break
    elapsed = time.perf_counter() - start
    assert len(query.results) == SLIDES + 1, len(query.results)
    return elapsed


class TestFig9:
    def test_fig9_against_stream_engine(self, benchmark, tmp_path):
        rows = []
        for window in SMALL_WINDOWS + LARGE_WINDOWS:
            systemx = _systemx_total(tmp_path, window)
            reeval = _datacell_total(tmp_path, window, "reeval")
            incremental = _datacell_total(tmp_path, window, "incremental")
            rows.append((window, systemx, reeval, incremental))
        report(
            "fig9",
            f"Figure 9 — total time for {SLIDES} slides incl. CSV loading (seconds)",
            ["|W|", "SystemX", "DataCellR", "DataCell"],
            rows,
        )
        small = [r for r in rows if r[0] in SMALL_WINDOWS]
        large = [r for r in rows if r[0] in LARGE_WINDOWS]
        # (a) small windows: the specialized engine has the edge over
        #     incremental DataCell at the smallest size (per-window overhead)
        assert small[0][1] < small[0][3], small
        # (b) large windows: DataCell is the fastest system
        last = large[-1]
        assert last[3] < last[1], ("DataCell must beat SystemX when scaling", rows)
        assert last[3] < last[2], ("DataCell must beat DataCellR when scaling", rows)
        # SystemX degrades faster than DataCell as the window grows
        sysx_growth = last[1] / small[0][1]
        incr_growth = last[3] / small[0][3]
        assert sysx_growth > incr_growth, rows
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Multi-query scale-up — parallel firing × cross-query fragment sharing.

The paper's Petri-net scheduler exists so *many* continuous queries can be
enabled at once (§2), and its incremental design caches per-basic-window
partials so work happens once per arrival (§3).  This benchmark measures
the two engine features that exploit that at fleet scale:

* ``Scheduler(workers=N)`` — ready factories fire concurrently on a
  thread pool;
* the shared :class:`~repro.core.partials.FragmentCache` — queries whose
  per-basic-window fragments are alpha-equivalent compute each basic
  window's bundle once, engine-wide.

Sweep: fleet size (identical queries over one shared stream) × worker
count × sharing on/off.  Reported per configuration: total wall time,
throughput (query·tuples/s), speedup vs the sequential unshared baseline,
and the fragment-cache hit rate (from the profiler counters).

Runs standalone too::

    python benchmarks/bench_multiquery_scaleup.py [--smoke]

``--smoke`` is the CI mode: a seconds-scale sweep that still exercises the
parallel path and checks the sharing invariants.
"""

from __future__ import annotations

import time

import numpy as np

from repro import DataCellEngine
from repro.bench import report

# Paper-style Q1 shape (selection + grouped aggregation); the threshold
# keeps ~80% of tuples so the fragment does real work per basic window.
WINDOW = 25_600
STEP = 6_400
WINDOWS = 6
THRESHOLD = 20
DOMAIN = 100

FLEETS = [1, 4, 16]
WORKER_COUNTS = [1, 4]

SMOKE_SCALE = 8  # divide window/step by this in --smoke mode


def _workload(total: int, seed: int = 5) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "x1": rng.integers(0, DOMAIN, total),
        "x2": rng.integers(0, 50, total),
    }


def _sql(window: int, step: int) -> str:
    return (
        f"SELECT x1, sum(x2) FROM stream [RANGE {window} SLIDE {step}] "
        f"WHERE x1 > {THRESHOLD} GROUP BY x1"
    )


def run_fleet(
    queries: int,
    workers: int,
    sharing: bool,
    window: int = WINDOW,
    step: int = STEP,
    windows: int = WINDOWS,
    columns: dict[str, np.ndarray] | None = None,
) -> dict[str, float]:
    """One configuration: returns wall time, throughput and cache stats."""
    total = window + (windows - 1) * step
    if columns is None:
        columns = _workload(total)
    engine = DataCellEngine(workers=workers, fragment_sharing=sharing)
    engine.create_stream("stream", [("x1", "int"), ("x2", "int")])
    handles = [engine.submit(_sql(window, step)) for __ in range(queries)]
    try:
        start = time.perf_counter()
        fed = 0
        for index in range(windows):
            take = window if index == 0 else step
            engine.feed(
                "stream",
                columns={name: vals[fed:fed + take] for name, vals in columns.items()},
            )
            fed += take
            engine.run_until_idle()
        elapsed = time.perf_counter() - start
        for handle in handles:
            if len(handle.results()) != windows:
                raise AssertionError(
                    f"{handle.name} produced {len(handle.results())} windows, "
                    f"expected {windows}"
                )
        stats = engine.fragment_cache.stats()
    finally:
        engine.close()
    return {
        "seconds": elapsed,
        "throughput": queries * total / elapsed,
        "hit_rate": stats["hit_rate"],
        "hits": stats["hits"],
        "misses": stats["misses"],
    }


def sweep(window: int = WINDOW, step: int = STEP, windows: int = WINDOWS) -> list[tuple]:
    """The full grid; one shared workload so every config sees one stream."""
    total = window + (windows - 1) * step
    columns = _workload(total)
    rows = []
    for fleet in FLEETS:
        base = run_fleet(fleet, 1, False, window, step, windows, columns)
        for workers in WORKER_COUNTS:
            for sharing in (False, True):
                if workers == 1 and not sharing:
                    run = base
                else:
                    run = run_fleet(
                        fleet, workers, sharing, window, step, windows, columns
                    )
                rows.append(
                    (
                        fleet,
                        workers,
                        "on" if sharing else "off",
                        run["seconds"],
                        run["throughput"],
                        base["seconds"] / run["seconds"],
                        run["hit_rate"],
                    )
                )
    return rows


def check_rows(rows: list[tuple], min_speedup: float = 1.5) -> None:
    """The acceptance invariants of the sweep."""
    by_config = {(r[0], r[1], r[2]): r for r in rows}
    fleet = max(r[0] for r in rows)
    best = by_config[(fleet, max(WORKER_COUNTS), "on")]
    assert best[5] >= min_speedup, (
        f"{fleet} queries / {max(WORKER_COUNTS)} workers + sharing: "
        f"{best[5]:.2f}x < {min_speedup}x over the sequential unshared baseline"
    )
    assert best[6] > 0.9, f"hit rate {best[6]:.3f} <= 0.9 for an identical-query fleet"
    # sharing is off in the baseline rows
    assert by_config[(fleet, 1, "off")][6] == 0.0


HEADERS = ["queries", "workers", "sharing", "total s", "q·tuples/s", "speedup", "hit rate"]


def _report(
    rows: list[tuple],
    name: str = "multiquery_scaleup",
    window: int = WINDOW,
    step: int = STEP,
    windows: int = WINDOWS,
) -> None:
    report(
        name,
        "Multi-query scale-up — fleet size × workers × fragment sharing "
        f"(Q1 shape, |W|={window}, |w|={step}, {windows} windows; speedup vs "
        "workers=1/sharing=off at the same fleet size)",
        HEADERS,
        [
            (fleet, workers, sharing, secs, int(tput), f"{speed:.2f}x", f"{hit:.3f}")
            for fleet, workers, sharing, secs, tput, speed, hit in rows
        ],
    )


class TestMultiQueryScaleup:
    def test_scaleup_grid(self, benchmark):
        rows = sweep()
        _report(rows)
        check_rows(rows)
        benchmark.pedantic(
            lambda: run_fleet(max(FLEETS), max(WORKER_COUNTS), True),
            rounds=2,
            iterations=1,
        )


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI sweep (scaled-down windows, relaxed speedup floor)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        window, step = WINDOW // SMOKE_SCALE, STEP // SMOKE_SCALE
        rows = sweep(window, step, windows=3)
        _report(rows, "multiquery_scaleup_smoke", window, step, 3)
        # Thread-pool overhead can dominate at smoke scale; still require
        # the shared configs to win and the cache to behave.
        check_rows(rows, min_speedup=1.1)
    else:
        rows = sweep()
        _report(rows)
        check_rows(rows)
    print("\nmulti-query scale-up invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

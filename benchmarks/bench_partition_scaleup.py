"""Partition scale-up — key-partitioned multi-process sharding (DESIGN.md §14).

One stream hash-partitioned on its key column, one continuous query,
swept over ``P`` shard workers.  Two query shapes bracket the merge
taxonomy:

* ``grouped`` — Q1-style grouped aggregation whose GROUP BY includes the
  partition key.  Merge-free (``concat`` route): each partition owns its
  keys outright, so this is the embarrassingly-parallel best case.
* ``global`` — a global sum/count/avg with no grouping.  Every partition
  computes partials and the coordinator runs the synthesized
  re-aggregation merge per window (``re-aggregate`` route); the reported
  merge share is the price of that final step.

Reported per shape × P: end-to-end wall for the feed loop, tuple
throughput, speedup vs the in-process ``P=1`` baseline, and the fraction
of response time spent in the coordinator merge.  Every partitioned run
is cross-checked window-for-window against the ``P=1`` results (sorted
rows, float-tolerant) before any number is reported.

**Host caveat.** Shard workers are real OS processes; wall-clock speedup
requires real cores.  On a single-core host (the CI container: ``nproc``
= 1) the sweep still exercises the full shm + merge machinery but the
workers time-slice one core, so speedup ≤ 1 and the run documents
sharding *overhead*, not scale-up.  The speedup floor below is therefore
gated on ``os.cpu_count()``: ≥ 3x at P=4 is asserted only when at least
4 cores are present; otherwise the invariant degrades to
results-equality plus a sanity floor that catches pathological IPC
regressions.  EXPERIMENTS.md records both regimes.

Runs standalone too::

    python benchmarks/bench_partition_scaleup.py [--smoke]

``--smoke`` is the CI mode: a seconds-scale sweep over P ∈ {1, 2}.
"""

from __future__ import annotations

import math
import os
import time

import numpy as np

from repro import DataCellEngine
from repro.bench import report

WINDOW = 16_384
WINDOWS = 8
KEYS = 96
PARTITION_COUNTS = (1, 2, 4)

SMOKE_WINDOW = 2_048
SMOKE_WINDOWS = 4
SMOKE_PARTITIONS = (1, 2)

#: Asserted only with >= 4 physical cores (see module docstring).
MIN_SPEEDUP_4P = 3.0
MIN_SPEEDUP_4P_SMOKE = 1.2
#: Single-core sanity floor: sharding may cost, but not this much.
MIN_SPEEDUP_STARVED = 0.02

GROUPED_SQL = (
    "SELECT k, sum(v) AS total, count(*) AS n "
    "FROM stream [RANGE {window} SLIDE {window}] "
    "WHERE v > 5 GROUP BY k"
)
GLOBAL_SQL = (
    "SELECT sum(v) AS total, count(*) AS n, avg(x) AS m "
    "FROM stream [RANGE {window} SLIDE {window}]"
)
SHAPES = [("grouped", GROUPED_SQL), ("global", GLOBAL_SQL)]


def _workload(total: int, seed: int = 23) -> list[tuple]:
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, KEYS, total)
    values = rng.integers(0, 1_000, total)
    xs = rng.uniform(-100.0, 100.0, total)
    return [
        (int(k), int(v), float(x)) for k, v, x in zip(keys, values, xs)
    ]


def run_shape(
    sql_template: str,
    partitions: int,
    window: int,
    windows: int,
    rows: list[tuple],
) -> dict:
    """One shape × one P: feed ``windows`` tumbling windows, time the loop."""
    engine = DataCellEngine(partitions=partitions)
    try:
        engine.create_stream(
            "stream",
            [("k", "int"), ("v", "int"), ("x", "float")],
            partition_by="k" if partitions > 1 else None,
        )
        query = engine.submit(sql_template.format(window=window))
        start = time.perf_counter()
        for index in range(windows):
            engine.feed("stream", rows=rows[index * window:(index + 1) * window])
            engine.run_until_idle()
        wall = time.perf_counter() - start
        batches = query.results()
        if len(batches) != windows:
            raise AssertionError(
                f"P={partitions}: {len(batches)} windows fired, expected {windows}"
            )
        merge = sum(b.breakdown.get("shard_merge", 0.0) for b in batches)
        response = sum(b.response_seconds for b in batches) or 1.0
        return {
            "wall": wall,
            "rows": [b.rows() for b in batches],
            "tuples": window * windows,
            "merge_share": merge / response,
        }
    finally:
        engine.close()


def _windows_equal(left: list, right: list) -> bool:
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        for x, y in zip(sorted(a), sorted(b)):
            if len(x) != len(y):
                return False
            for u, w in zip(x, y):
                if isinstance(u, float) or isinstance(w, float):
                    if not math.isclose(float(u), float(w), rel_tol=1e-9, abs_tol=1e-9):
                        return False
                elif u != w:
                    return False
    return True


def sweep(
    window: int = WINDOW,
    windows: int = WINDOWS,
    partition_counts: tuple = PARTITION_COUNTS,
) -> list[tuple]:
    rows_in = _workload(window * windows)
    out = []
    for label, sql in SHAPES:
        baseline = None
        for partitions in partition_counts:
            run = run_shape(sql, partitions, window, windows, rows_in)
            if baseline is None:
                baseline = run
            elif not _windows_equal(baseline["rows"], run["rows"]):
                raise AssertionError(
                    f"{label}: P={partitions} windows diverge from P=1"
                )
            out.append(
                (
                    label,
                    partitions,
                    run["wall"],
                    run["tuples"] / run["wall"],
                    baseline["wall"] / run["wall"],
                    run["merge_share"],
                )
            )
    return out


def check_rows(
    rows: list[tuple],
    min_speedup_4p: float = MIN_SPEEDUP_4P,
) -> None:
    """Results already proved equal in :func:`sweep`; gate the speedups."""
    cores = os.cpu_count() or 1
    by_key = {(r[0], r[1]): r for r in rows}
    top_p = max(p for __, p in by_key)
    grouped = by_key[("grouped", top_p)]
    if cores >= top_p:
        assert grouped[4] >= min_speedup_4p, (
            f"grouped P={top_p} speedup {grouped[4]:.2f}x < {min_speedup_4p}x "
            f"on a {cores}-core host"
        )
    else:
        # Core-starved host: document, don't fail — but a speedup below
        # the sanity floor means IPC/merge went pathological.
        assert grouped[4] >= MIN_SPEEDUP_STARVED, (
            f"grouped P={top_p} speedup {grouped[4]:.3f}x is below the "
            f"sanity floor even for a {cores}-core host"
        )
        print(
            f"\nNOTE: host has {cores} core(s) < P={top_p}; speedup floor "
            f"{min_speedup_4p}x not asserted (workers time-slice one core). "
            "Numbers document sharding overhead, not scale-up."
        )
    for label, __ in SHAPES:
        assert by_key[(label, top_p)][5] < 0.9, (
            f"{label}: merge dominates response time"
        )


HEADERS = ["shape", "P", "wall s", "tuples/s", "speedup", "merge share"]


def _report(
    rows: list[tuple],
    name: str = "partition_scaleup",
    window: int = WINDOW,
    windows: int = WINDOWS,
) -> None:
    cores = os.cpu_count() or 1
    report(
        name,
        "Partition scale-up — shard workers × merge route "
        f"(|W|={window} tumbling, {windows} windows, {KEYS} keys, "
        f"{cores}-core host; speedup vs in-process P=1; merge share = "
        "coordinator merge / total response time)",
        HEADERS,
        [
            (
                label,
                partitions,
                f"{wall:.4f}",
                int(tput),
                f"{speedup:.2f}x",
                f"{merge_share:.3f}",
            )
            for label, partitions, wall, tput, speedup, merge_share in rows
        ],
    )


class TestPartitionScaleup:
    def test_sweep_smoke(self, benchmark):
        rows = sweep(SMOKE_WINDOW, SMOKE_WINDOWS, SMOKE_PARTITIONS)
        _report(rows, "partition_scaleup_smoke", SMOKE_WINDOW, SMOKE_WINDOWS)
        check_rows(rows, min_speedup_4p=MIN_SPEEDUP_4P_SMOKE)
        workload = _workload(SMOKE_WINDOW * SMOKE_WINDOWS)
        benchmark.pedantic(
            lambda: run_shape(
                GROUPED_SQL, 2, SMOKE_WINDOW, SMOKE_WINDOWS, workload
            ),
            rounds=2,
            iterations=1,
        )


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI sweep (P in {1,2}, scaled-down windows)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        rows = sweep(SMOKE_WINDOW, SMOKE_WINDOWS, SMOKE_PARTITIONS)
        _report(rows, "partition_scaleup_smoke", SMOKE_WINDOW, SMOKE_WINDOWS)
        check_rows(rows, min_speedup_4p=MIN_SPEEDUP_4P_SMOKE)
    else:
        rows = sweep()
        _report(rows)
        check_rows(rows)
    print("\npartition scale-up invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

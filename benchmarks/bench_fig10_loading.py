"""Figure 10 (the inline figure of §4.2) — DataCell cost breakdown:
loading (CSV parsing + basket appends) vs pure query processing.

Paper: "query processing is the major component while loading represents
only a minor fraction of the total cost" — for the larger window sizes.
"""

import time

import pytest

from repro.bench import report
from repro.workloads import join_streams, read_csv_chunks, write_csv

from conftest import fresh_engine, q2_sql

BASIC_WINDOWS = 64
SLIDES = 20
JOIN_SELECTIVITY = 3e-4
WINDOW_SIZES = [1_024, 10_240, 25_600, 51_200, 102_400]
CHUNK = 4_096


def _breakdown(tmp_path, window):
    """Returns (total, query_processing, loading) seconds."""
    step = window // BASIC_WINDOWS
    total_tuples = window + SLIDES * step
    workload = join_streams(total_tuples, JOIN_SELECTIVITY, seed=95)
    left = tmp_path / f"l{window}.csv"
    right = tmp_path / f"r{window}.csv"
    write_csv(left, workload.left_columns(), order=["x1", "x2"])
    write_csv(right, workload.right_columns(), order=["x1", "x2"])

    engine = fresh_engine()
    query = engine.submit(q2_sql(window, step))
    schema = engine.catalog.stream("stream1").schema

    loading = 0.0
    processing = 0.0
    start = time.perf_counter()
    left_chunks = read_csv_chunks(left, schema, CHUNK)
    right_chunks = read_csv_chunks(right, schema, CHUNK)
    while True:
        t0 = time.perf_counter()
        progressed = False
        for stream, chunks in (("stream1", left_chunks), ("stream2", right_chunks)):
            chunk = next(chunks, None)
            if chunk is not None:
                engine.feed(stream, columns=chunk)
                progressed = True
        t1 = time.perf_counter()
        loading += t1 - t0
        engine.run_until_idle()
        processing += time.perf_counter() - t1
        if not progressed:
            break
    total = time.perf_counter() - start
    assert len(query.results()) == SLIDES + 1
    return total, processing, loading


class TestFig10:
    def test_fig10_loading_breakdown(self, benchmark, tmp_path):
        rows = []
        for window in WINDOW_SIZES:
            total, processing, loading = _breakdown(tmp_path, window)
            rows.append((window, total, processing, loading))
        report(
            "fig10",
            "Figure 10 — DataCell total time split into query processing "
            "and loading (seconds)",
            ["|W|", "total", "query processing", "loading"],
            rows,
        )
        # paper: processing dominates, loading is a minor fraction (large |W|)
        for window, total, processing, loading in rows[1:]:
            assert processing > loading, rows
        __, total, processing, loading = rows[-1]
        assert loading < 0.4 * total, rows
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

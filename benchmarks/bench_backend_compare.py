"""Backend comparison — compiled vs interpreted single-query throughput.

Fig. 4-style setup: one continuous query over one stream, count-based
sliding window, measured per firing.  Two query shapes:

* ``q1`` — the paper's Q1 (selection + grouped aggregation).  Its plans
  are dominated by group/aggregate kernels that both backends execute
  identically, so the compiled win is modest; it is reported to keep the
  comparison honest.
* ``calc`` — the same fig4 shape with the arithmetic-heavy predicates
  and projected expressions of a calibration/scoring workload (tens of
  calc instructions per firing).  This is the case the compiled backend
  (DESIGN.md §13) targets: the whole WHERE tree and every SELECT
  expression fuse into native numpy statements, and the per-instruction
  interpreter overhead disappears.

Reported per query and backend: end-to-end wall time for the feed loop,
time spent executing programs (fragment + combine + finalize, measured
by wrapping the factory's execution backend), program-level tuple
throughput, and the compiled/interpreted speedups.  Every rep also
cross-checks that both backends emit identical windows.

Measurements are interleaved best-of-N to shake scheduling noise.

Runs standalone too::

    python benchmarks/bench_backend_compare.py [--smoke]

``--smoke`` is the CI mode: a seconds-scale run with a relaxed speedup
floor.
"""

from __future__ import annotations

import time

import numpy as np

from repro import DataCellEngine
from repro.bench import report

WINDOW = 8_192
STEP = 128
FIRINGS = 40
REPS = 5

SMOKE_WINDOW = 1_024
SMOKE_STEP = 64
SMOKE_FIRINGS = 10
SMOKE_REPS = 2

#: Acceptance floors for the calc-heavy query's program-execution speedup.
MIN_CALC_SPEEDUP = 3.0
MIN_CALC_SPEEDUP_SMOKE = 1.5

Q1_SQL = (
    "SELECT x1, sum(x2) FROM stream [RANGE {window} SLIDE {step}] "
    "WHERE x1 > 20 GROUP BY x1"
)

CALC_SQL = (
    "SELECT sum((x1*5+x2*2-7)*3-x1*2+x2*9-4), "
    "max((x2*3-x1*2+1)*2+x1*7-x2*3+6), "
    "sum((x1-x2*4+9)*5+x2*6-x1*8+2) "
    "FROM stream [RANGE {window} SLIDE {step}] "
    "WHERE ((x1*2+x2-3)*5+x2*7-x1*3+11)*2-(x1*4-x2*2+5)*3+x1*6-x2*5+13 > 900"
)

QUERIES = [("q1", Q1_SQL), ("calc", CALC_SQL)]


def _workload(total: int, seed: int = 11) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "x1": rng.integers(0, 100, total),
        "x2": rng.integers(0, 50, total),
    }


class TimedBackend:
    """Wraps an execution backend, accumulating wall time inside ``run``."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.seconds = 0.0

    def run(self, program, inputs, profiler=None):
        start = time.perf_counter()
        try:
            return self._inner.run(program, inputs, profiler)
        finally:
            self.seconds += time.perf_counter() - start

    def __getattr__(self, name):
        return getattr(self._inner, name)


def run_query(
    backend: str,
    sql_template: str,
    window: int,
    step: int,
    firings: int,
    columns: dict[str, np.ndarray],
) -> dict:
    """One backend × one query: feed ``firings`` slides, time everything."""
    engine = DataCellEngine(backend=backend)
    engine.create_stream("stream", [("x1", "int"), ("x2", "int")])
    query = engine.submit(sql_template.format(window=window, step=step))
    timed = TimedBackend(query.factory._interp)
    query.factory._interp = timed
    try:
        start = time.perf_counter()
        fed = 0
        for index in range(firings):
            take = window if index == 0 else step
            engine.feed(
                "stream",
                columns={name: vals[fed:fed + take] for name, vals in columns.items()},
            )
            fed += take
            engine.run_until_idle()
        wall = time.perf_counter() - start
        rows = [batch.rows() for batch in query.results()]
        if len(rows) != firings:
            raise AssertionError(
                f"{backend}: {len(rows)} windows fired, expected {firings}"
            )
    finally:
        engine.close()
    return {"wall": wall, "prog": timed.seconds, "rows": rows, "tuples": fed}


def compare(
    window: int = WINDOW,
    step: int = STEP,
    firings: int = FIRINGS,
    reps: int = REPS,
) -> list[tuple]:
    """Interleaved best-of-``reps`` for every query × backend."""
    total = window + (firings - 1) * step
    columns = _workload(total)
    rows = []
    for label, sql in QUERIES:
        best = {"interpreted": None, "compiled": None}
        for __ in range(reps):
            runs = {
                backend: run_query(backend, sql, window, step, firings, columns)
                for backend in ("interpreted", "compiled")
            }
            if runs["interpreted"]["rows"] != runs["compiled"]["rows"]:
                raise AssertionError(
                    f"{label}: backends disagree on emitted windows"
                )
            for backend, run in runs.items():
                if best[backend] is None or run["prog"] < best[backend]["prog"]:
                    best[backend] = run
        interp, compiled = best["interpreted"], best["compiled"]
        assert interp is not None and compiled is not None
        for backend, run in (("interpreted", interp), ("compiled", compiled)):
            rows.append(
                (
                    label,
                    backend,
                    run["wall"],
                    run["prog"],
                    run["tuples"] / run["prog"],
                    interp["prog"] / run["prog"],
                    interp["wall"] / run["wall"],
                )
            )
    return rows


def check_rows(
    rows: list[tuple],
    min_calc_speedup: float = MIN_CALC_SPEEDUP,
    min_q1_speedup: float = 1.0,
) -> None:
    """The acceptance invariant: calc-heavy program execution ≥ floor."""
    by_key = {(r[0], r[1]): r for r in rows}
    calc = by_key[("calc", "compiled")]
    assert calc[5] >= min_calc_speedup, (
        f"calc-heavy program-execution speedup {calc[5]:.2f}x "
        f"< {min_calc_speedup}x over the interpreter"
    )
    q1 = by_key[("q1", "compiled")]
    assert q1[5] >= min_q1_speedup, (
        f"q1 compiled program-execution speedup {q1[5]:.2f}x < {min_q1_speedup}x"
    )


HEADERS = [
    "query",
    "backend",
    "wall s",
    "program s",
    "tuples/s (prog)",
    "prog speedup",
    "wall speedup",
]


def _report(
    rows: list[tuple],
    name: str = "backend_compare",
    window: int = WINDOW,
    step: int = STEP,
    firings: int = FIRINGS,
) -> None:
    report(
        name,
        "Execution backend comparison — compiled vs interpreted "
        f"(fig4-style single query, |W|={window}, |w|={step}, {firings} "
        "firings, interleaved best-of-N; program s = time inside "
        "fragment/combine/finalize execution)",
        HEADERS,
        [
            (
                label,
                backend,
                f"{wall:.4f}",
                f"{prog:.4f}",
                int(tput),
                f"{prog_speedup:.2f}x",
                f"{wall_speedup:.2f}x",
            )
            for label, backend, wall, prog, tput, prog_speedup, wall_speedup in rows
        ],
    )


class TestBackendCompare:
    def test_compare(self, benchmark):
        rows = compare()
        _report(rows)
        check_rows(rows)
        columns = _workload(WINDOW + (FIRINGS - 1) * STEP)
        benchmark.pedantic(
            lambda: run_query("compiled", CALC_SQL, WINDOW, STEP, FIRINGS, columns),
            rounds=2,
            iterations=1,
        )


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI run (scaled-down geometry, relaxed speedup floor)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        rows = compare(SMOKE_WINDOW, SMOKE_STEP, SMOKE_FIRINGS, SMOKE_REPS)
        _report(rows, "backend_compare_smoke", SMOKE_WINDOW, SMOKE_STEP, SMOKE_FIRINGS)
        # Smoke scale is noise-dominated; require the direction, not the margin.
        check_rows(rows, min_calc_speedup=MIN_CALC_SPEEDUP_SMOKE, min_q1_speedup=0.85)
    else:
        rows = compare()
        _report(rows)
        check_rows(rows)
    print("\nbackend comparison invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Bounded-memory landmark spill — retained state flat vs linear growth.

Drives the same non-compacting landmark query (plain selection: the
combine concatenates, so the cumulative state grows with every tuple)
through two engines in lockstep — one unbounded, one with
``landmark_spill_mb`` set — and samples the state each engine *retains
between slides* after every feed round: for the baseline, the summed
byte size of the partial store's live bundles; for the spilling engine,
the hot-suffix bytes its spill store reports (cold history lives in
run files, reported separately as disk bytes).

Retained state is the honest axis.  Emitting a landmark window is
inherently O(total input) work for a non-compacting combine — spilling
changes where the history *lives*, not how much of it a firing touches —
so the claim under test is that the baseline's retained curve grows
linearly with rounds while the spilling engine's stays flat at the
budget, with emissions byte-identical between the two.

Runs standalone (``python benchmarks/bench_landmark_spill.py
[--smoke]``) or under pytest like the other figure benchmarks.
``--smoke`` shrinks the workload for CI; the committed full-scale
numbers live in benchmarks/results/landmark_spill.txt.
"""

import sys

import numpy as np

from repro import DataCellEngine
from repro.bench import report
from repro.core.landmark import bundle_bytes

ROUNDS = 32
PER_ROUND = 512
SLIDE = 64
BUDGET_BYTES = 8192
#: Kept as a flat module constant so the resource lint's harvester can
#: resolve the spill knob and judge SQL under the spilling regime.
SPILL_MB = BUDGET_BYTES / (1024 * 1024)

#: Smoke keeps the per-round volume — the spill needs total bytes well
#: past the budget — and shrinks the number of rounds instead.
SMOKE_SCALE = 4

SQL = f"SELECT x1 FROM s [LANDMARK SLIDE {SLIDE}]"


def build(spilling=False):
    if spilling:
        engine = DataCellEngine(landmark_spill_mb=SPILL_MB)
    else:
        engine = DataCellEngine()
    engine.create_stream("s", [("x1", "int")])
    return engine, engine.submit(SQL, name="q")


def retained_baseline(handle):
    return sum(bundle_bytes(b) for __, b in handle.factory._store.live())


def run(smoke: bool = False) -> bool:
    rounds = ROUNDS // SMOKE_SCALE if smoke else ROUNDS
    per_round = PER_ROUND
    rng = np.random.default_rng(42)
    feed = [
        rng.integers(0, 1000, per_round).astype(np.int64)
        for __ in range(rounds)
    ]

    base_engine, base_q = build()
    spill_engine, spill_q = build(spilling=True)
    base_curve, hot_curve, disk_curve = [], [], []
    try:
        for chunk in feed:
            for engine in (base_engine, spill_engine):
                engine.feed("s", columns={"x1": chunk})
                engine.run_until_idle()
            base_curve.append(retained_baseline(base_q))
            stats = spill_engine.landmark_spill_stats()["q"]
            hot_curve.append(stats["hot_bytes"])
            disk_curve.append(stats["disk_bytes"])
        identical = base_q.result_rows() == spill_q.result_rows()
        stats = spill_engine.landmark_spill_stats()["q"]
    finally:
        base_engine.close()
        spill_engine.close()

    assert identical, "spilling changed emissions"
    assert stats["runs"] > 0 and stats["spills"] > 0, stats
    # Baseline: linear growth — the second half of the run retains about
    # twice the state of the first half.
    half = base_curve[len(base_curve) // 2 - 1]
    assert base_curve[-1] >= 1.7 * half, (half, base_curve[-1])
    # Spill: flat — the hot suffix never exceeds budget plus one
    # freshly-added bundle of slack, no matter how long the run.
    slack = 8 * per_round
    peak = max(hot_curve)
    assert peak <= BUDGET_BYTES + slack, (peak, BUDGET_BYTES, slack)

    rows = [
        (
            r + 1,
            base_curve[r],
            hot_curve[r],
            disk_curve[r],
        )
        for r in range(0, rounds, max(1, rounds // 8))
    ] + [(rounds, base_curve[-1], hot_curve[-1], disk_curve[-1])]
    if smoke:
        print(
            f"smoke: rounds={rounds} baseline={base_curve[-1]}B "
            f"hot_peak={peak}B budget={BUDGET_BYTES}B "
            f"disk={disk_curve[-1]}B runs={stats['runs']} "
            f"pageins={stats['pageins']} identical=True"
        )
    else:
        report(
            "landmark_spill",
            f"Landmark retained state — {rounds} rounds x {per_round} rows, "
            f"budget {BUDGET_BYTES}B",
            ["round", "baseline bytes", "spill hot bytes", "spill disk bytes"],
            rows,
        )
    return True


def test_landmark_spill_flat_retained_memory():
    run(smoke=False)


if __name__ == "__main__":
    raise SystemExit(0 if run(smoke="--smoke" in sys.argv[1:]) else 1)

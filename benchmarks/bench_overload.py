"""Overload sweep — arrival rate × overflow policy (bounded baskets).

The paper's receptors park arrivals in baskets until factories consume
them; when producers outrun the engine the parked set grows without
bound.  This benchmark measures what each :mod:`repro.core.overflow`
policy buys under a controlled overload: a throttled factory fixes the
service rate, a paced producer offers tuples at a multiple of it, and we
record what survives.

Sweep: overflow policy × arrival-rate multiplier.  Reported per
configuration: tuples offered/admitted, windows produced, the fraction of
tuples *lost* (shed at the basket + rejected at the source), sustained
window throughput, and the peak basket occupancy — which must never
exceed the configured capacity.

Expected shape of the results:

* ``block`` is lossless at every rate (backpressure clamps the producer
  to the service rate — wall time grows instead of the loss fraction);
* the shedding policies hold wall time flat and pay in lost tuples, with
  the loss fraction rising with the overload factor;
* ``fail`` pushes the loss to the source: whole batches are rejected.

Runs standalone too::

    python benchmarks/bench_overload.py [--smoke]

``--smoke`` is the CI mode: a seconds-scale sweep that still drives every
policy through a genuine 4x overload and checks the invariants.
"""

from __future__ import annotations

import time

import numpy as np

from repro import DataCellEngine
from repro.bench import report
from repro.core.overflow import parse_overflow_spec
from repro.errors import BasketOverflowError
from repro.kernel.execution.profiler import COUNTER_SHED
from repro.testing.faults import SlowFactory

WINDOW = 1_000
STEP = 500
CAPACITY = 2_000
FIRING_DELAY = 0.002  # throttles the service rate to STEP / FIRING_DELAY

POLICIES = ["fail", "block:30", "shed-oldest", "shed-newest", "sample:0.5"]
RATES = [1, 2, 4, 8]  # arrival rate as a multiple of the service rate
CHUNKS = 120

SQL = (
    f"SELECT x1, sum(x2) FROM s [RANGE {WINDOW} SLIDE {STEP}] "
    "GROUP BY x1 ORDER BY x1"
)


def _workload(chunks: int, seed: int = 7) -> list[dict[str, np.ndarray]]:
    rng = np.random.default_rng(seed)
    return [
        {
            "x1": rng.integers(0, 8, STEP),
            "x2": rng.integers(0, 50, STEP),
        }
        for __ in range(chunks)
    ]


def run_config(spec: str, rate: int, chunks: int = CHUNKS) -> dict[str, float]:
    """One configuration: paced producer vs throttled consumer."""
    engine = DataCellEngine()
    engine.create_stream(
        "s",
        [("x1", "int"), ("x2", "int")],
        capacity=CAPACITY,
        overflow=parse_overflow_spec(spec),
    )
    query = engine.submit(SQL)
    registration = engine.scheduler._registrations[query.name]
    registration.factory = SlowFactory(registration.factory, delay=FIRING_DELAY)
    basket = next(iter(query.baskets.values()))

    pace = FIRING_DELAY / rate  # one STEP-sized chunk per interval
    workload = _workload(chunks)
    dropped = 0
    peak = 0
    try:
        engine.start(poll_interval=0.0005)
        start = time.perf_counter()
        for columns in workload:
            try:
                engine.feed("s", columns=columns)
            except BasketOverflowError:  # Fail rejects at the source
                dropped += STEP
            peak = max(peak, len(basket))
            time.sleep(pace)
        engine.stop(drain=True)
        elapsed = time.perf_counter() - start
    finally:
        engine.close()

    offered = chunks * STEP
    shed = engine.profiler.counter(COUNTER_SHED)
    windows = len(query.results())
    return {
        "offered": offered,
        "admitted": basket.appended_total,
        "windows": windows,
        "lost_fraction": (shed + dropped) / offered,
        "window_tuples_per_s": windows * STEP / elapsed,
        "peak": peak,
        "seconds": elapsed,
    }


def sweep(rates: list[int] = RATES, chunks: int = CHUNKS) -> list[tuple]:
    rows = []
    for spec in POLICIES:
        for rate in rates:
            run = run_config(spec, rate, chunks)
            rows.append(
                (
                    spec,
                    rate,
                    run["offered"],
                    run["admitted"],
                    run["windows"],
                    run["lost_fraction"],
                    run["window_tuples_per_s"],
                    run["peak"],
                    run["seconds"],
                )
            )
    return rows


def check_rows(rows: list[tuple]) -> None:
    """The acceptance invariants of the sweep."""
    top_rate = max(r[1] for r in rows)
    for spec, rate, offered, admitted, windows, lost, __, peak, ___ in rows:
        assert peak <= CAPACITY, f"{spec} x{rate}: peak {peak} > capacity {CAPACITY}"
        assert windows > 0, f"{spec} x{rate}: produced no windows"
        if spec.startswith("block"):
            assert lost == 0.0, f"block x{rate}: lost {lost:.3f} != 0 (backpressure)"
            assert admitted == offered
        if spec == "shed-oldest" and rate == top_rate:
            assert lost > 0.0, f"shed-oldest x{top_rate}: overload shed nothing"
            assert admitted == offered  # incoming admitted, parked evicted


HEADERS = [
    "policy", "rate", "offered", "admitted", "windows",
    "lost frac", "win·tuples/s", "peak parked", "total s",
]


def _report(rows: list[tuple], name: str = "overload") -> None:
    report(
        name,
        "Overload sweep — overflow policy × arrival rate "
        f"(|W|={WINDOW}, |w|={STEP}, capacity={CAPACITY}, service rate "
        f"{int(STEP / FIRING_DELAY)} tuples/s; rate = arrival/service)",
        HEADERS,
        [
            (spec, f"{rate}x", offered, admitted, windows,
             f"{lost:.3f}", int(tput), peak, secs)
            for spec, rate, offered, admitted, windows, lost, tput, peak, secs in rows
        ],
    )


class TestOverloadSweep:
    def test_policy_rate_grid(self, benchmark):
        rows = sweep()
        _report(rows)
        check_rows(rows)
        benchmark.pedantic(
            lambda: run_config("shed-oldest", max(RATES), CHUNKS // 4),
            rounds=2,
            iterations=1,
        )


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI sweep (fewer chunks and rates, same invariants)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        rows = sweep(rates=[1, 4], chunks=40)
        _report(rows, "overload_smoke")
    else:
        rows = sweep()
        _report(rows)
    check_rows(rows)
    print("\noverload sweep invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Shared builders for the figure benchmarks.

Scaling discipline: every benchmark keeps the paper's *ratios* (basic
windows per window, selectivities, window/step proportions) and scales the
absolute tuple counts down so the whole suite runs in minutes on a laptop.
EXPERIMENTS.md records the scale factor per figure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DataCellEngine
from repro.dsms import SystemX
from repro.kernel.atoms import Atom
from repro.kernel.storage import Schema


def fresh_engine() -> DataCellEngine:
    engine = DataCellEngine()
    engine.create_stream("stream", [("x1", "int"), ("x2", "int")])
    engine.create_stream("stream1", [("x1", "int"), ("x2", "int")])
    engine.create_stream("stream2", [("x1", "int"), ("x2", "int")])
    return engine


def fresh_systemx() -> SystemX:
    systemx = SystemX()
    schema = Schema.of(("x1", Atom.INT), ("x2", Atom.INT))
    systemx.create_stream("stream", schema)
    systemx.create_stream("stream1", schema)
    systemx.create_stream("stream2", schema)
    return systemx


def q1_sql(window: int, step: int, threshold: int) -> str:
    return (
        f"SELECT x1, sum(x2) FROM stream [RANGE {window} SLIDE {step}] "
        f"WHERE x1 > {threshold} GROUP BY x1"
    )


def q2_sql(window: int, step: int) -> str:
    return (
        f"SELECT max(s1.x1), avg(s2.x1) FROM stream1 s1 [RANGE {window} SLIDE {step}], "
        f"stream2 s2 [RANGE {window} SLIDE {step}] WHERE s1.x2 = s2.x2"
    )


def q3_sql(step: int, threshold: int) -> str:
    return (
        f"SELECT max(x1), sum(x2) FROM stream [LANDMARK SLIDE {step}] "
        f"WHERE x1 > {threshold}"
    )

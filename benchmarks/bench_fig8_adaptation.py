"""Figure 8 — query plan adaptation via m-chunk processing.

The paper runs 60 sliding steps, doubling the number of chunks ``m`` every
five steps (1, 2, 4, ..., 1024).  Response time steps *down* with growing
``m`` (less data left to process once the last tuple arrives), until the
chunk-merging overhead outweighs the savings; the controller then resorts
to the best ``m`` seen.

Geometry: |W| = 131072, |w| = 16384 (n = 8 basic windows) so the
chunk-processing term dominates the fixed window-merge term.
"""

import pytest

from repro import AdaptiveChunker
from repro.bench import drive_single, report
from repro.workloads import selection_stream

from conftest import fresh_engine, q1_sql

WINDOW = 131_072
STEP = 16_384
WINDOWS = 60


class TestFig8:
    def test_fig8_adaptive_chunking(self, benchmark):
        workload = selection_stream(
            WINDOW + WINDOWS * STEP, selectivity=0.2, seed=80, domain=100
        )
        sql = q1_sql(WINDOW, STEP, workload.threshold)

        # adaptive run (the paper's experiment)
        chunker = AdaptiveChunker(steps_per_level=5, max_m=1024)
        engine = fresh_engine()
        query = engine.submit(sql)
        adaptive = drive_single(
            engine, query, "stream", workload.columns(), WINDOW, STEP, WINDOWS,
            chunker=chunker,
        )
        # reference run without chunking (m = 1 throughout)
        engine = fresh_engine()
        query = engine.submit(sql)
        plain = drive_single(
            engine, query, "stream", workload.columns(), WINDOW, STEP, WINDOWS
        )

        rows = [
            (k + 1, plain.response_seconds[k], adaptive.response_seconds[k])
            for k in range(WINDOWS)
        ]
        report(
            "fig8",
            "Figure 8 — adaptive m-chunking, response time per window "
            f"(levels visited: {chunker.history}, final m = {chunker.current_m})",
            ["window", "m=1 (DataCellR-like pacing)", "DataCell adaptive"],
            rows,
        )
        # adaptation found an m > 1 that beats the m = 1 level
        assert chunker.history, "controller recorded no levels"
        best_m, best_mean = min(chunker.history, key=lambda entry: entry[1])
        m1_mean = chunker.history[0][1]
        assert chunker.history[0][0] == 1
        assert best_m > 1, chunker.history
        assert best_mean < m1_mean, chunker.history
        # steady-state adaptive response beats the plain run's
        adaptive_late = sum(adaptive.response_seconds[-10:]) / 10
        plain_late = sum(plain.response_seconds[-10:]) / 10
        assert adaptive_late < plain_late, (adaptive_late, plain_late)

        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

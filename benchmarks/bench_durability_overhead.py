"""Durability overhead — journaling cost on ingest, checkpoint latency.

Drives the Figure 4(a) Q1 micro-workload through the scheduler path
twice per round — once on an ephemeral engine and once journaling every
``feed`` to a data directory — in alternating order, and compares the
medians; a third timed leg measures ``engine.checkpoint()`` at the end
of a durable run and reads snapshot size and journal volume back from
the durability counters (``checkpoints``, ``checkpoint_bytes``,
``journal_records``, ``journal_bytes``), so the reported numbers are
the same ones operators see in metrics (docs/OPERATIONS.md §7.3).

Journaling pays one CRC-framed, fsynced append per feed, so unlike
tracing (bench_obs_overhead.py) its cost is *expected* to show; the
bound here only guards against pathological regressions (a journal
write costing more than the window work it protects).

Runs standalone (``python benchmarks/bench_durability_overhead.py
[--smoke]``) or under pytest like the other figure benchmarks.
``--smoke`` shrinks the workload and relaxes the bound — it checks the
harness end-to-end on CI, not the committed number
(benchmarks/results/durability_overhead.txt).
"""

import statistics
import sys
import tempfile
import time

from repro import DataCellEngine
from repro.bench import report
from repro.workloads import selection_stream

WINDOW, BASIC_WINDOWS = 204_800, 512
STEP = WINDOW // BASIC_WINDOWS
WINDOWS = 20
ROUNDS = 5
BOUND = 2.0

SMOKE_SCALE = 16
SMOKE_BOUND = 4.0  # fsync latency dominates at smoke scale


def drive(columns, window, step, windows, data_dir=None, checkpoint=False):
    """One timed run; returns (seconds, checkpoint_seconds, stats)."""
    engine = DataCellEngine(data_dir=data_dir)
    engine.create_stream("stream", [("x1", "int"), ("x2", "int")])
    engine.submit(
        f"SELECT x1, sum(x2) FROM stream [RANGE {window} SLIDE {step}] "
        f"WHERE x1 > 50 GROUP BY x1"
    )
    offsets = [window + k * step for k in range(windows + 1)]
    start = time.perf_counter()
    fed = 0
    for end in offsets:
        engine.feed(
            "stream", columns={name: col[fed:end] for name, col in columns.items()}
        )
        fed = end
        engine.run_until_idle()
    elapsed = time.perf_counter() - start
    checkpoint_seconds = 0.0
    stats = {}
    if checkpoint:
        journal_bytes = engine.durability_stats()["journal_bytes"]
        begin = time.perf_counter()
        engine.checkpoint()
        checkpoint_seconds = time.perf_counter() - begin
        stats = engine.durability_stats()
        stats["run_journal_bytes"] = journal_bytes  # pre-rotation volume
    engine.close()
    return elapsed, checkpoint_seconds, stats


def measure(window, step, windows, rounds):
    workload = selection_stream(
        window + (windows + 1) * step, selectivity=0.5, seed=13, domain=100
    )
    columns = workload.columns()
    drive(columns, window, step, windows)  # warm-up
    plain, durable, checkpoints = [], [], []
    stats = {}
    for __ in range(rounds):
        plain.append(drive(columns, window, step, windows)[0])
        with tempfile.TemporaryDirectory(prefix="repro-bench-dur-") as tmp:
            seconds, checkpoint_seconds, stats = drive(
                columns, window, step, windows, data_dir=tmp, checkpoint=True
            )
        durable.append(seconds)
        checkpoints.append(checkpoint_seconds)
    return (
        statistics.median(plain),
        statistics.median(durable),
        statistics.median(checkpoints),
        stats,
    )


def run(smoke=False):
    if smoke:
        window, step, windows, rounds, bound = (
            WINDOW // SMOKE_SCALE, STEP // SMOKE_SCALE, 5, 2, SMOKE_BOUND
        )
    else:
        window, step, windows, rounds, bound = WINDOW, STEP, WINDOWS, ROUNDS, BOUND
    base, durable, checkpoint_seconds, stats = measure(window, step, windows, rounds)
    ratio = durable / base
    checkpoint = stats.get("last_checkpoint", {})
    rows = [
        ("ephemeral ingest", f"{base:.4f}", "1.00"),
        ("journaled ingest", f"{durable:.4f}", f"{ratio:.2f}"),
        ("checkpoint", f"{checkpoint_seconds:.4f}", "-"),
        ("snapshot bytes", checkpoint.get("bytes", 0), "-"),
        ("journal bytes", stats.get("run_journal_bytes", 0), "-"),
    ]
    if not smoke:
        report(
            "durability_overhead",
            f"Durability overhead — fig4 Q1 ({windows} windows, "
            f"median of {rounds})",
            ["measure", "seconds/bytes", "ratio"],
            rows,
        )
    else:
        print(
            f"smoke: plain={base:.4f}s journaled={durable:.4f}s "
            f"ratio={ratio:.2f} checkpoint={checkpoint_seconds:.4f}s "
            f"snapshot={checkpoint.get('bytes', 0)}B"
        )
    assert ratio < bound, (
        f"journaling overhead {ratio:.2f}x exceeds the {bound:.1f}x bound "
        f"(plain={base:.4f}s journaled={durable:.4f}s)"
    )
    assert stats.get("snapshot_id", 0) >= 1 and checkpoint.get("bytes", 0) > 0, (
        f"checkpoint left no durability stats: {stats}"
    )
    return ratio


def test_durability_overhead_under_bound():
    run(smoke=False)


if __name__ == "__main__":
    raise SystemExit(0 if run(smoke="--smoke" in sys.argv[1:]) else 1)

"""Figure 7 — decreasing step size (increasing number of basic windows),
with the cost breakdown into main-plan work and merge work.

(a) Q1, |W| = 102400 fixed, n ∈ {2 .. 2048}.  Paper: response time falls
    quickly as n grows, stabilizes, then rises slightly at very large n
    (per-call administration); the breakdown is dominated by the *main
    plan* cost, merging is negligible.
(b) Q2, |W| = 12800 fixed, n ∈ {2 .. 64}.  Paper: same falling trend, but
    the breakdown flips — *merge* cost dominates once the per-pair query
    processing becomes small (the intermediates are big).

The breakdown is measured by the interpreter profiler (``main`` vs
``merge`` instruction tags), not modelled.
"""

import pytest

from repro.bench import drive_join, drive_single, report
from repro.workloads import join_streams, selection_stream

from conftest import fresh_engine, q1_sql, q2_sql

WINDOWS = 5

Q1_WINDOW = 102_400
Q1_COUNTS = [2, 8, 32, 128, 512, 2048]

Q2_WINDOW = 102_400
Q2_COUNTS = [2, 4, 8, 16, 32, 64]
Q2_JOIN_SELECTIVITY = 3e-4


def _q1_run(basic_windows):
    step = Q1_WINDOW // basic_windows
    workload = selection_stream(
        Q1_WINDOW + WINDOWS * step, selectivity=0.2, seed=70, domain=100
    )
    engine = fresh_engine()
    query = engine.submit(q1_sql(Q1_WINDOW, step, workload.threshold))
    timings = drive_single(
        engine, query, "stream", workload.columns(), Q1_WINDOW, step, WINDOWS
    )
    return (
        timings.mean_response(skip_first=1),
        timings.tag_mean("main", skip_first=1),
        timings.tag_mean("merge", skip_first=1),
    )


def _q2_run(basic_windows):
    step = Q2_WINDOW // basic_windows
    workload = join_streams(Q2_WINDOW + WINDOWS * step, Q2_JOIN_SELECTIVITY, seed=71)
    engine = fresh_engine()
    query = engine.submit(q2_sql(Q2_WINDOW, step))
    timings = drive_join(
        engine,
        query,
        "stream1",
        workload.left_columns(),
        "stream2",
        workload.right_columns(),
        Q2_WINDOW,
        step,
        WINDOWS,
    )
    return (
        timings.mean_response(skip_first=1),
        timings.tag_mean("main", skip_first=1),
        timings.tag_mean("merge", skip_first=1),
    )


class TestFig7a:
    def test_fig7a_single_stream_breakdown(self, benchmark):
        reev_baseline = None
        rows = []
        for n in Q1_COUNTS:
            total, main, merge = _q1_run(n)
            rows.append((n, total, main, merge))
        # one DataCellR point for context (n-independent)
        step = Q1_WINDOW // 512
        workload = selection_stream(
            Q1_WINDOW + WINDOWS * step, 0.2, seed=72, domain=100
        )
        engine = fresh_engine()
        query = engine.submit(
            q1_sql(Q1_WINDOW, step, workload.threshold), mode="reeval"
        )
        reev = drive_single(
            engine, query, "stream", workload.columns(), Q1_WINDOW, step, WINDOWS
        )
        reev_baseline = reev.mean_response(skip_first=1)
        report(
            "fig7a",
            f"Figure 7(a) — Q1 vs #basic windows "
            f"(DataCellR total: {reev_baseline:.4f}s)",
            ["n", "DataCell total", "main plan", "merge"],
            rows,
        )
        # falling trend from tiny n to the sweet spot
        assert rows[2][1] < rows[0][1], rows
        # with few basic windows the main-plan cost dominates merging
        assert rows[0][2] > rows[0][3], rows
        benchmark.pedantic(lambda: _q1_run(512), rounds=3, iterations=1)


class TestFig7b:
    def test_fig7b_join_breakdown(self, benchmark):
        rows = []
        for n in Q2_COUNTS:
            total, main, merge = _q2_run(n)
            rows.append((n, total, main, merge))
        report(
            "fig7b",
            "Figure 7(b) — Q2 vs #basic windows",
            ["n", "DataCell total", "main plan", "merge"],
            rows,
        )
        # falling trend as the step shrinks
        assert rows[-1][1] < rows[0][1] * 1.5, rows
        # paper: for the join the merge cost eventually dominates the
        # (shrinking) per-pair query processing cost — check the trend that
        # merge's share grows from small n to large n
        share_small = rows[0][3] / max(rows[0][1], 1e-12)
        share_large = rows[-1][3] / max(rows[-1][1], 1e-12)
        assert share_large > share_small, rows
        benchmark.pedantic(lambda: _q2_run(16), rounds=2, iterations=1)

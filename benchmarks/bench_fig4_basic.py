"""Figure 4 — basic performance: response time per window, DataCell vs
DataCellR, for the single-stream Q1 and the multi-stream Q2.

Paper parameters (Q1 scaled ÷50, Q2 at paper scale; ratios preserved):
  Q1: |W| = 1.024e7 → 204800 tuples, 512 basic windows, selectivity 20 %
  Q2: |W| = 1.024e5 = 102400 tuples, 64 basic windows, join sel. 1e-4

Expected shape (paper): window 1 roughly equal (both process |W|);
windows 2+ DataCell flat and much lower than DataCellR.
"""

import pytest

from repro.bench import drive_join, drive_single, report
from repro.workloads import join_streams, selection_stream

from conftest import fresh_engine, q1_sql, q2_sql

WINDOWS = 20

Q1_WINDOW, Q1_BW = 204_800, 512
Q1_STEP = Q1_WINDOW // Q1_BW

Q2_WINDOW, Q2_BW = 102_400, 64
Q2_STEP = Q2_WINDOW // Q2_BW


def _q1_timings(mode):
    workload = selection_stream(
        Q1_WINDOW + WINDOWS * Q1_STEP, selectivity=0.2, seed=4, domain=100
    )
    engine = fresh_engine()
    query = engine.submit(q1_sql(Q1_WINDOW, Q1_STEP, workload.threshold), mode=mode)
    return drive_single(
        engine, query, "stream", workload.columns(), Q1_WINDOW, Q1_STEP, WINDOWS
    )


def _q2_timings(mode):
    workload = join_streams(
        Q2_WINDOW + WINDOWS * Q2_STEP, join_selectivity=1e-4, seed=5
    )
    engine = fresh_engine()
    query = engine.submit(q2_sql(Q2_WINDOW, Q2_STEP), mode=mode)
    return drive_join(
        engine,
        query,
        "stream1",
        workload.left_columns(),
        "stream2",
        workload.right_columns(),
        Q2_WINDOW,
        Q2_STEP,
        WINDOWS,
    )


class TestFig4a:
    def test_fig4a_single_stream(self, benchmark):
        incremental = _q1_timings("incremental")
        reevaluation = _q1_timings("reeval")
        rows = [
            (k + 1, reevaluation.response_seconds[k], incremental.response_seconds[k])
            for k in range(WINDOWS)
        ]
        report(
            "fig4a",
            "Figure 4(a) — Q1 response time per window (seconds)",
            ["window", "DataCellR", "DataCell"],
            rows,
        )
        # paper shape: steady-state incremental beats re-evaluation clearly
        incr_steady = incremental.mean_response(skip_first=1)
        reev_steady = reevaluation.mean_response(skip_first=1)
        assert incr_steady < reev_steady / 2, (incr_steady, reev_steady)
        # benchmark one steady-state incremental slide
        engine = fresh_engine()
        workload = selection_stream(
            Q1_WINDOW + 200 * Q1_STEP, selectivity=0.2, seed=6, domain=100
        )
        query = engine.submit(q1_sql(Q1_WINDOW, Q1_STEP, workload.threshold))
        engine.feed("stream", columns=workload.columns())
        query.factory.step()
        state = {"offset": 0}

        def one_slide():
            query.factory.step()

        benchmark.pedantic(one_slide, rounds=10, iterations=1)


class TestFig4b:
    def test_fig4b_multi_stream(self, benchmark):
        incremental = _q2_timings("incremental")
        reevaluation = _q2_timings("reeval")
        rows = [
            (k + 1, reevaluation.response_seconds[k], incremental.response_seconds[k])
            for k in range(WINDOWS)
        ]
        report(
            "fig4b",
            "Figure 4(b) — Q2 (join) response time per window (seconds)",
            ["window", "DataCellR", "DataCell"],
            rows,
        )
        incr_steady = incremental.mean_response(skip_first=1)
        reev_steady = reevaluation.mean_response(skip_first=1)
        # Directional check: incremental wins in steady state.  The factor is
        # smaller than the paper's (numpy's fixed per-operator cost weighs on
        # the 2n-1 per-pair joins) — see EXPERIMENTS.md.
        assert incr_steady < reev_steady, (incr_steady, reev_steady)

        workload = join_streams(Q2_WINDOW + 200 * Q2_STEP, 1e-4, seed=7)
        engine = fresh_engine()
        query = engine.submit(q2_sql(Q2_WINDOW, Q2_STEP))
        engine.feed("stream1", columns=workload.left_columns())
        engine.feed("stream2", columns=workload.right_columns())
        query.factory.step()

        def one_slide():
            query.factory.step()

        benchmark.pedantic(one_slide, rounds=10, iterations=1)

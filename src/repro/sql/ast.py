"""Abstract syntax tree for the SQL subset.

The grammar covers what the paper's workloads and examples need:
``SELECT``/``FROM``/``WHERE``/``GROUP BY``/``HAVING``/``ORDER BY``/``LIMIT``,
``DISTINCT``, scalar expressions, aggregates, 2-way equi-joins, and a window
clause attached to stream relations::

    SELECT x1, sum(x2) FROM s [RANGE 10240 SLIDE 20]
    WHERE x1 > 10 GROUP BY x1

Window forms:
``[RANGE n SLIDE m]``                count-based sliding window
``[RANGE n]``                        tumbling (slide == size)
``[LANDMARK SLIDE m]``               landmark window, report every m tuples
``[RANGE 10 SECONDS SLIDE 2 SECONDS]`` time-based sliding window
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Literal(Expr):
    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """Possibly-qualified column reference; ``table`` is None if bare."""

    table: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # + - * / % == != < <= > >= and or
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # - not
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


AGGREGATE_FUNCS = frozenset({"sum", "count", "min", "max", "avg"})


@dataclass(frozen=True)
class FuncCall(Expr):
    """Function application; only aggregates are currently defined."""

    name: str
    args: tuple[Expr, ...]
    star: bool = False  # count(*)

    def children(self) -> tuple[Expr, ...]:
        return self.args

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_FUNCS

    def __str__(self) -> str:
        inner = "*" if self.star else ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


def walk(expr: Expr):
    """Yield ``expr`` and all nested sub-expressions, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def contains_aggregate(expr: Expr) -> bool:
    """True if any nested node is an aggregate function call."""
    return any(isinstance(e, FuncCall) and e.is_aggregate for e in walk(expr))


def column_refs(expr: Expr) -> list[ColumnRef]:
    """All column references inside ``expr``, in syntax order."""
    return [e for e in walk(expr) if isinstance(e, ColumnRef)]


# ----------------------------------------------------------------------
# windows
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WindowClause:
    """Window specification attached to a stream in the FROM clause.

    ``size``/``step`` are tuple counts for count-based windows and
    microseconds for time-based ones.  Landmark windows have no size.
    """

    kind: str  # "sliding" | "tumbling" | "landmark"
    size: Optional[int]
    step: int
    time_based: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("sliding", "tumbling", "landmark"):
            raise ValueError(f"bad window kind {self.kind!r}")


# ----------------------------------------------------------------------
# query structure
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str
    window: Optional[WindowClause] = None

    def __str__(self) -> str:
        suffix = f" {self.alias}" if self.alias != self.name else ""
        return f"{self.name}{suffix}"


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None

    def output_name(self, position: int) -> str:
        """Column name in the result set."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return f"col{position}"


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class Query:
    """A parsed SELECT statement."""

    select_items: list[SelectItem]
    tables: list[TableRef]
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False

    def table_by_alias(self, alias: str) -> Optional[TableRef]:
        for table in self.tables:
            if table.alias == alias:
                return table
        return None

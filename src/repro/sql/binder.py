"""Name resolution and type checking for parsed queries.

The binder resolves every :class:`~repro.sql.ast.ColumnRef` against the
catalog through the FROM clause's aliases, rejects ambiguous bare names, and
computes the result atom of every expression.  It leaves the AST untouched —
resolution is returned as a :class:`Binding` lookup object keyed by the
(hashable, structurally-equal) expression nodes, which is sound because two
structurally equal references inside one query scope resolve identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BindError
from repro.kernel.atoms import Atom, division_result, promote
from repro.kernel.storage import Catalog
from repro.sql.ast import (
    AGGREGATE_FUNCS,
    BinOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    Query,
    UnaryOp,
    contains_aggregate,
    walk,
)

_COMPARISON_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})
_BOOL_OPS = frozenset({"and", "or"})
_ARITH_OPS = frozenset({"+", "-", "*", "%"})


@dataclass(frozen=True)
class BoundColumn:
    """Resolution of one column reference."""

    alias: str
    relation: str
    column: str
    atom: Atom
    is_stream: bool


class Binding:
    """Per-query name-resolution and typing context."""

    def __init__(self, query: Query, catalog: Catalog) -> None:
        self._catalog = catalog
        self._aliases: dict[str, str] = {}
        self._schemas: dict[str, list[tuple[str, Atom]]] = {}
        self._is_stream: dict[str, bool] = {}
        for table in query.tables:
            if table.alias in self._aliases:
                raise BindError(f"duplicate alias {table.alias!r} in FROM")
            schema = catalog.schema_of(table.name)
            self._aliases[table.alias] = table.name
            self._schemas[table.alias] = list(schema.columns)
            self._is_stream[table.alias] = catalog.is_stream(table.name)

    # -- relations ---------------------------------------------------------
    @property
    def aliases(self) -> list[str]:
        return list(self._aliases)

    def relation_of(self, alias: str) -> str:
        return self._aliases[alias]

    def is_stream(self, alias: str) -> bool:
        return self._is_stream[alias]

    def schema_of(self, alias: str) -> list[tuple[str, Atom]]:
        return self._schemas[alias]

    # -- columns ---------------------------------------------------------
    def resolve(self, ref: ColumnRef) -> BoundColumn:
        """Resolve a column reference, raising on unknown/ambiguous names."""
        if ref.table is not None:
            if ref.table not in self._aliases:
                raise BindError(f"unknown relation alias {ref.table!r}")
            for name, atom in self._schemas[ref.table]:
                if name == ref.name:
                    return BoundColumn(
                        ref.table,
                        self._aliases[ref.table],
                        name,
                        atom,
                        self._is_stream[ref.table],
                    )
            raise BindError(f"relation {ref.table!r} has no column {ref.name!r}")
        hits: list[BoundColumn] = []
        for alias, schema in self._schemas.items():
            for name, atom in schema:
                if name == ref.name:
                    hits.append(
                        BoundColumn(
                            alias,
                            self._aliases[alias],
                            name,
                            atom,
                            self._is_stream[alias],
                        )
                    )
        if not hits:
            raise BindError(f"unknown column {ref.name!r}")
        if len(hits) > 1:
            aliases = ", ".join(hit.alias for hit in hits)
            raise BindError(f"ambiguous column {ref.name!r} (in {aliases})")
        return hits[0]

    def aliases_in(self, expr: Expr) -> set[str]:
        """Relation aliases referenced anywhere inside ``expr``."""
        return {
            self.resolve(node).alias
            for node in walk(expr)
            if isinstance(node, ColumnRef)
        }

    # -- typing ---------------------------------------------------------
    def atom_of(self, expr: Expr) -> Atom:
        """Result atom of an expression (raises BindError on type errors)."""
        if isinstance(expr, Literal):
            if expr.value is None:
                raise BindError("NULL literals are not supported in expressions")
            from repro.kernel.atoms import atom_of_python

            return atom_of_python(expr.value)
        if isinstance(expr, ColumnRef):
            return self.resolve(expr).atom
        if isinstance(expr, UnaryOp):
            inner = self.atom_of(expr.operand)
            if expr.op == "not":
                if inner != Atom.BIT:
                    raise BindError("NOT requires a boolean operand")
                return Atom.BIT
            if expr.op == "-":
                if inner not in (Atom.INT, Atom.FLT):
                    raise BindError(f"cannot negate {inner}")
                return inner
            raise BindError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, BinOp):
            if expr.op in _BOOL_OPS:
                if self.atom_of(expr.left) != Atom.BIT or self.atom_of(expr.right) != Atom.BIT:
                    raise BindError(f"{expr.op.upper()} requires boolean operands")
                return Atom.BIT
            left = self.atom_of(expr.left)
            right = self.atom_of(expr.right)
            if expr.op in _COMPARISON_OPS:
                if (left == Atom.STR) != (right == Atom.STR):
                    raise BindError(f"cannot compare {left} with {right}")
                return Atom.BIT
            if expr.op == "/":
                return division_result(left, right)
            if expr.op in _ARITH_OPS:
                try:
                    return promote(left, right)
                except Exception as exc:
                    raise BindError(str(exc)) from exc
            raise BindError(f"unknown operator {expr.op!r}")
        if isinstance(expr, FuncCall):
            return self._function_atom(expr)
        raise BindError(f"cannot type expression {expr!r}")

    def _function_atom(self, call: FuncCall) -> Atom:
        if call.name not in AGGREGATE_FUNCS:
            raise BindError(f"unknown function {call.name!r}")
        if call.star:
            if call.name != "count":
                raise BindError(f"{call.name}(*) is not valid")
            return Atom.INT
        if len(call.args) != 1:
            raise BindError(f"{call.name} takes exactly one argument")
        if contains_aggregate(call.args[0]):
            raise BindError("nested aggregates are not allowed")
        arg = self.atom_of(call.args[0])
        if call.name == "count":
            return Atom.INT
        if call.name == "avg":
            if arg not in (Atom.INT, Atom.FLT):
                raise BindError("avg requires a numeric argument")
            return Atom.FLT
        if call.name == "sum":
            if arg not in (Atom.INT, Atom.FLT):
                raise BindError("sum requires a numeric argument")
            return arg
        # min / max keep the argument atom
        return arg


def bind(query: Query, catalog: Catalog) -> Binding:
    """Create a binding for ``query`` and eagerly validate every expression."""
    binding = Binding(query, catalog)
    for item in query.select_items:
        binding.atom_of(item.expr)
    if query.where is not None:
        if contains_aggregate(query.where):
            raise BindError("aggregates are not allowed in WHERE")
        if binding.atom_of(query.where) != Atom.BIT:
            raise BindError("WHERE predicate must be boolean")
    for key in query.group_by:
        if contains_aggregate(key):
            raise BindError("aggregates are not allowed in GROUP BY")
        binding.atom_of(key)
    if query.having is not None:
        if binding.atom_of(query.having) != Atom.BIT:
            raise BindError("HAVING predicate must be boolean")
    select_aliases = {item.alias for item in query.select_items if item.alias}
    for order in query.order_by:
        if (
            isinstance(order.expr, ColumnRef)
            and order.expr.table is None
            and order.expr.name in select_aliases
        ):
            continue  # ORDER BY a select-list alias — typed via its item
        binding.atom_of(order.expr)
    return binding

"""Physical compilation: logical plans → MAL-like programs.

The compiler walks a logical plan bottom-up, threading a *row context*
describing how the current intermediate rows are represented:

* :class:`BaseRows` — rows of one base relation, optionally restricted by a
  candidate list (late reconstruction: columns are projected on demand);
* :class:`JoinRows` — rows of a join result, one aligned OID column per
  input relation;
* :class:`ColRows` — rows materialized as named value columns (after
  aggregation/projection).

The DataCell incremental rewriter reuses exactly these builders to compile
plan *fragments* (per-basic-window programs, combine programs, finalize
programs) instead of whole plans — the paper's "split the plan as deep as
possible" rule is implemented by choosing where to stop calling these
helpers, not by a second compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import PlanError
from repro.kernel.atoms import Atom
from repro.kernel.execution.program import Lit, Operand, Program, Ref, SlotNames, TAG_MAIN
from repro.sql.ast import BinOp, ColumnRef, Expr, FuncCall, Literal, UnaryOp
from repro.sql.binder import Binding
from repro.sql.logical import (
    AggSpec,
    LAggregate,
    LDistinct,
    LFilter,
    LJoin,
    LLimit,
    LOrder,
    LProject,
    LScan,
    LogicalNode,
)
from repro.sql.optimizer.rules import eliminate_dead_code
from repro.sql.planner import PlannedQuery, split_conjuncts

_COMPARISONS = frozenset({"==", "!=", "<", "<=", ">", ">="})
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


def scan_slot(alias: str, column: str) -> str:
    """Canonical input-slot name for a scan column."""
    return f"{alias}__{column}"


# ----------------------------------------------------------------------
# row contexts
# ----------------------------------------------------------------------
class Rows:
    """Base class for row-context objects produced by the compiler."""


@dataclass
class BaseRows(Rows):
    """Rows of one base relation, possibly restricted by a candidate list."""

    alias: str
    col_slots: dict[str, str]  # column -> slot of the FULL column
    cand: Optional[str] = None  # slot of the candidate OID list
    _cache: dict[str, str] = field(default_factory=dict)
    _oids: Optional[str] = None


@dataclass
class JoinRows(Rows):
    """Rows of a join: per-alias aligned OID columns into the base columns."""

    oid_slots: dict[str, str]
    bases: dict[str, BaseRows]
    _cache: dict[tuple[str, str], str] = field(default_factory=dict)


@dataclass
class ColRows(Rows):
    """Rows materialized as ordered, aligned, named value columns."""

    slots: dict[str, str]  # output name -> slot (insertion-ordered)


@dataclass
class CompiledQuery:
    """A fully compiled plan, ready for the interpreter."""

    program: Program
    scan_inputs: dict[str, dict[str, str]]  # alias -> {column -> input slot}
    output_names: list[str]
    output_atoms: list[Atom]
    output_slots: list[str]


class PlanCompiler:
    """Compiles logical (sub)plans into one :class:`Program`.

    One compiler instance owns one program under construction; the DataCell
    rewriter instantiates several (fragment / combine / finalize) and steers
    which subtree goes into which.
    """

    def __init__(self, binding: Binding, tag: str = TAG_MAIN, prefix: str = "t") -> None:
        self.binding = binding
        self.tag = tag
        self.program = Program()
        self.names = SlotNames(prefix)
        self.scan_inputs: dict[str, dict[str, str]] = {}

    # -- low-level emission ----------------------------------------------
    def emit(self, opcode: str, args: list[Operand], hint: str = "") -> str:
        """Emit a single-output instruction, returning the fresh out slot."""
        out = self.names.fresh(hint)
        self.program.emit(opcode, args, [out], tag=self.tag)
        return out

    def emit_multi(self, opcode: str, args: list[Operand], hints: list[str]) -> list[str]:
        outs = [self.names.fresh(h) for h in hints]
        self.program.emit(opcode, args, outs, tag=self.tag)
        return outs

    def declare_input(self, slot: str) -> str:
        if slot not in self.program.inputs:
            self.program.inputs = tuple(self.program.inputs) + (slot,)
        return slot

    # -- scans ------------------------------------------------------------
    def rows_for_scan(self, scan: LScan) -> BaseRows:
        """Declare input slots for a scan's (pruned) columns."""
        columns = [name for name, __ in scan.output_columns()]
        if not columns:  # e.g. SELECT count(*) — keep one column for sizing
            columns = [scan.schema[0][0]]
        slots = {}
        for column in columns:
            slot = scan_slot(scan.alias, column)
            self.declare_input(slot)
            slots[column] = slot
        self.scan_inputs[scan.alias] = dict(slots)
        return BaseRows(scan.alias, slots)

    # -- column access ------------------------------------------------------
    def base_oids(self, rows: BaseRows) -> str:
        """Slot of the row→original-oid map for a base context."""
        if rows.cand is not None:
            return rows.cand
        if rows._oids is None:
            any_slot = next(iter(rows.col_slots.values()))
            # Single-threaded compile-time memo on a compiler-owned helper.
            rows._oids = self.emit("bat.mirror", [Ref(any_slot)], "oids")  # repro-check: allow(foreign-private-write)
        return rows._oids

    def column(self, rows: Rows, ref: ColumnRef) -> str:
        """Slot holding ``ref``'s values aligned with the current rows."""
        if isinstance(rows, ColRows):
            if ref.table is not None or ref.name not in rows.slots:
                raise PlanError(f"unknown column {ref} in materialized rows")
            return rows.slots[ref.name]
        if isinstance(rows, BaseRows):
            bound = self.binding.resolve(ref)
            if bound.alias != rows.alias:
                raise PlanError(f"column {ref} does not belong to {rows.alias!r}")
            full = rows.col_slots[bound.column]
            if rows.cand is None:
                return full
            cached = rows._cache.get(bound.column)
            if cached is None:
                cached = self.emit(
                    "algebra.projection", [Ref(rows.cand), Ref(full)], bound.column
                )
                rows._cache[bound.column] = cached
            return cached
        if isinstance(rows, JoinRows):
            bound = self.binding.resolve(ref)
            key = (bound.alias, bound.column)
            cached = rows._cache.get(key)
            if cached is None:
                base = rows.bases[bound.alias]
                full = base.col_slots[bound.column]
                cached = self.emit(
                    "algebra.projection",
                    [Ref(rows.oid_slots[bound.alias]), Ref(full)],
                    bound.column,
                )
                rows._cache[key] = cached
            return cached
        raise PlanError(f"cannot access columns of {rows!r}")

    def any_column(self, rows: Rows) -> str:
        """Some aligned column slot (used to size constant columns)."""
        if isinstance(rows, ColRows):
            return next(iter(rows.slots.values()))
        if isinstance(rows, BaseRows):
            if rows.cand is not None:
                return rows.cand
            return next(iter(rows.col_slots.values()))
        if isinstance(rows, JoinRows):
            return next(iter(rows.oid_slots.values()))
        raise PlanError(f"no columns in {rows!r}")

    # -- expressions ------------------------------------------------------
    def compile_expr(self, expr: Expr, rows: Rows) -> Operand:
        """Compile an expression to an operand (slot Ref or literal)."""
        if isinstance(expr, Literal):
            return Lit(expr.value)
        if isinstance(expr, ColumnRef):
            return Ref(self.column(rows, expr))
        if isinstance(expr, UnaryOp):
            inner = self.compile_expr(expr.operand, rows)
            if isinstance(inner, Lit):
                value = inner.value
                return Lit(-value if expr.op == "-" else (not value))
            opcode = "calc.neg" if expr.op == "-" else "calc.not"
            return Ref(self.emit(opcode, [inner]))
        if isinstance(expr, BinOp):
            left = self.compile_expr(expr.left, rows)
            right = self.compile_expr(expr.right, rows)
            if isinstance(left, Lit) and isinstance(right, Lit):
                raise PlanError(
                    f"unfolded constant expression {expr} (run the optimizer)"
                )
            if expr.op in ("and", "or"):
                opcode = f"calc.{expr.op}"
            elif expr.op == "/":
                opcode = "calc.div"
            else:
                opcode = f"calc.{expr.op}"
            return Ref(self.emit(opcode, [left, right]))
        if isinstance(expr, FuncCall):
            raise PlanError(f"aggregate {expr} outside an Aggregate node")
        raise PlanError(f"cannot compile expression {expr!r}")

    def expr_slot(self, expr: Expr, rows: Rows, atom: Atom) -> str:
        """Like compile_expr but always returns a column slot.

        Literals are expanded to constant columns sized like the current
        rows.
        """
        operand = self.compile_expr(expr, rows)
        if isinstance(operand, Ref):
            return operand.name
        count = self.emit("bat.count", [Ref(self.any_column(rows))], "n")
        return self.emit(
            "calc.const", [operand, Lit(atom), Ref(count)], "const"
        )

    # -- filters ------------------------------------------------------
    def compile_filter(self, predicate: Expr, rows: Rows) -> Rows:
        """Apply a filter, returning the narrowed row context."""
        for conjunct in split_conjuncts(predicate):
            rows = self._apply_conjunct(conjunct, rows)
        return rows

    def _theta_form(
        self, conjunct: Expr, rows: BaseRows
    ) -> Optional[tuple[str, object, str]]:
        """Recognize ``col <cmp> literal`` (either orientation)."""
        if not (isinstance(conjunct, BinOp) and conjunct.op in _COMPARISONS):
            return None
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right, op = right, left, _FLIPPED[op]
        if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
            return None
        bound = self.binding.resolve(left)
        if bound.alias != rows.alias:
            return None
        return rows.col_slots[bound.column], right.value, op

    def _apply_conjunct(self, conjunct: Expr, rows: Rows) -> Rows:
        if isinstance(rows, BaseRows):
            theta = self._theta_form(conjunct, rows)
            if theta is not None:
                col_slot, value, op = theta
                args: list[Operand] = [Ref(col_slot), Lit(value), Lit(op)]
                if rows.cand is not None:
                    args.append(Ref(rows.cand))
                cand = self.emit("algebra.thetaselect", args, "cand")
                return BaseRows(rows.alias, rows.col_slots, cand)
            mask = self.compile_expr(conjunct, rows)
            if isinstance(mask, Lit):
                raise PlanError(f"constant predicate {conjunct} not supported")
            sel = self.emit("algebra.mask_select", [mask], "sel")
            if rows.cand is not None:
                sel = self.emit(
                    "algebra.projection", [Ref(sel), Ref(rows.cand)], "cand"
                )
            return BaseRows(rows.alias, rows.col_slots, sel)
        if isinstance(rows, JoinRows):
            mask = self.compile_expr(conjunct, rows)
            sel = self.emit("algebra.mask_select", [mask], "sel")
            new_oids = {
                alias: self.emit("algebra.projection", [Ref(sel), Ref(slot)], alias)
                for alias, slot in rows.oid_slots.items()
            }
            return JoinRows(new_oids, rows.bases)
        if isinstance(rows, ColRows):
            mask = self.compile_expr(conjunct, rows)
            sel = self.emit("algebra.mask_select", [mask], "sel")
            new_slots = {
                name: self.emit("algebra.projection", [Ref(sel), Ref(slot)], name)
                for name, slot in rows.slots.items()
            }
            return ColRows(new_slots)
        raise PlanError(f"cannot filter {rows!r}")

    # -- joins ------------------------------------------------------
    def compile_join(self, node: LJoin, left: BaseRows, right: BaseRows) -> JoinRows:
        left_key = self.column(left, node.left_key)
        right_key = self.column(right, node.right_key)
        lo, ro = self.emit_multi(
            "algebra.join", [Ref(left_key), Ref(right_key)], ["lo", "ro"]
        )
        left_orig = self.emit(
            "algebra.projection", [Ref(lo), Ref(self.base_oids(left))], "loids"
        )
        right_orig = self.emit(
            "algebra.projection", [Ref(ro), Ref(self.base_oids(right))], "roids"
        )
        return JoinRows(
            {left.alias: left_orig, right.alias: right_orig},
            {left.alias: left, right.alias: right},
        )

    # -- aggregation ------------------------------------------------------
    def agg_arg_slot(self, spec: AggSpec, rows: Rows, gids: Optional[str]) -> str:
        """Slot of the aggregate's argument column (aligned with rows)."""
        if spec.arg is None:  # count(*)
            if gids is not None:
                return gids
            return self.any_column(rows)
        atom = self.binding.atom_of(spec.arg) if not isinstance(rows, ColRows) else Atom.FLT
        return self.expr_slot(spec.arg, rows, atom)

    def compile_aggregate(self, node: LAggregate, rows: Rows) -> ColRows:
        """Full (non-incremental) aggregation."""
        if node.keys:
            key_slots = [
                self.expr_slot(key, rows, atom)
                for key, atom in zip(node.keys, node.key_atoms)
            ]
            gids, extents, ngroups = self.emit_multi(
                "group.group",
                [Ref(s) for s in key_slots],
                ["gids", "extents", "ng"],
            )
            out: dict[str, str] = {}
            for index, key_slot in enumerate(key_slots):
                out[f"key_{index}"] = self.emit(
                    "algebra.projection", [Ref(extents), Ref(key_slot)], f"key{index}"
                )
            for spec in node.aggs:
                arg = self.agg_arg_slot(spec, rows, gids)
                opcode = f"aggr.sub{spec.func}"
                out[spec.out] = self.emit(
                    opcode, [Ref(arg), Ref(gids), Ref(ngroups)], spec.out
                )
            return ColRows(out)
        # global aggregation
        out = {}
        for spec in node.aggs:
            arg = self.agg_arg_slot(spec, rows, None)
            out[spec.out] = self.emit(f"aggr.{spec.func}", [Ref(arg)], spec.out)
        if len(out) > 1:
            aligned = self.emit_multi(
                "aggr.align",
                [Ref(slot) for slot in out.values()],
                list(out.keys()),
            )
            out = dict(zip(out.keys(), aligned))
        return ColRows(out)

    # -- top operators ------------------------------------------------------
    def compile_project(self, node: LProject, rows: Rows) -> ColRows:
        out: dict[str, str] = {}
        for (expr, name), atom in zip(node.items, node.atoms):
            out[name] = self.expr_slot(expr, rows, atom)
        return ColRows(out)

    def compile_distinct(self, rows: ColRows) -> ColRows:
        gids, extents, ngroups = self.emit_multi(
            "group.group",
            [Ref(slot) for slot in rows.slots.values()],
            ["gids", "extents", "ng"],
        )
        del gids, ngroups
        return ColRows(
            {
                name: self.emit("algebra.projection", [Ref(extents), Ref(slot)], name)
                for name, slot in rows.slots.items()
            }
        )

    def compile_order(self, node: LOrder, rows: ColRows) -> ColRows:
        order: Optional[str] = None
        for name, descending in reversed(node.keys):
            key_slot = rows.slots[name]
            if order is None:
                __, order = self.emit_multi(
                    "algebra.sort", [Ref(key_slot), Lit(descending)], ["sorted", "ord"]
                )
            else:
                order = self.emit(
                    "algebra.sortrefine",
                    [Ref(order), Ref(key_slot), Lit(descending)],
                    "ord",
                )
        assert order is not None
        return ColRows(
            {
                name: self.emit("algebra.projection", [Ref(order), Ref(slot)], name)
                for name, slot in rows.slots.items()
            }
        )

    def compile_limit(self, node: LLimit, rows: ColRows) -> ColRows:
        return ColRows(
            {
                name: self.emit(
                    "bat.slice", [Ref(slot), Lit(0), Lit(node.count)], name
                )
                for name, slot in rows.slots.items()
            }
        )

    # -- whole-tree compilation ---------------------------------------------
    def compile_tree(self, node: LogicalNode) -> Rows:
        """Recursively compile a logical subtree."""
        if isinstance(node, LScan):
            return self.rows_for_scan(node)
        if isinstance(node, LFilter):
            return self.compile_filter(node.predicate, self.compile_tree(node.child))
        if isinstance(node, LJoin):
            left = self.compile_tree(node.left)
            right = self.compile_tree(node.right)
            if not isinstance(left, BaseRows) or not isinstance(right, BaseRows):
                raise PlanError("joins over non-base inputs are not supported")
            return self.compile_join(node, left, right)
        if isinstance(node, LAggregate):
            return self.compile_aggregate(node, self.compile_tree(node.child))
        if isinstance(node, LProject):
            return self.compile_project(node, self.compile_tree(node.child))
        if isinstance(node, LDistinct):
            rows = self.compile_tree(node.child)
            assert isinstance(rows, ColRows)
            return self.compile_distinct(rows)
        if isinstance(node, LOrder):
            rows = self.compile_tree(node.child)
            assert isinstance(rows, ColRows)
            return self.compile_order(node, rows)
        if isinstance(node, LLimit):
            rows = self.compile_tree(node.child)
            assert isinstance(rows, ColRows)
            return self.compile_limit(node, rows)
        raise PlanError(f"cannot compile node {type(node).__name__}")


def compile_full(planned: PlannedQuery) -> CompiledQuery:
    """Compile a complete plan (re-evaluation / one-time query path)."""
    compiler = PlanCompiler(planned.binding)
    rows = compiler.compile_tree(planned.plan)
    if not isinstance(rows, ColRows):
        raise PlanError("plan root did not produce materialized columns")
    names = [name for name, __ in planned.plan.output_columns()]
    atoms = [atom for __, atom in planned.plan.output_columns()]
    slots = [rows.slots[name] for name in names]
    compiler.program.outputs = tuple(slots)
    eliminate_dead_code(compiler.program)
    compiler.program.validate()
    return CompiledQuery(
        program=compiler.program,
        scan_inputs=compiler.scan_inputs,
        output_names=names,
        output_atoms=atoms,
        output_slots=slots,
    )

"""AST → SQL text, round-trippable through the parser.

The partitioned-execution layer (:mod:`repro.core.partition`) rewrites a
submitted query's AST — substituting window clauses, splitting aggregates
into partials, synthesizing merge queries — and then needs SQL *text*
again, because shard workers parse and plan locally instead of unpickling
plan objects.  This module renders any :class:`repro.sql.ast.Query` (or
bare expression) back to SQL the lexer/parser accept verbatim.

Rendering is deliberately conservative: every binary/unary expression is
fully parenthesized, so operator precedence never has to be re-derived,
and ``unparse(parse(sql))`` always re-parses to a structurally equal AST
(property-tested in ``tests/test_unparse.py``).
"""

from __future__ import annotations

from repro.sql.ast import (
    BinOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    TableRef,
    UnaryOp,
    WindowClause,
)

#: AST operator spellings that differ from their token spellings.
_OP_TEXT = {"==": "="}


def unparse_expr(expr: Expr) -> str:
    """Render one expression; parenthesized wherever nesting is possible."""
    if isinstance(expr, Literal):
        return _literal(expr.value)
    if isinstance(expr, ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, BinOp):
        op = _OP_TEXT.get(expr.op, expr.op)
        return f"({unparse_expr(expr.left)} {op} {unparse_expr(expr.right)})"
    if isinstance(expr, UnaryOp):
        sep = " " if expr.op.isalpha() else ""
        return f"({expr.op}{sep}{unparse_expr(expr.operand)})"
    if isinstance(expr, FuncCall):
        inner = "*" if expr.star else ", ".join(unparse_expr(a) for a in expr.args)
        return f"{expr.name}({inner})"
    raise TypeError(f"cannot unparse expression node {expr!r}")


def _literal(value: object) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        # repr keeps full precision; the lexer needs a digit before any
        # exponent/dot, which repr guarantees for finite floats.
        return repr(value)
    if isinstance(value, int):
        return str(value)
    raise TypeError(f"cannot unparse literal {value!r}")


def _window(window: WindowClause) -> str:
    if window.kind == "landmark":
        if window.time_based:
            if window.step % 1_000:
                raise ValueError(
                    "cannot render a time window with sub-millisecond "
                    f"boundaries: step={window.step}us"
                )
            return f"[LANDMARK SLIDE {window.step // 1_000} MILLISECONDS]"
        return f"[LANDMARK SLIDE {window.step}]"
    if window.time_based:
        # Microseconds (the AST's canonical unit) have no keyword of their
        # own; milliseconds are the finest the grammar lexes, so time
        # windows must sit on whole-millisecond boundaries.
        size, step = window.size, window.step
        assert size is not None
        if size % 1_000 or step % 1_000:
            raise ValueError(
                "cannot render a time window with sub-millisecond "
                f"boundaries: size={size}us step={step}us"
            )
        text = f"[RANGE {size // 1_000} MILLISECONDS"
        if window.kind == "sliding":
            text += f" SLIDE {step // 1_000} MILLISECONDS"
        return text + "]"
    text = f"[RANGE {window.size}"
    if window.kind == "sliding":
        text += f" SLIDE {window.step}"
    return text + "]"


def _table(table: TableRef) -> str:
    # Grammar order: name [AS alias] [window-clause].
    text = table.name
    if table.alias != table.name:
        text += f" AS {table.alias}"
    if table.window is not None:
        text += f" {_window(table.window)}"
    return text


def _select_item(item: SelectItem) -> str:
    text = unparse_expr(item.expr)
    if item.alias:
        text += f" AS {item.alias}"
    return text


def _order_item(item: OrderItem) -> str:
    return unparse_expr(item.expr) + (" DESC" if item.descending else "")


def unparse(query: Query) -> str:
    """Render a full SELECT statement the parser accepts verbatim."""
    parts = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item(item) for item in query.select_items))
    parts.append("FROM")
    parts.append(", ".join(_table(table) for table in query.tables))
    if query.where is not None:
        parts.append(f"WHERE {unparse_expr(query.where)}")
    if query.group_by:
        parts.append(
            "GROUP BY " + ", ".join(unparse_expr(e) for e in query.group_by)
        )
    if query.having is not None:
        parts.append(f"HAVING {unparse_expr(query.having)}")
    if query.order_by:
        parts.append(
            "ORDER BY " + ", ".join(_order_item(item) for item in query.order_by)
        )
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)

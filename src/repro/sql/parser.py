"""Recursive-descent parser for the SQL subset (see :mod:`repro.sql.ast`).

Operator precedence (low → high):
``OR`` < ``AND`` < ``NOT`` < comparisons < ``+ -`` < ``* / %`` < unary minus.

Equality is written ``=`` in SQL and normalized to ``==`` in the AST so the
rest of the stack shares one spelling with the kernel calculator.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql.ast import (
    BinOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    TableRef,
    UnaryOp,
    WindowClause,
)
from repro.sql.lexer import Token, tokenize

_TIME_UNITS_US = {
    "milliseconds": 1_000,
    "seconds": 1_000_000,
    "minutes": 60 * 1_000_000,
    "hours": 3600 * 1_000_000,
}

_COMPARISONS = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing --------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._peek()
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            got = self._peek()
            want = text or kind
            raise ParseError(
                f"expected {want!r} but found {got.text!r} at position {got.position}"
            )
        return token

    # -- statements --------------------------------------------------------
    def parse_query(self) -> Query:
        self._expect("keyword", "select")
        distinct = self._accept("keyword", "distinct") is not None
        items = self._select_items()
        self._expect("keyword", "from")
        tables = self._table_refs()
        where = None
        if self._accept("keyword", "where"):
            where = self._expr()
        group_by: list[Expr] = []
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by.append(self._expr())
            while self._accept("punct", ","):
                group_by.append(self._expr())
        having = None
        if self._accept("keyword", "having"):
            having = self._expr()
        order_by: list[OrderItem] = []
        if self._accept("keyword", "order"):
            self._expect("keyword", "by")
            order_by.append(self._order_item())
            while self._accept("punct", ","):
                order_by.append(self._order_item())
        limit = None
        if self._accept("keyword", "limit"):
            token = self._expect("number")
            limit = int(token.text)
        self._accept("punct", ";")
        self._expect("eof")
        return Query(
            select_items=items,
            tables=tables,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _select_items(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self._accept("punct", ","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        expr = self._expr()
        alias = None
        if self._accept("keyword", "as"):
            alias = self._expect("ident").text
        elif self._check("ident"):
            alias = self._advance().text
        return SelectItem(expr, alias)

    def _order_item(self) -> OrderItem:
        expr = self._expr()
        descending = False
        if self._accept("keyword", "desc"):
            descending = True
        else:
            self._accept("keyword", "asc")
        return OrderItem(expr, descending)

    # -- FROM clause -------------------------------------------------------
    def _table_refs(self) -> list[TableRef]:
        tables = [self._table_ref()]
        while self._accept("punct", ","):
            tables.append(self._table_ref())
        return tables

    def _table_ref(self) -> TableRef:
        name = self._expect("ident").text
        alias = name
        if self._accept("keyword", "as"):
            alias = self._expect("ident").text
        elif self._check("ident"):
            alias = self._advance().text
        window = None
        if self._accept("punct", "["):
            window = self._window_clause()
            self._expect("punct", "]")
        return TableRef(name, alias, window)

    def _window_quantity(self) -> tuple[int, bool]:
        """A count or a time span; returns (value, time_based)."""
        token = self._expect("number")
        value = int(float(token.text))
        unit = self._peek()
        if unit.kind == "keyword" and unit.text in _TIME_UNITS_US:
            self._advance()
            return value * _TIME_UNITS_US[unit.text], True
        return value, False

    def _window_clause(self) -> WindowClause:
        if self._accept("keyword", "landmark"):
            self._expect("keyword", "slide")
            step, time_based = self._window_quantity()
            return WindowClause("landmark", None, step, time_based)
        self._expect("keyword", "range")
        size, size_time = self._window_quantity()
        if self._accept("keyword", "slide"):
            step, step_time = self._window_quantity()
            if size_time != step_time:
                raise ParseError("window RANGE and SLIDE must both be counts or both time")
            kind = "tumbling" if step == size else "sliding"
            return WindowClause(kind, size, step, size_time)
        return WindowClause("tumbling", size, size, size_time)

    # -- expressions ---------------------------------------------------
    def _expr(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept("keyword", "or"):
            left = BinOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._accept("keyword", "and"):
            left = BinOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._accept("keyword", "not"):
            return UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        token = self._peek()
        if token.kind == "op" and token.text in _COMPARISONS:
            self._advance()
            op = {"=": "==", "<>": "!="}.get(token.text, token.text)
            right = self._additive()
            return BinOp(op, left, right)
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self._advance()
                left = BinOp(token.text, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("*", "/", "%"):
                self._advance()
                left = BinOp(token.text, left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self._check("op", "-"):
            self._advance()
            return UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.kind == "string":
            self._advance()
            return Literal(token.text)
        if token.kind == "keyword" and token.text in ("true", "false"):
            self._advance()
            return Literal(token.text == "true")
        if token.kind == "keyword" and token.text == "null":
            self._advance()
            return Literal(None)
        if self._accept("punct", "("):
            inner = self._expr()
            self._expect("punct", ")")
            return inner
        if token.kind == "ident":
            self._advance()
            name = token.text
            if self._accept("punct", "("):
                return self._finish_call(name)
            if self._accept("punct", "."):
                column = self._expect("ident").text
                return ColumnRef(name, column)
            return ColumnRef(None, name)
        raise ParseError(
            f"unexpected token {token.text!r} at position {token.position}"
        )

    def _finish_call(self, name: str) -> Expr:
        if self._check("op", "*"):
            self._advance()
            self._expect("punct", ")")
            return FuncCall(name, (), star=True)
        args: list[Expr] = []
        if not self._check("punct", ")"):
            args.append(self._expr())
            while self._accept("punct", ","):
                args.append(self._expr())
        self._expect("punct", ")")
        return FuncCall(name, tuple(args))


def parse(sql: str) -> Query:
    """Parse a SELECT statement into a :class:`repro.sql.ast.Query`."""
    return _Parser(tokenize(sql)).parse_query()


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression (tests, HAVING strings in the API)."""
    parser = _Parser(tokenize(text))
    expr = parser._expr()
    parser._expect("eof")
    return expr

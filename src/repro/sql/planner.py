"""Lowering of bound queries into logical plans.

The planner classifies WHERE conjuncts (per-relation pushdown vs join
predicate vs post-join residual), builds the canonical plan shape described
in :mod:`repro.sql.logical`, and rewrites post-aggregation expressions to
reference the aggregate's synthetic output columns (``key_i`` / ``agg_i``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import PlanError
from repro.kernel.atoms import Atom
from repro.kernel.storage import Catalog
from repro.sql.ast import (
    BinOp,
    ColumnRef,
    Expr,
    FuncCall,
    Query,
    UnaryOp,
    contains_aggregate,
    walk,
)
from repro.sql.binder import Binding, bind
from repro.sql.logical import (
    AggSpec,
    LAggregate,
    LDistinct,
    LFilter,
    LJoin,
    LLimit,
    LOrder,
    LProject,
    LScan,
    LogicalNode,
)


@dataclass
class PlannedQuery:
    """A logical plan plus the binding context it was produced under."""

    plan: LogicalNode
    binding: Binding
    query: Query

    @property
    def output_columns(self) -> list[tuple[str, Atom]]:
        return self.plan.output_columns()


# ----------------------------------------------------------------------
# expression utilities
# ----------------------------------------------------------------------
def split_conjuncts(expr: Optional[Expr]) -> list[Expr]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def and_together(conjuncts: list[Expr]) -> Optional[Expr]:
    """Rebuild a conjunction (None for the empty list)."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = BinOp("and", result, conjunct)
    return result


def substitute(expr: Expr, mapping: dict[Expr, Expr]) -> Expr:
    """Structurally replace sub-expressions found in ``mapping``.

    Matching is by structural equality (the AST nodes are frozen
    dataclasses), applied top-down so whole group-key expressions are
    replaced before their parts are descended into.
    """
    if expr in mapping:
        return mapping[expr]
    if isinstance(expr, BinOp):
        return BinOp(expr.op, substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, substitute(expr.operand, mapping))
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(substitute(a, mapping) for a in expr.args), expr.star)
    return expr


def _collect_aggregates(exprs: list[Expr]) -> list[FuncCall]:
    """Distinct aggregate calls appearing in ``exprs``, in first-seen order."""
    seen: list[FuncCall] = []
    for expr in exprs:
        for node in walk(expr):
            if isinstance(node, FuncCall) and node.is_aggregate and node not in seen:
                seen.append(node)
    return seen


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------
class Planner:
    """Stateless translator: parsed+bound query → logical plan."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    def plan(self, query: Query) -> PlannedQuery:
        binding = bind(query, self._catalog)
        if not query.tables:
            raise PlanError("FROM clause is required")
        if len(query.tables) > 2:
            raise PlanError("at most two relations are supported in FROM")

        pushed: dict[str, list[Expr]] = {t.alias: [] for t in query.tables}
        join_keys: list[tuple[ColumnRef, ColumnRef]] = []
        residual: list[Expr] = []
        for conjunct in split_conjuncts(query.where):
            aliases = binding.aliases_in(conjunct)
            if len(aliases) <= 1:
                target = next(iter(aliases), query.tables[0].alias)
                pushed[target].append(conjunct)
                continue
            key = self._as_join_equality(conjunct, binding)
            if key is not None and not join_keys:
                join_keys.append(key)
            else:
                residual.append(conjunct)

        sides: dict[str, LogicalNode] = {}
        for table in query.tables:
            scan = LScan(
                relation=table.name,
                alias=table.alias,
                is_stream=binding.is_stream(table.alias),
                schema=binding.schema_of(table.alias),
                window=table.window,
            )
            node: LogicalNode = scan
            predicate = and_together(pushed[table.alias])
            if predicate is not None:
                node = LFilter(node, predicate)
            sides[table.alias] = node

        if len(query.tables) == 2:
            if not join_keys:
                raise PlanError(
                    "two-relation queries need an equi-join predicate in WHERE"
                )
            left_alias = query.tables[0].alias
            left_key, right_key = join_keys[0]
            if binding.resolve(left_key).alias != left_alias:
                left_key, right_key = right_key, left_key
            node = LJoin(
                sides[query.tables[0].alias],
                sides[query.tables[1].alias],
                left_key,
                right_key,
            )
        else:
            node = sides[query.tables[0].alias]
        residual_pred = and_together(residual)
        if residual_pred is not None:
            node = LFilter(node, residual_pred)

        return self._plan_top(query, binding, node)

    # -- helpers ---------------------------------------------------------
    def _as_join_equality(
        self, conjunct: Expr, binding: Binding
    ) -> Optional[tuple[ColumnRef, ColumnRef]]:
        """Recognize ``a.col = b.col`` between two different relations."""
        if not (isinstance(conjunct, BinOp) and conjunct.op == "=="):
            return None
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
            return None
        if binding.resolve(left).alias == binding.resolve(right).alias:
            return None
        return (left, right)

    def _plan_top(
        self, query: Query, binding: Binding, node: LogicalNode
    ) -> PlannedQuery:
        select_exprs = [item.expr for item in query.select_items]
        extra_exprs = []
        if query.having is not None:
            extra_exprs.append(query.having)
        extra_exprs += [o.expr for o in query.order_by]
        aggs = _collect_aggregates(select_exprs + extra_exprs)

        has_grouping = bool(query.group_by) or bool(aggs)
        mapping: dict[Expr, Expr] = {}
        if has_grouping:
            node, mapping = self._plan_aggregate(query, binding, node, aggs)

        having = query.having
        if having is not None:
            if not has_grouping:
                raise PlanError("HAVING requires GROUP BY or aggregates")
            node = LFilter(node, substitute(having, mapping))

        items: list[tuple[Expr, str]] = []
        atoms: list[Atom] = []
        used_names: set[str] = set()
        for position, item in enumerate(query.select_items):
            rewritten = substitute(item.expr, mapping) if has_grouping else item.expr
            if has_grouping:
                self._check_resolved(rewritten, node)
            name = item.output_name(position)
            if name in used_names:  # e.g. SELECT s1.x1, s2.x1
                suffix = 2
                while f"{name}_{suffix}" in used_names:
                    suffix += 1
                name = f"{name}_{suffix}"
            used_names.add(name)
            items.append((rewritten, name))
            atoms.append(binding.atom_of(item.expr))
        node = LProject(node, items, atoms)

        if query.distinct:
            node = LDistinct(node)

        if query.order_by:
            node = LOrder(node, self._order_keys(query, binding, mapping, node))
        if query.limit is not None:
            node = LLimit(node, query.limit)
        return PlannedQuery(node, binding, query)

    def _plan_aggregate(
        self,
        query: Query,
        binding: Binding,
        node: LogicalNode,
        aggs: list[FuncCall],
    ) -> tuple[LogicalNode, dict[Expr, Expr]]:
        mapping: dict[Expr, Expr] = {}
        key_atoms: list[Atom] = []
        for index, key in enumerate(query.group_by):
            if contains_aggregate(key):
                raise PlanError("aggregates are not allowed in GROUP BY")
            mapping[key] = ColumnRef(None, f"key_{index}")
            key_atoms.append(binding.atom_of(key))
        specs: list[AggSpec] = []
        agg_atoms: list[Atom] = []
        for index, call in enumerate(aggs):
            out = f"agg_{index}"
            arg = call.args[0] if call.args else None
            specs.append(AggSpec(call.name, arg, out))
            agg_atoms.append(binding.atom_of(call))
            mapping[call] = ColumnRef(None, out)
        aggregate = LAggregate(node, list(query.group_by), key_atoms, specs, agg_atoms)
        return aggregate, mapping

    def _check_resolved(self, expr: Expr, node: LogicalNode) -> None:
        """Post-aggregation expressions may only use aggregate outputs."""
        available = {name for name, __ in node.output_columns()}
        for sub in walk(expr):
            if isinstance(sub, ColumnRef):
                if sub.table is not None or sub.name not in available:
                    raise PlanError(
                        f"column {sub} must appear in GROUP BY or an aggregate"
                    )

    def _order_keys(
        self,
        query: Query,
        binding: Binding,
        mapping: dict[Expr, Expr],
        node: LogicalNode,
    ) -> list[tuple[str, bool]]:
        """Resolve ORDER BY items to output column names of the projection."""
        available = {name for name, __ in node.output_columns()}
        # Map each projected expression back to its output name.
        assert isinstance(node, (LProject, LDistinct))
        project = node.child if isinstance(node, LDistinct) else node
        assert isinstance(project, LProject)
        by_expr = {expr: name for expr, name in project.items}
        keys: list[tuple[str, bool]] = []
        for order in query.order_by:
            rewritten = substitute(order.expr, mapping) if mapping else order.expr
            if isinstance(rewritten, ColumnRef) and rewritten.table is None and (
                rewritten.name in available
            ):
                keys.append((rewritten.name, order.descending))
            elif rewritten in by_expr:
                keys.append((by_expr[rewritten], order.descending))
            else:
                raise PlanError(
                    f"ORDER BY expression {order.expr} must appear in the select list"
                )
        return keys


def plan_query(sql_or_query, catalog: Catalog) -> PlannedQuery:
    """Convenience: parse (if needed) and plan a query."""
    from repro.sql.parser import parse

    query = parse(sql_or_query) if isinstance(sql_or_query, str) else sql_or_query
    return Planner(catalog).plan(query)

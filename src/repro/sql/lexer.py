"""Hand-written SQL lexer.

Produces a flat token list the recursive-descent parser consumes.  Keywords
are case-insensitive; identifiers preserve case but are matched
case-insensitively by the binder (lowered at parse time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexerError

KEYWORDS = frozenset(
    {
        "select", "from", "where", "group", "by", "having", "order", "limit",
        "and", "or", "not", "as", "asc", "desc", "distinct", "range", "slide",
        "landmark", "true", "false", "null", "seconds", "minutes", "hours",
        "milliseconds",
    }
)

# multi-char operators first so maximal munch works
_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = {"(": "lparen", ")": "rparen", ",": "comma", "[": "lbracket",
          "]": "rbracket", ".": "dot", ";": "semicolon"}


@dataclass(frozen=True)
class Token:
    kind: str  # keyword | ident | number | string | op | punct | eof
    text: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.text!r}@{self.position})"


def tokenize(sql: str) -> list[Token]:
    """Split ``sql`` into tokens, ending with an ``eof`` token."""
    tokens: list[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i].lower()
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = sql[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # Leave a trailing qualifier dot (e.g. "1.x") alone; the
                    # number grammar only eats ``digit . digit``.
                    if i + 1 < n and sql[i + 1].isdigit():
                        seen_dot = True
                        i += 1
                    else:
                        break
                elif c in "eE" and not seen_exp and i + 1 < n and (
                    sql[i + 1].isdigit() or sql[i + 1] in "+-"
                ):
                    seen_exp = True
                    i += 2 if sql[i + 1] in "+-" else 1
                else:
                    break
            tokens.append(Token("number", sql[start:i], start))
            continue
        if ch == "'":
            start = i
            i += 1
            chars: list[str] = []
            while i < n:
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":  # escaped quote
                        chars.append("'")
                        i += 2
                        continue
                    break
                chars.append(sql[i])
                i += 1
            if i >= n:
                raise LexerError(f"unterminated string literal at {start}")
            i += 1  # closing quote
            tokens.append(Token("string", "".join(chars), start))
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token("op", op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token("punct", ch, i))
            i += 1
            continue
        raise LexerError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("eof", "", n))
    return tokens

"""SQL front-end: lexer, parser, binder, planner, optimizer, compiler."""

from repro.sql.ast import Query, WindowClause
from repro.sql.binder import Binding, bind
from repro.sql.logical import pretty_plan
from repro.sql.optimizer import optimize
from repro.sql.parser import parse, parse_expression
from repro.sql.physical import CompiledQuery, compile_full
from repro.sql.planner import PlannedQuery, Planner, plan_query

__all__ = [
    "Binding",
    "CompiledQuery",
    "PlannedQuery",
    "Planner",
    "Query",
    "WindowClause",
    "bind",
    "compile_full",
    "optimize",
    "parse",
    "parse_expression",
    "plan_query",
    "pretty_plan",
]

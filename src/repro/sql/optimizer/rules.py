"""Rule-based logical optimizations.

DataCell deliberately reuses the DBMS optimizer output (paper §3, "Plan
Rewriting" takes *optimized* plans as input).  The rules here are the
classical algebraic ones the reproduction needs:

* constant folding inside predicates and projections,
* filter fusion (adjacent filters AND-ed together),
* projection pruning (scans only materialize referenced columns),
* dead-code elimination over compiled physical programs
  (:func:`eliminate_dead_code`, backed by the liveness analysis in
  :mod:`repro.analysis.dataflow`).

Predicate pushdown happens structurally in the planner (conjuncts are
classified while building the plan), so no separate rule is needed.
"""

from __future__ import annotations

import operator
from typing import Optional

from repro.sql.ast import BinOp, ColumnRef, Expr, FuncCall, Literal, UnaryOp, walk
from repro.sql.binder import Binding
from repro.sql.logical import (
    LAggregate,
    LFilter,
    LJoin,
    LProject,
    LogicalNode,
    find_scans,
)

_FOLDABLE = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
}


def fold_constants(expr: Expr) -> Expr:
    """Evaluate literal-only subtrees (``2*10`` → ``20``)."""
    if isinstance(expr, BinOp):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        if isinstance(left, Literal) and isinstance(right, Literal):
            fn = _FOLDABLE.get(expr.op)
            if fn is not None:
                try:
                    return Literal(fn(left.value, right.value))
                except ZeroDivisionError:
                    pass
        return BinOp(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        operand = fold_constants(expr.operand)
        if isinstance(operand, Literal):
            if expr.op == "-" and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
            if expr.op == "not" and isinstance(operand.value, bool):
                return Literal(not operand.value)
        return UnaryOp(expr.op, operand)
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(fold_constants(a) for a in expr.args), expr.star)
    return expr


def fold_plan_constants(node: LogicalNode) -> LogicalNode:
    """Apply constant folding to every expression in the plan, in place."""
    if isinstance(node, LFilter):
        node.predicate = fold_constants(node.predicate)
    elif isinstance(node, LAggregate):
        node.keys = [fold_constants(k) for k in node.keys]
        node.aggs = [
            type(a)(a.func, fold_constants(a.arg) if a.arg is not None else None, a.out)
            for a in node.aggs
        ]
    elif isinstance(node, LProject):
        node.items = [(fold_constants(e), name) for e, name in node.items]
    for child in node.children():
        fold_plan_constants(child)
    return node


def fuse_filters(node: LogicalNode) -> LogicalNode:
    """Collapse ``Filter(Filter(x))`` into a single conjunctive filter."""
    if isinstance(node, LFilter) and isinstance(node.child, LFilter):
        inner = node.child
        node.predicate = BinOp("and", inner.predicate, node.predicate)
        node.child = inner.child
        return fuse_filters(node)
    for attr in ("child", "left", "right"):
        child = getattr(node, attr, None)
        if isinstance(child, LogicalNode):
            setattr(node, attr, fuse_filters(child))
    return node


def prune_projections(node: LogicalNode, binding: Binding) -> LogicalNode:
    """Record, per scan, the set of columns the plan actually touches."""
    needed: dict[str, set[str]] = {}

    def note(expr: Optional[Expr]) -> None:
        if expr is None:
            return
        for sub in walk(expr):
            if isinstance(sub, ColumnRef):
                try:
                    bound = binding.resolve(sub)
                except Exception:
                    continue  # synthetic post-aggregation columns
                needed.setdefault(bound.alias, set()).add(bound.column)

    def visit(n: LogicalNode) -> None:
        if isinstance(n, LFilter):
            note(n.predicate)
        elif isinstance(n, LJoin):
            note(n.left_key)
            note(n.right_key)
        elif isinstance(n, LAggregate):
            for key in n.keys:
                note(key)
            for agg in n.aggs:
                note(agg.arg)
        elif isinstance(n, LProject):
            for expr, __ in n.items:
                note(expr)
        for child in n.children():
            visit(child)

    visit(node)
    for scan in find_scans(node):
        columns = needed.get(scan.alias, set())
        scan.needed = [name for name, __ in scan.schema if name in columns]
    return node


def eliminate_dead_code(program, keep=()) -> int:
    """Drop instructions whose outputs never reach a program output.

    Sound because every interpreter opcode is a pure function of its
    operands (the interpreter contract) — removing an unread instruction
    cannot change observable results.  ``keep`` names extra slots to treat
    as live (e.g. slots the factory reads by name).  Mutates ``program``
    in place and returns the number of instructions removed.
    """
    # Imported lazily: repro.analysis pulls in modules that import this one.
    from repro.analysis.dataflow import eliminate_dead_instructions

    return eliminate_dead_instructions(program, keep=frozenset(keep))

"""Rule driver for the logical optimizer."""

from repro.sql.optimizer.rules import (
    eliminate_dead_code,
    fold_constants,
    fold_plan_constants,
    fuse_filters,
    prune_projections,
)
from repro.sql.planner import PlannedQuery


def optimize(planned: PlannedQuery) -> PlannedQuery:
    """Run the rule pipeline over a planned query (mutates the plan)."""
    plan = planned.plan
    plan = fold_plan_constants(plan)
    plan = fuse_filters(plan)
    plan = prune_projections(plan, planned.binding)
    planned.plan = plan
    return planned


__all__ = [
    "eliminate_dead_code",
    "fold_constants",
    "fold_plan_constants",
    "fuse_filters",
    "optimize",
    "prune_projections",
]

"""Logical query plans.

The planner lowers a bound AST into a small tree of logical operators; the
optimizer rewrites that tree; the physical compiler (and the DataCell
incremental rewriter) consume it.  Plans are deliberately canonical:

    Limit(Order(Distinct(Project(Filter[having](Aggregate(
        Filter*(Join(Filter*(Scan), Filter*(Scan)) | Scan)))))))

with every layer optional except Project and the Scans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.kernel.atoms import Atom
from repro.sql.ast import ColumnRef, Expr, WindowClause


@dataclass
class LogicalNode:
    """Base class; ``output_columns`` lists (name, atom) of the node output."""

    def output_columns(self) -> list[tuple[str, Atom]]:  # pragma: no cover
        raise NotImplementedError

    def children(self) -> list["LogicalNode"]:
        return []


@dataclass
class LScan(LogicalNode):
    """Leaf: a base table or a declared stream.

    Column output is the full relation schema; the optimizer's projection
    pruning narrows ``needed`` so baskets only snapshot referenced columns.
    """

    relation: str
    alias: str
    is_stream: bool
    schema: list[tuple[str, Atom]]
    window: Optional[WindowClause] = None
    needed: Optional[list[str]] = None  # set by projection pruning

    def output_columns(self) -> list[tuple[str, Atom]]:
        if self.needed is None:
            return list(self.schema)
        keep = set(self.needed)
        return [(name, atom) for name, atom in self.schema if name in keep]


@dataclass
class LFilter(LogicalNode):
    """Row filter; predicate references the child's columns."""

    child: LogicalNode
    predicate: Expr

    def output_columns(self) -> list[tuple[str, Atom]]:
        return self.child.output_columns()

    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LJoin(LogicalNode):
    """2-way equi-join on one column per side.

    Join keys are plain column references (the paper's multi-stream queries
    join on attributes); the planner rejects computed join keys.
    """

    left: LogicalNode
    right: LogicalNode
    left_key: ColumnRef
    right_key: ColumnRef

    def output_columns(self) -> list[tuple[str, Atom]]:
        return self.left.output_columns() + self.right.output_columns()

    def children(self) -> list[LogicalNode]:
        return [self.left, self.right]


@dataclass(frozen=True)
class AggSpec:
    """One aggregate computation: ``func(arg)`` named ``out``."""

    func: str  # sum | count | min | max | avg
    arg: Optional[Expr]  # None for count(*)
    out: str


@dataclass
class LAggregate(LogicalNode):
    """Grouped or global aggregation.

    Output columns: ``key_0..key_{k-1}`` then each ``AggSpec.out``.
    """

    child: LogicalNode
    keys: list[Expr]
    key_atoms: list[Atom]
    aggs: list[AggSpec]
    agg_atoms: list[Atom]

    def output_columns(self) -> list[tuple[str, Atom]]:
        cols = [(f"key_{i}", atom) for i, atom in enumerate(self.key_atoms)]
        cols += [(spec.out, atom) for spec, atom in zip(self.aggs, self.agg_atoms)]
        return cols

    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LProject(LogicalNode):
    """Final projection: named expressions over the child's columns."""

    child: LogicalNode
    items: list[tuple[Expr, str]]
    atoms: list[Atom]

    def output_columns(self) -> list[tuple[str, Atom]]:
        return [(name, atom) for (__, name), atom in zip(self.items, self.atoms)]

    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LDistinct(LogicalNode):
    child: LogicalNode

    def output_columns(self) -> list[tuple[str, Atom]]:
        return self.child.output_columns()

    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LOrder(LogicalNode):
    """Order by output columns of the child (name, descending)."""

    child: LogicalNode
    keys: list[tuple[str, bool]]

    def output_columns(self) -> list[tuple[str, Atom]]:
        return self.child.output_columns()

    def children(self) -> list[LogicalNode]:
        return [self.child]


@dataclass
class LLimit(LogicalNode):
    child: LogicalNode
    count: int

    def output_columns(self) -> list[tuple[str, Atom]]:
        return self.child.output_columns()

    def children(self) -> list[LogicalNode]:
        return [self.child]


# ----------------------------------------------------------------------
# traversal helpers
# ----------------------------------------------------------------------
def walk_plan(node: LogicalNode):
    """Yield every node of the plan, pre-order."""
    yield node
    for child in node.children():
        yield from walk_plan(child)


def find_scans(node: LogicalNode) -> list[LScan]:
    """All leaf scans, left-to-right."""
    return [n for n in walk_plan(node) if isinstance(n, LScan)]


def stream_scans(node: LogicalNode) -> list[LScan]:
    """Leaf scans over declared streams."""
    return [scan for scan in find_scans(node) if scan.is_stream]


def pretty_plan(node: LogicalNode, indent: int = 0) -> str:
    """Indented plan listing for EXPLAIN output and test goldens."""
    pad = "  " * indent
    if isinstance(node, LScan):
        kind = "stream" if node.is_stream else "table"
        window = f" window={node.window}" if node.window else ""
        cols = ",".join(name for name, __ in node.output_columns())
        line = f"{pad}Scan[{kind}] {node.relation} as {node.alias} ({cols}){window}"
        return line
    if isinstance(node, LFilter):
        head = f"{pad}Filter {node.predicate}"
    elif isinstance(node, LJoin):
        head = f"{pad}Join {node.left_key} = {node.right_key}"
    elif isinstance(node, LAggregate):
        keys = ", ".join(str(k) for k in node.keys) or "(global)"
        aggs = ", ".join(f"{a.func}({a.arg if a.arg else '*'}) as {a.out}" for a in node.aggs)
        head = f"{pad}Aggregate keys=[{keys}] aggs=[{aggs}]"
    elif isinstance(node, LProject):
        items = ", ".join(f"{expr} as {name}" for expr, name in node.items)
        head = f"{pad}Project {items}"
    elif isinstance(node, LDistinct):
        head = f"{pad}Distinct"
    elif isinstance(node, LOrder):
        keys = ", ".join(f"{name}{' desc' if desc else ''}" for name, desc in node.keys)
        head = f"{pad}Order {keys}"
    elif isinstance(node, LLimit):
        head = f"{pad}Limit {node.count}"
    else:  # pragma: no cover - defensive
        head = f"{pad}{type(node).__name__}"
    parts = [head]
    parts += [pretty_plan(child, indent + 1) for child in node.children()]
    return "\n".join(parts)

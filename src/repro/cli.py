"""Interactive shell for the DataCell engine (``python -m repro``).

A small line-oriented console a downstream user can drive without writing
Python: declare streams/tables, register continuous queries, replay CSV
files into streams, and inspect results.

Commands (case-insensitive keywords; one per line)::

    CREATE STREAM name (col type, ...) [PARTITION BY col]
                                           declare a (partitioned) stream
    CREATE TABLE name (col type, ...)      create a stored table
    SUBMIT [REEVAL] <select ...>           register a continuous query
    FEED stream FROM path.csv [CHUNK n]    replay a CSV into a stream
    LOAD table FROM path.csv               bulk-load a stored table
    RUN                                    fire all ready factories
    RESULTS [query] [LAST]                 print window results
    EXPLAIN <select ...>                   show the optimized logical plan
    EXPLAIN CONTINUOUS <select ...>        show the incremental programs
    STATS                                  overload counters + factory stats
    TOP                                    live-style per-factory table
    TRACE [n]                              dump the last n firing spans
    METRICS [PROM|JSON]                    export the metrics snapshot
    <select ...>                           one-time query over tables
    QUERIES / STREAMS / HELP / QUIT

The console is a thin veneer: every command maps 1:1 onto a
:class:`repro.DataCellEngine` method, so scripts double as API examples.

``python -m repro --workers N [script...]`` runs the console's engine with
a parallel firing scheduler (N worker threads); the default (1) is the
deterministic sequential mode.

``--capacity N`` bounds every stream the console creates to N parked
tuples per query basket, and ``--overflow POLICY`` picks what happens when
producers outrun the engine (``fail``, ``block[:timeout]``,
``shed-oldest``, ``shed-newest``, ``sample:rate[:seed]`` — see
docs/OPERATIONS.md).  The ``STATS`` command prints per-stream overload
counters and per-factory profiler snapshots.

``--partitions P`` enables key-partitioned streams: ``CREATE STREAM ...
PARTITION BY col`` then hash-routes arriving tuples across P shard
worker processes and merges each query's per-partition windows back
exactly (DESIGN.md §14).  With the default ``--partitions 1`` the
``PARTITION BY`` clause is accepted but execution stays in-process.

``--landmark-spill-mb M`` bounds every landmark query's in-memory state
to roughly M megabytes: cold history is folded and spilled to CRC-framed
run files, paged back transparently for re-aggregation (DESIGN.md §16).
``STATS`` then reports per-query hot/disk bytes and spill counters.

``--backend compiled`` switches the console's engine to the compiled
execution backend (verified programs specialized into fused callables,
DESIGN.md §13); the default ``interpreted`` is the op-at-a-time
interpreter.  Results are identical either way.

``python -m repro lint [...]`` is a separate subcommand that statically
verifies rewritten plans (see :mod:`repro.analysis.lint`), and
``python -m repro fuzz [...]`` runs the differential fuzzing harness
(see :mod:`repro.testing.fuzz`).

``python -m repro serve --data-dir DIR`` runs the console against a
*durable* engine: every command is journaled to the data directory,
checkpoints are taken in the background (``--checkpoint-interval`` /
``--checkpoint-bytes``), and a crashed serve session is recovered —
snapshot restore plus journal replay — on the next start.  The console
gains a ``CHECKPOINT`` command to force one on demand (docs/OPERATIONS.md
§7).

Observability subcommands (docs/OPERATIONS.md §6)::

    python -m repro top [--once | --interval S --count N] [script...]
    python -m repro trace [--last N] [script...]

Both replay the given console scripts into a fresh engine first, then
render the observability views: ``top`` the per-factory table (repeating
every ``--interval`` seconds until ``--count`` frames, or a single frame
with ``--once``/when scripts are given), ``trace`` the recent firing
spans.
"""

from __future__ import annotations

import re
import shlex
import sys
from typing import Optional, TextIO

from repro.core.engine import DataCellEngine
from repro.core.overflow import OverflowPolicy, parse_overflow_spec
from repro.errors import ReproError
from repro.workloads.csvio import read_csv_chunks

_SCHEMA_RE = re.compile(r"^\s*(\w+)\s*\((.*)\)\s*$", re.DOTALL)


def _parse_schema(text: str) -> tuple[str, list[tuple[str, str]]]:
    """Parse ``name (col type, col type, ...)``."""
    match = _SCHEMA_RE.match(text)
    if not match:
        raise ReproError(f"expected 'name (col type, ...)', got {text!r}")
    name = match.group(1)
    columns = []
    for part in match.group(2).split(","):
        pieces = part.split()
        if len(pieces) != 2:
            raise ReproError(f"bad column declaration {part.strip()!r}")
        columns.append((pieces[0], pieces[1]))
    if not columns:
        raise ReproError("at least one column is required")
    return name, columns


class Console:
    """The command interpreter; one instance owns one engine.

    ``capacity``/``overflow`` are the console-wide overload defaults
    applied to every ``CREATE STREAM`` (the policy template is cloned per
    basket by the engine).
    """

    def __init__(
        self,
        out: Optional[TextIO] = None,
        workers: int = 1,
        capacity: Optional[int] = None,
        overflow: Optional[OverflowPolicy] = None,
        backend: str = "interpreted",
        partitions: int = 1,
        engine: Optional[DataCellEngine] = None,
        landmark_spill_mb: Optional[float] = None,
    ) -> None:
        self.engine = engine if engine is not None else DataCellEngine(
            workers=workers,
            backend=backend,
            partitions=partitions,
            landmark_spill_mb=landmark_spill_mb,
        )
        self.capacity = capacity
        self.overflow = overflow
        self.out = out if out is not None else sys.stdout
        self._done = False

    # ------------------------------------------------------------------
    def println(self, text: str = "") -> None:
        print(text, file=self.out)

    def execute(self, line: str) -> bool:
        """Execute one command line; returns False once QUIT is seen."""
        line = line.strip()
        if not line or line.startswith("--"):
            return not self._done
        try:
            self._dispatch(line)
        except ReproError as exc:
            self.println(f"error: {exc}")
        except Exception as exc:  # surface, keep the console alive
            self.println(f"error: {type(exc).__name__}: {exc}")
        return not self._done

    def run(self, source: TextIO) -> None:
        """Drive the console from a file-like source of lines."""
        for line in source:
            if not self.execute(line):
                break

    # ------------------------------------------------------------------
    def _dispatch(self, line: str) -> None:
        upper = line.upper()
        if upper in ("QUIT", "EXIT"):
            self._done = True
            return
        if upper == "HELP":
            self.println(__doc__ or "")
            return
        if upper == "RUN":
            fired = self.engine.run_until_idle()
            self.println(f"fired {fired} window(s)")
            return
        if upper == "QUERIES":
            for name, query in self._all_queries().items():
                self.println(
                    f"{name}: [{query.mode}] {query.sql} "
                    f"({len(query.results())} windows)"
                )
            return
        if upper == "STREAMS":
            for stream in self.engine._stream_baskets:
                schema = self.engine.catalog.stream(stream).schema
                cols = ", ".join(f"{n} {a.value}" for n, a in schema.columns)
                self.println(f"{stream} ({cols})")
            return
        if upper == "STATS":
            self._stats()
            return
        if upper == "CHECKPOINT":
            stats = self.engine.checkpoint()
            self.println(
                f"checkpoint {stats['snapshot_id']}: {stats['bytes']} byte(s), "
                f"journal horizon seq {stats['horizon']}"
            )
            return
        if upper == "TOP":
            from repro.obs.console import render_top

            self.println(render_top(self.engine))
            return
        if upper == "TRACE" or upper.startswith("TRACE "):
            from repro.obs.console import render_trace

            rest = line[len("TRACE"):].strip()
            last = int(rest) if rest else 10
            self.println(render_trace(self.engine, last=last))
            return
        if upper == "METRICS" or upper.startswith("METRICS "):
            rest = line[len("METRICS"):].strip().upper()
            if rest in ("", "PROM", "PROMETHEUS"):
                self.println(self.engine.metrics(format="prometheus"))
            elif rest == "JSON":
                self.println(self.engine.metrics(format="json"))
            else:
                raise ReproError(f"METRICS takes PROM or JSON, got {rest!r}")
            return
        if upper.startswith("CREATE STREAM "):
            rest = line[len("CREATE STREAM "):]
            partition_by = None
            match = re.search(r"\)\s*PARTITION\s+BY\s+(\w+)\s*$", rest, re.I)
            if match:
                partition_by = match.group(1)
                rest = rest[: match.start() + 1]
            name, columns = _parse_schema(rest)
            self.engine.create_stream(
                name,
                columns,
                capacity=self.capacity,
                overflow=self.overflow,
                partition_by=partition_by,
            )
            suffix = ""
            if self.capacity is not None:
                policy = self.overflow.describe() if self.overflow else "fail"
                suffix = f" (capacity {self.capacity}, overflow {policy})"
            if partition_by is not None:
                suffix += (
                    f" (partitioned by {partition_by} across "
                    f"{self.engine.partitions} partition(s))"
                )
            self.println(f"stream {name} created{suffix}")
            return
        if upper.startswith("CREATE TABLE "):
            name, columns = _parse_schema(line[len("CREATE TABLE "):])
            self.engine.create_table(name, columns)
            self.println(f"table {name} created")
            return
        if upper.startswith("SUBMIT "):
            rest = line[len("SUBMIT "):].strip()
            mode = "incremental"
            if rest.upper().startswith("REEVAL "):
                mode = "reeval"
                rest = rest[len("REEVAL "):]
            query = self.engine.submit(rest, mode=mode)
            self.println(f"registered {query.name} [{mode}]")
            return
        if upper.startswith("FEED "):
            self._feed(line[len("FEED "):])
            return
        if upper.startswith("LOAD "):
            self._load(line[len("LOAD "):])
            return
        if upper.startswith("RESULTS"):
            self._results(line[len("RESULTS"):].strip())
            return
        if upper.startswith("EXPLAIN CONTINUOUS "):
            self.println(
                self.engine.explain_continuous(line[len("EXPLAIN CONTINUOUS "):])
            )
            return
        if upper.startswith("EXPLAIN "):
            self.println(self.engine.explain(line[len("EXPLAIN "):]))
            return
        if upper.startswith("SELECT"):
            result = self.engine.query_once(line)
            self._print_columns(result)
            return
        raise ReproError(f"unknown command {line.split()[0]!r} (try HELP)")

    # ------------------------------------------------------------------
    def _all_queries(self) -> dict:
        """Ordinary and partitioned query handles, by name."""
        queries: dict = dict(self.engine._queries)
        queries.update(self.engine._pqueries)
        return queries

    def _feed(self, rest: str) -> None:
        tokens = shlex.split(rest)
        if len(tokens) not in (3, 5) or tokens[1].upper() != "FROM":
            raise ReproError("usage: FEED stream FROM path.csv [CHUNK n]")
        stream, path = tokens[0], tokens[2]
        chunk = 4096
        if len(tokens) == 5:
            if tokens[3].upper() != "CHUNK":
                raise ReproError("usage: FEED stream FROM path.csv [CHUNK n]")
            chunk = int(tokens[4])
        schema = self.engine.catalog.stream(stream).schema
        total = 0
        for columns in read_csv_chunks(path, schema, chunk):
            total += self.engine.feed(stream, columns=columns)
            self.engine.run_until_idle()
        self.println(f"fed {total} tuple(s) into {stream}")

    def _load(self, rest: str) -> None:
        tokens = shlex.split(rest)
        if len(tokens) != 3 or tokens[1].upper() != "FROM":
            raise ReproError("usage: LOAD table FROM path.csv")
        table, path = tokens[0], tokens[2]
        schema = self.engine.catalog.table(table).schema
        total = 0
        for columns in read_csv_chunks(path, schema, 8192):
            total += self.engine.catalog.table(table).append_columns(columns)
        self.println(f"loaded {total} row(s) into {table}")

    def _results(self, rest: str) -> None:
        tokens = rest.split()
        last_only = bool(tokens) and tokens[-1].upper() == "LAST"
        if last_only:
            tokens = tokens[:-1]
        names = tokens if tokens else list(self._all_queries())
        for name in names:
            query = self.engine.query(name)
            batches = query.results()
            if last_only and batches:
                batches = batches[-1:]
            self.println(f"-- {name}: {len(query.results())} window(s)")
            for batch in batches:
                self.println(
                    f"window {batch.window_index} "
                    f"({batch.response_seconds * 1000:.3f} ms): {batch.rows()}"
                )

    def _stats(self) -> None:
        """Per-stream overload counters + per-factory profiler snapshots."""
        overload = self.engine.overload_stats()
        if overload:
            self.println("-- streams")
            for stream, stats in overload.items():
                capacity = stats["capacity"] or "unbounded"
                self.println(
                    f"{stream}: capacity={capacity} baskets={stats['baskets']} "
                    f"parked={stats['parked']} (max {stats['max_parked']}) "
                    f"shed={stats['shed']} block_waits={stats['block_waits']} "
                    f"block_timeouts={stats['block_timeouts']}"
                )
        spill = self.engine.landmark_spill_stats()
        if spill:
            self.println("-- landmark spill")
            for name, stats in spill.items():
                self.println(
                    f"{name}: hot={stats['hot_bytes']}B/"
                    f"{stats['budget_bytes']}B disk={stats['disk_bytes']}B "
                    f"runs={stats['runs']} spills={stats['spills']} "
                    f"pageins={stats['pageins']}"
                )
        factories = self.engine.scheduler.factory_stats()
        if factories:
            self.println("-- factories")
            for name, snapshot in factories.items():
                parts = [
                    f"{key}={value}"
                    for key, value in sorted(snapshot["counters"].items())
                ]
                parts.extend(
                    f"{tag}={seconds:g}s"
                    for tag, seconds in sorted(snapshot["tags"].items())
                )
                self.println(f"{name}: {' '.join(parts) or '(no firings yet)'}")

    def _print_columns(self, result: dict[str, list]) -> None:
        names = list(result)
        self.println(" | ".join(names))
        for row in zip(*result.values()):
            self.println(" | ".join(str(v) for v in row))
        if names:
            self.println(f"({len(result[names[0]])} row(s))")


def _run_obs_cli(command: str, argv: list[str]) -> int:
    """``python -m repro top`` / ``python -m repro trace``.

    Replays the given console scripts into a fresh engine, then renders
    the requested observability view.  ``top`` renders one frame per
    ``--interval`` seconds for ``--count`` frames (``--once`` = one
    frame; giving scripts also defaults to a single frame, since a
    replayed engine is static).  ``trace`` prints the last ``--last N``
    firing spans.
    """
    import time as _time

    from repro.obs.console import render_top, render_trace

    once = False
    interval = 2.0
    count: Optional[int] = None
    last = 10
    scripts: list[str] = []
    try:
        index = 0
        while index < len(argv):
            arg = argv[index]
            name, __, inline = arg.partition("=")
            if name == "--once":
                once = True
            elif name in ("--interval", "--count", "--last"):
                if inline:
                    value = inline
                else:
                    index += 1
                    if index >= len(argv):
                        raise ValueError(f"{name} needs a value")
                    value = argv[index]
                if name == "--interval":
                    interval = float(value)
                    if interval <= 0:
                        raise ValueError("--interval must be positive")
                elif name == "--count":
                    count = int(value)
                    if count < 1:
                        raise ValueError("--count must be >= 1")
                else:
                    last = int(value)
                    if last < 1:
                        raise ValueError("--last must be >= 1")
            elif name.startswith("--"):
                raise ValueError(f"unknown flag {name!r}")
            else:
                scripts.append(arg)
            index += 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    console = Console()
    for path in scripts:
        with open(path) as script:
            console.run(script)
    if command == "trace":
        print(render_trace(console.engine, last=last))
        return 0
    frames = 1 if (once or (count is None and scripts)) else (count or 1)
    try:
        for frame in range(frames):
            if frame:
                _time.sleep(interval)
            print(render_top(console.engine))
    except KeyboardInterrupt:
        pass
    return 0


def _run_serve_cli(argv: list[str]) -> int:
    """``python -m repro serve --data-dir DIR`` — durable console mode.

    Opens (or recovers) a durable engine rooted at ``--data-dir``: if the
    directory already holds a manifest or journal the engine is rebuilt
    with :meth:`DataCellEngine.restore` (snapshot + journal replay),
    otherwise a fresh journaling engine is created.  A background thread
    then takes a consistent checkpoint every ``--checkpoint-interval``
    seconds (default 30) or as soon as the live journal segment exceeds
    ``--checkpoint-bytes`` bytes (optional size trigger), whichever
    comes first.  Commands are read from the given script files and then
    stdin; on clean exit a final checkpoint is taken.  A crash (SIGKILL,
    power loss) at any point loses nothing: the next ``serve`` replays
    the journal past the last checkpoint horizon (docs/OPERATIONS.md §7).
    """
    import threading
    import time as _time

    from repro.core.durability import has_data

    data_dir: Optional[str] = None
    interval = 30.0
    checkpoint_bytes: Optional[int] = None
    workers = 1
    partitions = 1
    backend = "interpreted"
    capacity: Optional[int] = None
    overflow: Optional[OverflowPolicy] = None
    landmark_spill_mb: Optional[float] = None
    scripts: list[str] = []
    try:
        index = 0
        while index < len(argv):
            arg = argv[index]
            name, __, inline = arg.partition("=")
            if name in (
                "--data-dir", "--checkpoint-interval", "--checkpoint-bytes",
                "--workers", "--partitions", "--backend", "--capacity",
                "--overflow", "--landmark-spill-mb",
            ):
                if inline:
                    value = inline
                else:
                    index += 1
                    if index >= len(argv):
                        raise ValueError(f"{name} needs a value")
                    value = argv[index]
                if name == "--data-dir":
                    data_dir = value
                elif name == "--checkpoint-interval":
                    interval = float(value)
                    if interval <= 0:
                        raise ValueError("--checkpoint-interval must be positive")
                elif name == "--checkpoint-bytes":
                    checkpoint_bytes = int(value)
                    if checkpoint_bytes < 1:
                        raise ValueError("--checkpoint-bytes must be >= 1")
                elif name == "--workers":
                    workers = int(value)
                    if workers < 1:
                        raise ValueError("--workers must be >= 1")
                elif name == "--partitions":
                    partitions = int(value)
                    if partitions < 1:
                        raise ValueError("--partitions must be >= 1")
                elif name == "--backend":
                    from repro.kernel.execution.backends import BACKENDS

                    if value not in BACKENDS:
                        raise ValueError(
                            f"--backend must be one of {', '.join(BACKENDS)}"
                        )
                    backend = value
                elif name == "--capacity":
                    capacity = int(value)
                    if capacity < 1:
                        raise ValueError("--capacity must be >= 1")
                elif name == "--landmark-spill-mb":
                    landmark_spill_mb = float(value)
                    if landmark_spill_mb <= 0:
                        raise ValueError("--landmark-spill-mb must be > 0")
                else:
                    overflow = parse_overflow_spec(value)
            elif name.startswith("--"):
                raise ValueError(f"unknown flag {name!r}")
            else:
                scripts.append(arg)
            index += 1
        if data_dir is None:
            raise ValueError("serve requires --data-dir")
    except (ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if has_data(data_dir):
        engine = DataCellEngine.restore(data_dir)
        engine.run_until_idle()
        print(f"recovered engine from {data_dir}", file=sys.stderr)
    else:
        engine = DataCellEngine(
            workers=workers,
            backend=backend,
            partitions=partitions,
            data_dir=data_dir,
            landmark_spill_mb=landmark_spill_mb,
        )
        print(f"created durable engine at {data_dir}", file=sys.stderr)
    console = Console(engine=engine, capacity=capacity, overflow=overflow)
    stop = threading.Event()

    def checkpointer() -> None:
        last = _time.monotonic()
        while not stop.wait(0.2):
            due = _time.monotonic() - last >= interval
            if checkpoint_bytes is not None and not due:
                stats = engine.durability_stats()
                due = stats.get("journal_bytes", 0) >= checkpoint_bytes
            if not due:
                continue
            try:
                engine.checkpoint()
            except ReproError:  # pragma: no cover - defensive
                pass
            last = _time.monotonic()

    thread = threading.Thread(target=checkpointer, name="checkpointer", daemon=True)
    thread.start()
    try:
        for path in scripts:
            with open(path) as script:
                console.run(script)
        console.run(sys.stdin)
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        thread.join(timeout=10)
        try:
            engine.checkpoint()
        except Exception:  # pragma: no cover - best effort at shutdown
            pass
        engine.close()
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point: interactive REPL, or replay script files given as args.

    ``python -m repro lint ...`` dispatches to the static plan verifier
    (see :mod:`repro.analysis.lint`) and ``python -m repro check ...`` to
    the whole-engine concurrency lint (:mod:`repro.analysis.checker`).
    """
    argv = argv if argv is not None else sys.argv[1:]
    if argv and argv[0] == "lint":
        from repro.analysis.lint import run_lint_cli

        return run_lint_cli(argv[1:])
    if argv and argv[0] == "check":
        from repro.analysis.checker import run_check_cli

        return run_check_cli(argv[1:])
    if argv and argv[0] == "fuzz":
        from repro.testing.fuzz.runner import run_fuzz_cli

        return run_fuzz_cli(argv[1:])
    if argv and argv[0] in ("top", "trace"):
        return _run_obs_cli(argv[0], argv[1:])
    if argv and argv[0] == "serve":
        return _run_serve_cli(argv[1:])
    workers = 1
    capacity: Optional[int] = None
    overflow = None
    backend = "interpreted"
    partitions = 1
    landmark_spill_mb: Optional[float] = None
    known = (
        "--workers", "--capacity", "--overflow", "--backend", "--partitions",
        "--landmark-spill-mb",
    )
    while argv and argv[0].startswith("--"):
        flag = argv.pop(0)
        name, __, inline = flag.partition("=")
        if name not in known:
            print(f"error: unknown flag {name!r}", file=sys.stderr)
            return 2
        if inline:
            value = inline
        elif argv:
            value = argv.pop(0)
        else:
            print(f"error: {name} needs a value", file=sys.stderr)
            return 2
        try:
            if name == "--workers":
                workers = int(value)
                if workers < 1:
                    raise ValueError
            elif name == "--partitions":
                partitions = int(value)
                if partitions < 1:
                    raise ValueError
            elif name == "--capacity":
                capacity = int(value)
                if capacity < 1:
                    raise ValueError
            elif name == "--landmark-spill-mb":
                landmark_spill_mb = float(value)
                if landmark_spill_mb <= 0:
                    raise ValueError
            elif name == "--backend":
                from repro.kernel.execution.backends import BACKENDS

                if value not in BACKENDS:
                    print(
                        f"error: --backend must be one of {', '.join(BACKENDS)},"
                        f" got {value!r}",
                        file=sys.stderr,
                    )
                    return 2
                backend = value
            else:
                overflow = parse_overflow_spec(value)
        except ValueError:
            print(f"error: {name} needs a positive integer, got {value!r}",
                  file=sys.stderr)
            return 2
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if overflow is not None and capacity is None:
        print("error: --overflow needs --capacity", file=sys.stderr)
        return 2
    console = Console(
        workers=workers,
        capacity=capacity,
        overflow=overflow,
        backend=backend,
        partitions=partitions,
        landmark_spill_mb=landmark_spill_mb,
    )
    try:
        if argv:
            for path in argv:
                with open(path) as script:
                    console.run(script)
            return 0
        console.println("DataCell console — HELP for commands, QUIT to leave")
        try:
            while True:
                line = input("datacell> ")
                if not console.execute(line):
                    break
        except (EOFError, KeyboardInterrupt):
            console.println()
        return 0
    finally:
        # Ephemeral engines hold a repro-spill-* tempdir once a spilling
        # landmark ran; close() is what removes it.
        console.engine.close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Plan resource-bound analyzer: worst-case state per continuous query.

Abstract interpretation over a rewritten :class:`IncrementalPlan`: every
program slot is mapped to a :class:`Bound` — a symbolic cardinality
``coeff · W^degree`` where ``W`` is the (unknown) tuple count of one
basic window.  Count-based windows pin ``W`` to the step, so their
bounds collapse to plain numbers; time-based windows keep the symbol.

From per-slot bounds the analyzer derives the quantities the overload
and sharing machinery care about:

* **window state** — tuples retained across firings: live basic-window
  bundles in the partial store(s), prep caches and pair results for
  joins.  Landmark windows retain *every* basic window, so their state
  is finite only when the combine program compacts (all outputs stay
  bounded when the packed inputs are unbounded — true for aggregates,
  false for concatenation flows).  Non-compacting landmark state is the
  ``unbounded-landmark`` finding.
* **basket depth** — tuples a basket must hold before the factory can
  fire (one basic window).  A stream ``capacity`` below that is the
  ``capacity-starved`` finding: the query can never fire.  A shedding
  overflow policy whose capacity is exactly one basic window is flagged
  as fragile (``capacity-tight``).
* **join fan-out** — live basic-window *pairs* re-joined per slide;
  large products are the ``join-fanout`` hazard.

Results surface three ways: submit-time diagnostics on
:class:`~repro.core.engine.DataCellEngine` (errors raise only under
``verify_plans=True``), the ``repro lint --resources`` table, and
:meth:`ResourceReport.to_json` for the future cost model (ROADMAP 3–5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.analysis.diagnostics import Report
from repro.core.rewriter.incremental import IncrementalPlan, packed, prep_slot
from repro.core.windows import WindowSpec
from repro.kernel.execution.program import Instr, Lit, Program, Ref
from repro.sql.physical import scan_slot

#: Live basic-window pair count above which a join is flagged as a
#: fan-out hazard (every slide re-joins each live pair).
JOIN_FANOUT_THRESHOLD = 64


# ----------------------------------------------------------------------
# the bound lattice
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Bound:
    """A symbolic cardinality ``coeff · W^degree`` (W = basic-window tuples).

    ``coeff = inf`` is the lattice top (unbounded); degree is meaningless
    there.  The lattice is ordered pointwise: higher degree dominates,
    then higher coefficient.
    """

    coeff: float
    degree: int = 0

    @property
    def finite(self) -> bool:
        return math.isfinite(self.coeff)

    @property
    def constant(self) -> bool:
        """True when the bound does not depend on W."""
        return self.finite and (self.degree == 0 or self.coeff == 0)

    def add(self, other: "Bound") -> "Bound":
        if not (self.finite and other.finite):
            return UNBOUNDED
        if self.coeff == 0:
            return other
        if other.coeff == 0:
            return self
        degree = max(self.degree, other.degree)
        return Bound(self.coeff + other.coeff, degree)

    def mul(self, other: "Bound") -> "Bound":
        if self.coeff == 0 or other.coeff == 0:
            return ZERO
        if not (self.finite and other.finite):
            return UNBOUNDED
        return Bound(self.coeff * other.coeff, self.degree + other.degree)

    def min_with(self, other: "Bound") -> "Bound":
        return self if _order_key(self) <= _order_key(other) else other

    def max_with(self, other: "Bound") -> "Bound":
        return self if _order_key(self) >= _order_key(other) else other

    def scaled(self, factor: float) -> "Bound":
        return self.mul(Bound(factor))

    def render(self) -> str:
        if not self.finite:
            return "unbounded"
        if self.coeff == 0:
            return "0"
        coeff = f"{self.coeff:g}"
        if self.degree == 0:
            return coeff
        w = "W" if self.degree == 1 else f"W^{self.degree}"
        return w if self.coeff == 1 else f"{coeff}·{w}"

    def to_json(self) -> dict[str, Any]:
        return {
            "coeff": None if not self.finite else self.coeff,
            "degree": self.degree,
            "finite": self.finite,
            "text": self.render(),
        }


ZERO = Bound(0)
ONE = Bound(1)
UNBOUNDED = Bound(math.inf)


def _order_key(bound: Bound) -> tuple[float, float]:
    if not bound.finite:
        return (math.inf, math.inf)
    if bound.coeff == 0:
        return (-1, 0)
    return (bound.degree, bound.coeff)


def bound_max(bounds: Sequence[Bound]) -> Bound:
    out = ZERO
    for bound in bounds:
        out = out.max_with(bound)
    return out


def bound_sum(bounds: Sequence[Bound]) -> Bound:
    out = ZERO
    for bound in bounds:
        out = out.add(bound)
    return out


# ----------------------------------------------------------------------
# per-opcode transfer functions
# ----------------------------------------------------------------------
#: Opcodes whose single output never exceeds the first referenced input
#: (filters, reorderings, per-row maps over one column).
_SHRINKING = {
    "algebra.select",
    "algebra.thetaselect",
    "algebra.mask_select",
    "algebra.projection",
    "algebra.sort",
    "algebra.sortrefine",
    "algebra.semijoin",
    "algebra.antijoin",
    "bat.mirror",
    "bat.materialize",
    "bat.slice",
    "bat.unique",
    "bat.id",
    "group.distinct",
    "cand.intersect",
    "cand.difference",
}

#: Full aggregates: one output row regardless of input size.
_SCALAR = {
    "aggr.sum",
    "aggr.count",
    "aggr.min",
    "aggr.max",
    "aggr.avg",
    "bat.count",
    "calc.const",
}

#: Grouped/merge aggregates: output ≤ the smallest referenced input
#: (one row per group, groups ≤ rows).
_GROUPWISE = {
    "aggr.subsum",
    "aggr.subcount",
    "aggr.submin",
    "aggr.submax",
    "aggr.subavg",
    "aggr.align",
}

#: Concatenations: output = sum of referenced inputs.
_CONCAT = {"mat.pack", "bat.append", "cand.union"}


def _ref_bounds(instr: Instr, env: dict[str, Bound]) -> list[Bound]:
    return [env.get(arg.name, UNBOUNDED) for arg in instr.args if isinstance(arg, Ref)]


def transfer(instr: Instr, env: dict[str, Bound]) -> Bound:
    """Output-slot bound of one instruction given its input bounds."""
    refs = _ref_bounds(instr, env)
    opcode = instr.opcode
    if opcode in _SCALAR:
        return ONE
    if opcode in _SHRINKING:
        return refs[0] if refs else ONE
    if opcode in _GROUPWISE:
        out = UNBOUNDED
        for bound in refs:
            out = out.min_with(bound)
        return out
    if opcode in _CONCAT:
        return bound_sum(refs)
    if opcode == "algebra.join":
        if len(refs) >= 2:
            return refs[0].mul(refs[1])
        return UNBOUNDED
    if opcode == "algebra.firstn":
        limit = next(
            (Bound(arg.value) for arg in instr.args
             if isinstance(arg, Lit) and isinstance(arg.value, (int, float))),
            UNBOUNDED,
        )
        first = refs[0] if refs else UNBOUNDED
        return first.min_with(limit)
    if opcode == "group.group":
        # gids is row-aligned; extents/ngroups are ≤ rows.  The row bound
        # is safe for every output.
        return refs[0] if refs else ONE
    # calc.* and anything unknown: row-aligned with the widest input.
    return bound_max(refs) if refs else ONE


def program_bounds(
    program: Program, inputs: dict[str, Bound]
) -> dict[str, Bound]:
    """Abstractly interpret a program; returns bounds for every slot."""
    env: dict[str, Bound] = {name: UNBOUNDED for name in program.inputs}
    env.update(inputs)
    for instr in program.instructions:
        bound = transfer(instr, env)
        for out in instr.outs:
            env[out] = bound
    return env


def output_bounds(
    program: Program, inputs: dict[str, Bound]
) -> dict[str, Bound]:
    env = program_bounds(program, inputs)
    return {name: env.get(name, UNBOUNDED) for name in program.outputs}


# ----------------------------------------------------------------------
# plan-level analysis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AliasBounds:
    """Resource facts for one stream input of a plan."""

    alias: str
    relation: str
    window: WindowSpec
    #: tuples in one basic window (step for count-based, W otherwise).
    window_tuples: Bound
    #: live basic windows retained (inf for landmark without compaction).
    live_windows: Bound
    #: tuples retained across firings for this input (partials/preps).
    state: Bound
    #: minimum basket occupancy needed for the factory to fire once.
    basket_need: Bound
    capacity: Optional[int] = None

    def to_json(self) -> dict[str, Any]:
        return {
            "alias": self.alias,
            "relation": self.relation,
            "window": {
                "kind": self.window.kind,
                "size": self.window.size,
                "step": self.window.step,
                "time_based": self.window.time_based,
            },
            "window_tuples": self.window_tuples.to_json(),
            "live_windows": self.live_windows.to_json(),
            "state": self.state.to_json(),
            "basket_need": self.basket_need.to_json(),
            "capacity": self.capacity,
        }


@dataclass
class ResourceReport:
    """Worst-case state bounds of one rewritten plan, plus diagnostics."""

    subject: str
    aliases: list[AliasBounds] = field(default_factory=list)
    #: live basic-window pairs re-joined per slide (joins only).
    join_pairs: Optional[Bound] = None
    #: tuples produced per live pair by the pair fragment (joins only).
    pair_state: Optional[Bound] = None
    #: total tuples retained across firings (all stores summed).
    total_state: Bound = ZERO
    report: Report = field(default_factory=Report)

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def bounded(self) -> bool:
        return self.total_state.finite

    def render_table(self) -> str:
        lines = [f"-- resources: {self.subject}"]
        for ab in self.aliases:
            cap = "unbounded" if not ab.capacity else str(ab.capacity)
            lines.append(
                f"  {ab.alias} ({ab.relation}, {ab.window.kind}): "
                f"basic window = {ab.window_tuples.render()} tuples, "
                f"live windows = {ab.live_windows.render()}, "
                f"state = {ab.state.render()}, "
                f"basket need = {ab.basket_need.render()} (capacity {cap})"
            )
        if self.join_pairs is not None and self.pair_state is not None:
            lines.append(
                f"  join: live pairs = {self.join_pairs.render()}, "
                f"state per pair = {self.pair_state.render()}"
            )
        lines.append(f"  total state bound = {self.total_state.render()}")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "subject": self.subject,
            "bounded": self.bounded,
            "total_state": self.total_state.to_json(),
            "aliases": [ab.to_json() for ab in self.aliases],
            "join_pairs": self.join_pairs.to_json() if self.join_pairs else None,
            "pair_state": self.pair_state.to_json() if self.pair_state else None,
            "report": self.report.to_json(),
        }


def window_tuple_bound(window: WindowSpec) -> Bound:
    """Tuples in one basic window: the step for count-based windows."""
    if window.time_based:
        return Bound(1, 1)
    return Bound(window.step)


def combine_compacts(plan: IncrementalPlan) -> bool:
    """True when combine maps unbounded packed inputs to bounded outputs.

    Aggregate combines (sum of sums, merge of grouped partials) compact:
    their output size is independent of how many partials were packed.
    Concatenation combines (select-only queries) do not — every retained
    basic window contributes rows forever.  This is what decides whether
    a landmark query's state stays finite.
    """
    inputs = {packed(flow.name): UNBOUNDED for flow in plan.flows}
    outs = output_bounds(plan.combine, inputs)
    return all(bound.finite for bound in outs.values())


def _scan_inputs(plan: IncrementalPlan, alias: str, bound: Bound) -> dict[str, Bound]:
    """Input-slot bounds of a fragment/prep reading one basic window."""
    inputs = {
        scan_slot(alias, column): bound for column in plan.scan_columns.get(alias, [])
    }
    if plan.table_alias is not None:
        # Base-table side of a stream-table join: unknown but fixed size.
        for column in plan.scan_columns.get(plan.table_alias, []):
            inputs[scan_slot(plan.table_alias, column)] = Bound(1, 1)
    return inputs


def analyze_resources(
    plan: IncrementalPlan,
    limits: Optional[dict[str, tuple[Optional[int], Any]]] = None,
    subject: str = "plan",
    landmark_spill_mb: Optional[float] = None,
) -> ResourceReport:
    """Compute worst-case state bounds for one rewritten plan.

    ``limits`` maps stream *relation* → ``(capacity, overflow-template)``
    as kept by the engine; pass None when capacities are unknown (lint).

    ``landmark_spill_mb`` is the engine's bounded-memory landmark knob
    (``DataCellEngine(landmark_spill_mb=...)``): when set, a landmark
    query whose combine does not compact is no longer *unbounded* — cold
    history spills to disk and the in-memory hot suffix stays within the
    budget — so the ``unbounded-landmark`` warning downgrades to an
    info-level ``spilled-landmark`` note.  Ephemeral engines (knob unset,
    the lint default) keep the warning.
    """
    limits = limits or {}
    result = ResourceReport(subject=subject, report=Report(subject=subject))
    report = result.report
    compacts = combine_compacts(plan)
    # Spilling applies exactly where the engine enables it: single-stream
    # plans whose every window is landmark (joins keep per-pair partials).
    spilling = (
        landmark_spill_mb is not None
        and not plan.is_join
        and all(w.is_landmark for w in plan.windows.values())
    )
    total = ZERO

    for alias in plan.stream_aliases:
        window = plan.windows[alias]
        w_tuples = window_tuple_bound(window)
        relation = plan.stream_relations[alias]
        capacity, template = limits.get(relation, (None, None))

        if window.is_landmark:
            if compacts:
                live = Bound(1)
            elif spilling:
                # Hot suffix in memory (folded prefix + newest partial,
                # capped by the byte budget); cold history on disk.
                live = Bound(2)
                report.info(
                    "plan",
                    f"landmark window on {alias!r} with a non-compacting "
                    f"combine spills cold history to disk "
                    f"(landmark_spill_mb={landmark_spill_mb:g}): in-memory "
                    f"state is bounded by the spill budget; disk usage "
                    f"grows with stream {relation!r}",
                    code="spilled-landmark",
                )
            else:
                live = UNBOUNDED
                report.warning(
                    "plan",
                    f"landmark window on {alias!r} with a non-compacting "
                    f"combine retains every basic window: state grows "
                    f"without bound; add an aggregate, enable "
                    f"landmark_spill_mb, or put a capacity/shedding "
                    f"policy on stream {relation!r}",
                    code="unbounded-landmark",
                )
        else:
            live = Bound(window.basic_windows)

        # Per-basic-window retained tuples: fragment flow outputs for
        # single-stream plans, prep outputs for joins.
        if plan.is_join:
            prep = plan.preps.get(alias)
            if prep is not None:
                outs = output_bounds(prep.program, _scan_inputs(plan, alias, w_tuples))
                per_window = bound_sum(list(outs.values()))
            else:  # pragma: no cover - joins always prep both sides
                per_window = w_tuples
        elif plan.fragment is not None:
            outs = output_bounds(plan.fragment, _scan_inputs(plan, alias, w_tuples))
            per_window = bound_sum(list(outs.values()))
        else:  # pragma: no cover - incremental plans always have a fragment
            per_window = w_tuples

        if window.is_landmark and compacts:
            # The store keeps one *combined* bundle, whose size is the
            # combine output bound, not the per-window partial size.
            state = bound_sum(
                list(
                    output_bounds(
                        plan.combine,
                        {packed(flow.name): UNBOUNDED for flow in plan.flows},
                    ).values()
                )
            )
        else:
            state = live.mul(per_window)
        total = total.add(state)

        basket_need = w_tuples  # the factory fires per basic window
        if (
            capacity is not None
            and basket_need.constant
            and capacity < basket_need.coeff
        ):
            report.error(
                "plan",
                f"stream {relation!r} capacity {capacity} is below one "
                f"basic window ({int(basket_need.coeff)} tuples) for "
                f"{alias!r}: the query can never fire",
                code="capacity-starved",
            )
        elif (
            capacity is not None
            and template is not None
            and getattr(template, "sheds", False)
            and basket_need.constant
            and capacity < 2 * basket_need.coeff
        ):
            report.warning(
                "plan",
                f"stream {relation!r} sheds at capacity {capacity} with "
                f"basic windows of {int(basket_need.coeff)} tuples for "
                f"{alias!r}: any backlog beyond one window is dropped",
                code="capacity-tight",
            )

        result.aliases.append(
            AliasBounds(
                alias=alias,
                relation=relation,
                window=window,
                window_tuples=w_tuples,
                live_windows=live,
                state=state,
                basket_need=basket_need,
                capacity=capacity,
            )
        )

    if plan.is_join and plan.pair_fragment is not None and len(result.aliases) == 2:
        left, right = result.aliases
        pairs = left.live_windows.mul(right.live_windows)
        pair_inputs: dict[str, Bound] = {}
        for alias in plan.stream_aliases:
            prep = plan.preps.get(alias)
            if prep is None:  # pragma: no cover - joins always prep
                continue
            outs = output_bounds(
                prep.program, _scan_inputs(plan, alias, window_tuple_bound(plan.windows[alias]))
            )
            for column, slot_bound in zip(prep.columns, outs.values()):
                pair_inputs[prep_slot(alias, column)] = slot_bound
        pair_outs = output_bounds(plan.pair_fragment, pair_inputs)
        pair_state = bound_sum(list(pair_outs.values()))
        result.join_pairs = pairs
        result.pair_state = pair_state
        total = total.add(pairs.mul(pair_state))
        if pairs.constant and pairs.coeff > JOIN_FANOUT_THRESHOLD:
            report.warning(
                "plan",
                f"join re-evaluates {int(pairs.coeff)} live basic-window "
                f"pairs per slide (> {JOIN_FANOUT_THRESHOLD}); consider a "
                f"larger step or smaller windows",
                code="join-fanout",
            )

    result.total_state = total
    return result

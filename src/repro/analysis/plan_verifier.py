"""Static verification of rewritten incremental plans.

Checks the invariants of the paper's Figure-3 operator taxonomy that the
rewriter (:mod:`repro.core.rewriter.incremental`) is supposed to uphold and
that the factory silently relies on:

* every program (fragment, preps, pair fragment, combine, finalize) passes
  the dataflow and type-inference passes;
* **flow wiring** — fragment outputs map 1:1 onto the declared flows, the
  combine program consumes exactly the ``packed_<flow>`` columns and
  produces exactly the flow columns, and finalize consumes the flows;
* **closure over bundles** — each combine output has the combine opcode
  its flow kind mandates (count partials are *summed*, never re-counted)
  and the same atom as the packed partials it merges, so a combined bundle
  can re-enter the store as a valid partial (landmark compaction and the
  m-chunk optimization both feed combine its own output);
* **expanding replication** — AVG never survives as a directly-combined
  flow: it must be split into a sum flow and a count flow (``X__sum`` /
  ``X__cnt``) finalized as their quotient, and no incremental program may
  use ``aggr.avg`` / ``aggr.subavg``;
* **cost tags** — every instruction carries a legal profiler tag, fragment
  work is tagged ``main``, merge machinery ``merge`` (DataCell's Figure-7
  cost breakdown depends on this labelling);
* the declared output names/atoms agree with what finalize actually
  produces.

``schemas`` (alias → column → atom) is optional; without it the type-level
checks degrade gracefully to the unknown-typed subset.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.analysis.dataflow import analyze_dataflow
from repro.analysis.diagnostics import Report
from repro.analysis.typecheck import infer_types
from repro.core.rewriter.flows import GLOBAL_COMBINE, GROUPED_COMBINE
from repro.core.rewriter.incremental import IncrementalPlan, packed, prep_slot
from repro.errors import PlanVerificationError
from repro.kernel.atoms import Atom
from repro.kernel.execution.program import (
    Instr,
    Program,
    Ref,
    TAG_ADMIN,
    TAG_MAIN,
    TAG_MERGE,
)
from repro.sql.physical import scan_slot

#: flow kinds of the operator taxonomy (Figure 3)
GROUPED_KINDS = frozenset({"gkey", "gsum", "gcount", "gmin", "gmax"})
GLOBAL_KINDS = frozenset({"sum", "count", "min", "max"})
KNOWN_KINDS = GROUPED_KINDS | GLOBAL_KINDS | {"pack"}

#: opcodes that must never appear in an incremental program: AVG partials
#: cannot be merged directly (average of averages is wrong), which is why
#: the rewriter expands AVG into sum+count flows.
FORBIDDEN_OPCODES = frozenset({"aggr.avg", "aggr.subavg"})

_LEGAL_TAGS = frozenset({TAG_MAIN, TAG_MERGE, TAG_ADMIN})

SchemaMap = Mapping[str, Mapping[str, Atom]]


def _check_tags(
    report: Report, program: Program, where: str, expected: frozenset[str]
) -> None:
    for index, instr in enumerate(program.instructions):
        if instr.tag not in _LEGAL_TAGS:
            report.error(
                where,
                f"illegal cost tag {instr.tag!r} on {instr.opcode} "
                f"(must be one of {sorted(_LEGAL_TAGS)})",
                instr=index,
            )
        elif instr.tag not in expected:
            report.error(
                where,
                f"{instr.opcode} is tagged {instr.tag!r} but every "
                f"instruction of the {where} program must be tagged "
                f"{' or '.join(sorted(expected))} (profiler cost breakdown)",
                instr=index,
            )


def _check_forbidden(report: Report, program: Program, where: str) -> None:
    for index, instr in enumerate(program.instructions):
        if instr.opcode in FORBIDDEN_OPCODES:
            report.error(
                where,
                f"{instr.opcode} must not appear in incremental programs: "
                "AVG partials do not merge — expand into sum and count "
                "flows (expanding replication)",
                instr=index,
            )


def _producer(program: Program, slot: str) -> Optional[tuple[int, Instr]]:
    for index, instr in enumerate(program.instructions):
        if slot in instr.outs:
            return index, instr
    return None


def _slots_read(program: Program) -> set[str]:
    return {
        arg.name
        for instr in program.instructions
        for arg in instr.args
        if isinstance(arg, Ref)
    }


def _run_program_passes(
    report: Report,
    program: Program,
    where: str,
    input_atoms: Optional[Mapping[str, Optional[Atom]]],
    tags: frozenset[str],
) -> dict[str, Optional[Atom]]:
    """Dataflow + tags + type inference for one program; returns slot types."""
    report.extend(analyze_dataflow(program, where))
    _check_tags(report, program, where, tags)
    _check_forbidden(report, program, where)
    env, __ = infer_types(program, input_atoms, where, report)
    return env


def _scan_atoms(
    plan: IncrementalPlan, alias: str, schemas: Optional[SchemaMap]
) -> dict[str, Optional[Atom]]:
    """Input-slot atoms of a per-basic-window program for ``alias``."""
    columns = plan.scan_columns.get(alias, [])
    table = dict((schemas or {}).get(alias, {}))
    return {scan_slot(alias, column): table.get(column) for column in columns}


def verify_plan(
    plan: IncrementalPlan, schemas: Optional[SchemaMap] = None
) -> Report:
    """Verify every invariant; returns the full report (never raises)."""
    report = Report(subject="incremental plan")
    flows = plan.flows

    # ------------------------------------------------------------------
    # flow taxonomy sanity
    # ------------------------------------------------------------------
    seen_flow_names: set[str] = set()
    for flow in flows:
        if flow.name in seen_flow_names:
            report.error("plan", f"duplicate flow name {flow.name!r}")
        seen_flow_names.add(flow.name)
        if flow.kind not in KNOWN_KINDS:
            report.error(
                "plan",
                f"flow {flow.name!r} has unknown kind {flow.kind!r} "
                f"(taxonomy kinds: {sorted(KNOWN_KINDS)})",
            )
    kinds = {flow.kind for flow in flows} & KNOWN_KINDS
    if not flows:
        report.error("plan", "plan declares no flows")
    if plan.grouped:
        if "gkey" not in kinds:
            report.error(
                "plan", "grouped plan has no gkey flow to re-group on"
            )
        illegal = kinds - GROUPED_KINDS
        if illegal:
            report.error(
                "plan",
                f"grouped plan mixes in non-grouped flow kinds {sorted(illegal)}",
            )
    else:
        if kinds & GROUPED_KINDS:
            report.error(
                "plan",
                f"non-grouped plan carries grouped flow kinds "
                f"{sorted(kinds & GROUPED_KINDS)}",
            )
        if "pack" in kinds and kinds - {"pack"}:
            report.error(
                "plan",
                "plan mixes pack (concatenation) flows with aggregate flows",
            )

    # -- AVG expansion: sum/count flows must come in pairs -------------
    flow_by_name = {flow.name: flow for flow in flows}
    for flow in flows:
        if flow.name.endswith("__sum"):
            partner = flow.name[: -len("__sum")] + "__cnt"
            mate = flow_by_name.get(partner)
            if mate is None:
                report.error(
                    "plan",
                    f"AVG sum flow {flow.name!r} has no matching count flow "
                    f"{partner!r}: the quotient cannot be finalized "
                    "(expanding replication needs both)",
                )
            elif mate.kind not in ("count", "gcount"):
                report.error(
                    "plan",
                    f"AVG count flow {partner!r} has kind {mate.kind!r}, "
                    "expected a count kind",
                )
        if flow.name.endswith("__cnt"):
            partner = flow.name[: -len("__cnt")] + "__sum"
            if partner not in flow_by_name:
                report.error(
                    "plan",
                    f"AVG count flow {flow.name!r} has no matching sum flow "
                    f"{partner!r} (expanding replication needs both)",
                )

    # ------------------------------------------------------------------
    # shape: single-stream vs join
    # ------------------------------------------------------------------
    if not plan.stream_aliases:
        report.error("plan", "plan has no stream inputs")
    for alias in plan.stream_aliases:
        if alias not in plan.windows:
            report.error("plan", f"stream {alias!r} has no window specification")

    fragment_atoms: dict[str, Optional[Atom]] = {}
    if plan.is_join:
        if plan.fragment is not None:
            report.error(
                "plan", "join plan must not carry a single-stream fragment"
            )
        sides = list(plan.stream_aliases)
        if plan.table_alias is not None:
            sides.append(plan.table_alias)
        for alias in sides:
            if alias not in plan.preps:
                report.error("plan", f"join side {alias!r} has no prep program")
        for alias in plan.preps:
            if alias not in sides:
                report.error("plan", f"prep program for unknown side {alias!r}")

        # preps: filter + narrowing, one output per kept column
        pair_inputs: dict[str, Optional[Atom]] = {}
        expected_pair_inputs: list[str] = []
        for alias, prep in plan.preps.items():
            where = f"prep[{alias}]"
            env = _run_program_passes(
                report,
                prep.program,
                where,
                _scan_atoms(plan, alias, schemas),
                frozenset({TAG_MAIN, TAG_ADMIN}),
            )
            if len(prep.program.outputs) != len(prep.columns):
                report.error(
                    where,
                    f"prep declares {len(prep.columns)} column(s) "
                    f"{prep.columns} but its program emits "
                    f"{len(prep.program.outputs)} output(s)",
                )
            for column, slot in zip(prep.columns, prep.program.outputs):
                name = prep_slot(alias, column)
                pair_inputs[name] = env.get(slot)
                expected_pair_inputs.append(name)

        if plan.pair_fragment is None:
            report.error("plan", "join plan has no pair fragment")
        else:
            where = "pair_fragment"
            got = set(plan.pair_fragment.inputs)
            expected = set(expected_pair_inputs)
            for missing in sorted(expected - got):
                report.error(
                    where,
                    f"prepped column {missing!r} is produced by a prep but "
                    "not declared as a pair-fragment input",
                )
            for extra in sorted(got - expected):
                report.error(
                    where,
                    f"pair-fragment input {extra!r} matches no prep output: "
                    "the factory cannot supply it",
                )
            env = _run_program_passes(
                report,
                plan.pair_fragment,
                where,
                pair_inputs,
                frozenset({TAG_MAIN, TAG_ADMIN}),
            )
            fragment_atoms = _check_flow_outputs(
                report, plan.pair_fragment, where, flows, env
            )
    else:
        if plan.preps or plan.pair_fragment is not None:
            report.error(
                "plan", "single-stream plan must not carry join prep programs"
            )
        if len(plan.stream_aliases) > 1:
            report.error(
                "plan",
                f"non-join plan reads {len(plan.stream_aliases)} streams",
            )
        if plan.fragment is None:
            report.error("plan", "single-stream plan has no fragment program")
        else:
            where = "fragment"
            alias = plan.stream_aliases[0] if plan.stream_aliases else ""
            env = _run_program_passes(
                report,
                plan.fragment,
                where,
                _scan_atoms(plan, alias, schemas),
                frozenset({TAG_MAIN, TAG_ADMIN}),
            )
            fragment_atoms = _check_flow_outputs(
                report, plan.fragment, where, flows, env
            )

    # ------------------------------------------------------------------
    # combine: packed partials in, one merged bundle out (closed!)
    # ------------------------------------------------------------------
    combine_inputs = {
        packed(flow.name): fragment_atoms.get(flow.name) for flow in flows
    }
    where = "combine"
    combine_env = _run_program_passes(
        report,
        plan.combine,
        where,
        combine_inputs,
        frozenset({TAG_MERGE, TAG_ADMIN}),
    )
    got_inputs = set(plan.combine.inputs)
    expected_inputs = set(combine_inputs)
    for missing in sorted(expected_inputs - got_inputs):
        report.error(
            where,
            f"combine does not declare input {missing!r}: the factory packs "
            "every flow's partials and combine must consume them",
        )
    for extra in sorted(got_inputs - expected_inputs):
        report.error(
            where,
            f"combine input {extra!r} matches no declared flow "
            "(packed_<flow> inputs only)",
        )
    got_outputs = set(plan.combine.outputs)
    flow_names = {flow.name for flow in flows}
    for missing in sorted(flow_names - got_outputs):
        report.error(
            where,
            f"combine does not produce flow {missing!r}: its bundle would "
            "not be a valid partial (combine must be closed over bundles)",
        )
    for extra in sorted(got_outputs - flow_names):
        report.error(where, f"combine output {extra!r} is not a declared flow")

    # closure checks per flow: the right merge opcode, and a stable atom
    for flow in flows:
        if flow.name not in got_outputs:
            continue
        produced = _producer(plan.combine, flow.name)
        if produced is None:
            continue  # an input passthrough would already be a dataflow error
        index, instr = produced
        expected_op = _expected_combine_opcode(flow.kind)
        if expected_op is not None and instr.opcode != expected_op:
            report.error(
                where,
                f"flow {flow.name!r} ({flow.kind}) is merged with "
                f"{instr.opcode} but the taxonomy mandates {expected_op} "
                "(e.g. count partials are summed, never re-counted)",
                instr=index,
            )
        in_atom = combine_inputs.get(packed(flow.name))
        out_atom = combine_env.get(flow.name)
        if in_atom is not None and out_atom is not None and in_atom != out_atom:
            report.error(
                where,
                f"flow {flow.name!r} enters combine as {in_atom.value} but "
                f"leaves as {out_atom.value}: the combined bundle could not "
                "re-enter the partial store (not closed over bundles)",
            )

    # ------------------------------------------------------------------
    # finalize: flows in, result columns out
    # ------------------------------------------------------------------
    where = "finalize"
    finalize_inputs = {
        flow.name: combine_env.get(flow.name, fragment_atoms.get(flow.name))
        for flow in flows
    }
    finalize_env = _run_program_passes(
        report,
        plan.finalize,
        where,
        finalize_inputs,
        frozenset({TAG_MERGE, TAG_ADMIN}),
    )
    got_inputs = set(plan.finalize.inputs)
    for missing in sorted(flow_names - got_inputs):
        report.error(
            where,
            f"finalize does not declare flow {missing!r} as an input "
            "(the factory hands it the full combined bundle)",
        )
    for extra in sorted(got_inputs - flow_names):
        report.error(where, f"finalize input {extra!r} is not a declared flow")
    read = _slots_read(plan.finalize) | set(plan.finalize.outputs)
    for flow in flows:
        if flow.name in got_inputs and flow.name not in read:
            report.warning(
                where,
                f"flow {flow.name!r} is combined every slide but finalize "
                "never uses it",
            )

    if len(plan.output_names) != len(plan.finalize.outputs):
        report.error(
            where,
            f"plan declares {len(plan.output_names)} output column(s) but "
            f"finalize emits {len(plan.finalize.outputs)}",
        )
    if len(plan.output_names) != len(plan.output_atoms):
        report.error(
            "plan",
            f"output names/atoms length mismatch: {len(plan.output_names)} "
            f"vs {len(plan.output_atoms)}",
        )
    for name, atom, slot in zip(
        plan.output_names, plan.output_atoms, plan.finalize.outputs
    ):
        inferred = finalize_env.get(slot)
        if inferred is not None and atom is not None and inferred != atom:
            report.error(
                where,
                f"output column {name!r} is declared {atom.value} but "
                f"finalize produces {inferred.value}",
            )
    return report


def _expected_combine_opcode(kind: str) -> Optional[str]:
    """The merge opcode the taxonomy mandates for a flow kind."""
    if kind in GROUPED_COMBINE:
        return GROUPED_COMBINE[kind]
    if kind in GLOBAL_COMBINE:
        return GLOBAL_COMBINE[kind]
    if kind == "gkey":
        return "algebra.projection"  # re-grouped key values
    if kind == "pack":
        return "bat.id"  # concatenation only (Figure 3a)
    return None


def _check_flow_outputs(
    report: Report,
    program: Program,
    where: str,
    flows,
    env: Mapping[str, Optional[Atom]],
) -> dict[str, Optional[Atom]]:
    """Check fragment outputs ↔ flows and return per-flow output atoms."""
    atoms: dict[str, Optional[Atom]] = {}
    if len(program.outputs) != len(flows):
        report.error(
            where,
            f"program emits {len(program.outputs)} output(s) but the plan "
            f"declares {len(flows)} flow(s); the factory zips them "
            "positionally",
        )
    for flow, slot in zip(flows, program.outputs):
        atoms[flow.name] = env.get(slot)
    return atoms


def check_plan(plan: IncrementalPlan, schemas: Optional[SchemaMap] = None) -> Report:
    """Verify ``plan`` and raise :class:`PlanVerificationError` on errors."""
    report = verify_plan(plan, schemas)
    if not report.ok:
        rendered = "\n".join(d.render() for d in report.errors())
        raise PlanVerificationError(
            f"incremental plan failed static verification:\n{rendered}"
        )
    return report


def verify_program(
    program: Program,
    input_atoms: Optional[Mapping[str, Optional[Atom]]] = None,
    subject: str = "program",
) -> Report:
    """Run the program-level passes over one standalone program.

    The partitioned-execution layer synthesizes a *merge* program per
    sharded query (compiled from SQL over the ``__partials`` relation,
    DESIGN.md §14) and verifies it here before the first window fires:
    dataflow (every read slot defined, outputs produced), legal cost
    tags, the forbidden-opcode list, and full atom type inference from
    the partials schema.  Never raises; returns the report.
    """
    report = Report(subject=subject)
    _run_program_passes(report, program, subject, input_atoms, _LEGAL_TAGS)
    return report


def check_program(
    program: Program,
    input_atoms: Optional[Mapping[str, Optional[Atom]]] = None,
    subject: str = "program",
) -> Report:
    """:func:`verify_program`, raising on errors (submit-time gate)."""
    report = verify_program(program, input_atoms, subject)
    if not report.ok:
        rendered = "\n".join(d.render() for d in report.errors())
        raise PlanVerificationError(
            f"{subject} failed static verification:\n{rendered}"
        )
    return report

"""The ``repro check`` driver: whole-engine concurrency lint.

Runs :mod:`repro.analysis.concurrency` over the engine sources (or any
paths given on the command line) and renders the findings — guard
violations, lock-order/cycle errors, engine invariants — with file:line
anchors, or as one JSON document (``--format json``) for CI artifact
upload.  Exit code 1 on any error-severity finding; warnings (e.g.
acquisitions of undeclared locks) do not fail the build.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional

from repro.analysis.concurrency import ConcurrencyResult, check_paths


def default_check_path() -> str:
    """The installed ``repro`` package source tree."""
    import repro

    return str(Path(repro.__file__).resolve().parent)


def run_check(paths: Optional[list[str]] = None) -> ConcurrencyResult:
    """Run the concurrency lint over ``paths`` (default: src/repro)."""
    return check_paths(paths or [default_check_path()])


def run_check_cli(argv: list[str], out=None) -> int:
    """``repro check`` entry point; returns a process exit code."""
    import sys

    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="whole-engine static concurrency lint: guarded-by "
        "annotations, lock-acquisition order, engine invariants",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="Python files or directories to check (default: the "
        "installed repro package sources)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json emits one machine-readable document)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress warnings, print errors only"
    )
    args = parser.parse_args(argv)

    for raw in args.paths:
        if not Path(raw).exists():
            print(f"repro check: {raw!r} does not exist", file=out)
            return 2
    result = run_check(list(args.paths) or None)
    report = result.report

    if args.format == "json":
        print(json.dumps(result.to_json(), indent=2), file=out)
        return 0 if report.ok else 1

    shown = report.errors() if args.quiet else report.diagnostics
    for diagnostic in shown:
        print(diagnostic.render(), file=out)
    errors = len(report.errors())
    warnings = len(report.warnings())
    edges = len({(e.src, e.dst) for e in result.edges})
    print(
        f"repro check: {len(result.files)} files, {edges} lock-order "
        f"edge{'s' if edges != 1 else ''}, {errors} error"
        f"{'s' if errors != 1 else ''}, {warnings} warning"
        f"{'s' if warnings != 1 else ''}",
        file=out,
    )
    return 1 if errors else 0

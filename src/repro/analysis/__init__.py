"""Static analysis over MAL-like programs and incremental plans.

The passes here never execute a program — they reason about the
straight-line :class:`~repro.kernel.execution.program.Program` IR and the
rewriter's :class:`~repro.core.rewriter.incremental.IncrementalPlan`:

* :mod:`repro.analysis.dataflow` — def-before-use, single assignment,
  dead-instruction detection and elimination;
* :mod:`repro.analysis.typecheck` — atom type inference against the
  per-opcode signature table in :mod:`repro.analysis.signatures`;
* :mod:`repro.analysis.plan_verifier` — the Figure-3 taxonomy invariants
  that the factory and scheduler rely on (packed inputs, closure over
  bundles, AVG expansion, cost tags);
* :mod:`repro.analysis.pretty` — typed human-readable plan dumps;
* :mod:`repro.analysis.lint` — the ``repro lint`` driver that verifies
  real queries from ``examples/`` and ``benchmarks/``;
* :mod:`repro.analysis.resources` — abstract interpretation computing
  worst-case per-factory state bounds (``repro lint --resources``);
* :mod:`repro.analysis.guards` / :mod:`repro.analysis.concurrency` —
  the source-level concurrency lint: ``guarded-by`` annotations, the
  engine lock order, and the static lock-acquisition graph;
* :mod:`repro.analysis.checker` — the ``repro check`` CLI driver.
"""

from repro.analysis.concurrency import ConcurrencyResult, check_paths, check_sources
from repro.analysis.dataflow import (
    analyze_dataflow,
    dead_instructions,
    eliminate_dead_instructions,
)
from repro.analysis.diagnostics import (
    SEV_ERROR,
    SEV_WARNING,
    Diagnostic,
    Report,
)
from repro.analysis.guards import LOCK_ORDER, GuardModel, harvest_file
from repro.analysis.plan_verifier import check_plan, verify_plan
from repro.analysis.pretty import dump_plan, dump_program
from repro.analysis.resources import Bound, ResourceReport, analyze_resources
from repro.analysis.signatures import SIGNATURES, signature_for
from repro.analysis.typecheck import infer_types, output_atoms

__all__ = [
    "LOCK_ORDER",
    "SEV_ERROR",
    "SEV_WARNING",
    "SIGNATURES",
    "Bound",
    "ConcurrencyResult",
    "Diagnostic",
    "GuardModel",
    "Report",
    "ResourceReport",
    "analyze_dataflow",
    "analyze_resources",
    "check_paths",
    "check_plan",
    "check_sources",
    "dead_instructions",
    "dump_plan",
    "dump_program",
    "eliminate_dead_instructions",
    "harvest_file",
    "infer_types",
    "output_atoms",
    "signature_for",
    "verify_plan",
]

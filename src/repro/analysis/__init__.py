"""Static analysis over MAL-like programs and incremental plans.

The passes here never execute a program — they reason about the
straight-line :class:`~repro.kernel.execution.program.Program` IR and the
rewriter's :class:`~repro.core.rewriter.incremental.IncrementalPlan`:

* :mod:`repro.analysis.dataflow` — def-before-use, single assignment,
  dead-instruction detection and elimination;
* :mod:`repro.analysis.typecheck` — atom type inference against the
  per-opcode signature table in :mod:`repro.analysis.signatures`;
* :mod:`repro.analysis.plan_verifier` — the Figure-3 taxonomy invariants
  that the factory and scheduler rely on (packed inputs, closure over
  bundles, AVG expansion, cost tags);
* :mod:`repro.analysis.pretty` — typed human-readable plan dumps;
* :mod:`repro.analysis.lint` — the ``repro lint`` driver that verifies
  real queries from ``examples/`` and ``benchmarks/``.
"""

from repro.analysis.dataflow import (
    analyze_dataflow,
    dead_instructions,
    eliminate_dead_instructions,
)
from repro.analysis.diagnostics import (
    SEV_ERROR,
    SEV_WARNING,
    Diagnostic,
    Report,
)
from repro.analysis.plan_verifier import check_plan, verify_plan
from repro.analysis.pretty import dump_plan, dump_program
from repro.analysis.signatures import SIGNATURES, signature_for
from repro.analysis.typecheck import infer_types, output_atoms

__all__ = [
    "SEV_ERROR",
    "SEV_WARNING",
    "SIGNATURES",
    "Diagnostic",
    "Report",
    "analyze_dataflow",
    "check_plan",
    "dead_instructions",
    "dump_plan",
    "dump_program",
    "eliminate_dead_instructions",
    "infer_types",
    "output_atoms",
    "signature_for",
    "verify_plan",
]

"""The engine's lock model: guard annotations and the declared lock order.

Shared mutable state in the engine is annotated at its definition site
with a trailing ``# guarded-by: <lock>`` comment::

    self.dropped = 0          # guarded-by: _lock
    def _admit(self, n):      # guarded-by: self._lock

On an attribute assignment (or dataclass field) the comment names the
lock attribute (of the same object) that must be held around every read
or write of that attribute.  On a ``def`` line it declares a *calling
convention*: the method body runs with the named lock already held — the
annotation both exempts the body from guard findings and seeds the
checker's held-lock set so nested accesses stay checked.  The lock may
be receiver-qualified (``registration.firing_lock``) for methods whose
guard lives on a parameter rather than ``self``.

This module extracts those annotations from source (:class:`GuardModel`
via :func:`harvest_file`) and declares the engine-wide **lock order** —
the total order every code path must acquire locks in.  The order is the
static contract; :mod:`repro.analysis.concurrency` checks code against
it and :mod:`repro.testing.lockcheck` replays runtime acquisitions
against it.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Optional

#: The engine-wide lock acquisition order (DESIGN.md §12).  A thread
#: holding lock ``LOCK_ORDER[i]`` may only acquire locks at strictly
#: higher positions.  Nodes are ``ClassName.attr``;
#: ``FragmentCache.pending`` stands for the per-span compute locks.
LOCK_ORDER: tuple[str, ...] = (
    "DurabilityManager.lock",
    "DataCellEngine._shard_pump_lock",
    "Scheduler._lock",
    "_Registration.firing_lock",
    "Basket._lock",
    "FragmentCache.pending",
    "FragmentCache._lock",
    "Profiler._lock",
    "Observability._lock",
    "LogHistogram._lock",
    "SpanRecorder._lock",
    "CollectingEmitter._lock",
    "CsvEmitter._lock",
    "RetryingEmitter._lock",
)

#: Rank of each declared lock node (lower acquires first).
LOCK_RANKS: dict[str, int] = {node: i for i, node in enumerate(LOCK_ORDER)}

#: Fallback receiver-name → class table for parameters and locals the
#: checker cannot type from annotations or member assignments.  Names
#: follow the codebase's own conventions, so a ``basket`` really is a
#: :class:`~repro.core.basket.Basket` wherever it appears.
NAME_HINTS: dict[str, str] = {
    "basket": "Basket",
    "scheduler": "Scheduler",
    "registration": "_Registration",
    "profiler": "Profiler",
    "obs": "Observability",
    "hist": "LogHistogram",
    "histogram": "LogHistogram",
    "recorder": "SpanRecorder",
    "engine": "DataCellEngine",
    "cache": "FragmentCache",
    "emitter": "CollectingEmitter",
    "journal": "DurabilityManager",
    "dur": "DurabilityManager",
}

_GUARD_RE = re.compile(r"guarded-by:\s*([\w.]+)")

#: ``threading`` constructors that create a lock (or lock-like) object.
LOCK_CTORS = ("Lock", "RLock", "Condition")


def rank_of(node: str) -> Optional[int]:
    """Position of a lock node in the declared order (None = undeclared)."""
    return LOCK_RANKS.get(node)


@dataclass
class ClassGuards:
    """Everything the checker knows about one class's locking discipline."""

    name: str
    file: str
    #: attribute → lock attribute that guards it (both bare names).
    guarded: dict[str, str] = field(default_factory=dict)
    #: attributes that *are* locks (Lock/RLock/Condition instances).
    locks: set[str] = field(default_factory=set)
    #: Condition attr → the lock attr it wraps (holding either is holding
    #: both: ``Condition(self._lock)`` shares the underlying lock).
    lock_aliases: dict[str, str] = field(default_factory=dict)
    #: method name → lock expression text the method is entered with
    #: (``self._lock``, ``registration.firing_lock``, ...).
    guarded_methods: dict[str, str] = field(default_factory=dict)
    #: attribute → class name of the object stored there (for receiver
    #: chains like ``engine.obs.spans``).
    member_types: dict[str, str] = field(default_factory=dict)
    #: guard annotations whose line, for diagnostics.
    guard_lines: dict[str, int] = field(default_factory=dict)

    def canonical_lock(self, lock_attr: str) -> str:
        """Resolve a Condition alias to the lock it wraps."""
        return self.lock_aliases.get(lock_attr, lock_attr)

    def equivalent_locks(self, lock_attr: str) -> set[str]:
        """All attrs naming the same underlying lock (aliases included)."""
        canonical = self.canonical_lock(lock_attr)
        out = {canonical}
        for alias, target in self.lock_aliases.items():
            if target == canonical:
                out.add(alias)
        return out


@dataclass
class GuardModel:
    """Per-class guard annotations harvested from a set of source files."""

    classes: dict[str, ClassGuards] = field(default_factory=dict)

    def merge(self, other: "GuardModel") -> None:
        self.classes.update(other.classes)

    def guards_for(self, class_name: Optional[str]) -> Optional[ClassGuards]:
        if class_name is None:
            return None
        return self.classes.get(class_name)


def comment_lines(source: str) -> dict[int, str]:
    """Line number → comment text, via the tokenizer (string-safe)."""
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except tokenize.TokenizeError:  # pragma: no cover - defensive
        pass
    return comments


def guard_annotation(
    comments: dict[int, str], first_line: int, last_line: Optional[int]
) -> Optional[str]:
    """The ``guarded-by:`` target on any line of a statement, if present."""
    for line in range(first_line, (last_line or first_line) + 1):
        comment = comments.get(line)
        if comment:
            match = _GUARD_RE.search(comment)
            if match:
                return match.group(1)
    return None


def lock_ctor_name(node: ast.AST) -> Optional[str]:
    """``threading.Lock()``-style call → ctor name, else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in LOCK_CTORS:
        if isinstance(func.value, ast.Name) and func.value.id == "threading":
            return func.attr
    if isinstance(func, ast.Name) and func.id in LOCK_CTORS:
        return func.id
    return None


def annotation_class(node: Optional[ast.AST]) -> Optional[str]:
    """Best-effort class name from a type annotation.

    Handles ``Name``, string annotations, ``Optional[X]``, ``X | None``
    and quoted forward references; anything else is unknown.
    """
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: re-parse the inner expression.
        try:
            return annotation_class(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            return annotation_class(node.slice)
        if isinstance(base, ast.Attribute) and base.attr == "Optional":
            return annotation_class(node.slice)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = annotation_class(node.left)
        if left is not None and not (
            isinstance(node.left, ast.Constant) and node.left.value is None
        ):
            return left
        return annotation_class(node.right)
    return None


def _harvest_init_body(
    cls: ClassGuards, fn: ast.FunctionDef, comments: dict[int, str]
) -> None:
    """Collect locks, aliases, guards, and member types from an ``__init__``."""
    for stmt in ast.walk(fn):
        target: Optional[ast.Attribute] = None
        value: Optional[ast.AST] = None
        annotation: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            if isinstance(stmt.targets[0], ast.Attribute):
                target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Attribute):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
        if target is None or not (
            isinstance(target.value, ast.Name) and target.value.id == "self"
        ):
            continue
        attr = target.attr
        ctor = lock_ctor_name(value) if value is not None else None
        if ctor is not None:
            cls.locks.add(attr)
            if ctor == "Condition" and isinstance(value, ast.Call) and value.args:
                arg = value.args[0]
                if (
                    isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == "self"
                ):
                    cls.lock_aliases[attr] = arg.attr
            continue
        guard = guard_annotation(
            comments, stmt.lineno, getattr(stmt, "end_lineno", stmt.lineno)
        )
        if guard is not None:
            cls.guarded[attr] = guard.removeprefix("self.")
            cls.guard_lines[attr] = stmt.lineno
        member = ctor_class(value) or annotation_class(annotation)
        if member is None and isinstance(value, ast.Name):
            # ``self.obs = obs``: propagate the parameter's annotation.
            for arg in fn.args.args + fn.args.kwonlyargs:
                if arg.arg == value.id:
                    member = annotation_class(arg.annotation)
                    break
        if member is not None:
            cls.member_types.setdefault(attr, member)


def ctor_class(node: Optional[ast.AST]) -> Optional[str]:
    """``ClassName(...)`` (possibly inside a conditional) → class name."""
    if node is None:
        return None
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        name = node.func.id
        if name and (name[0].isupper() or name.startswith("_")):
            return name
    if isinstance(node, ast.IfExp):
        return ctor_class(node.body) or ctor_class(node.orelse)
    return None


def harvest_file(path: str, source: str, tree: ast.Module) -> GuardModel:
    """Extract the guard model of every class defined in one file."""
    comments = comment_lines(source)
    model = GuardModel()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        cls = ClassGuards(name=node.name, file=path)
        for item in node.body:
            # Dataclass fields: annotated assignments in the class body.
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                attr = item.target.id
                if _field_lock_ctor(item.value) or lock_ctor_name(item.value):
                    cls.locks.add(attr)
                    continue
                guard = guard_annotation(
                    comments, item.lineno, getattr(item, "end_lineno", item.lineno)
                )
                if guard is not None:
                    cls.guarded[attr] = guard.removeprefix("self.")
                    cls.guard_lines[attr] = item.lineno
                member = annotation_class(item.annotation)
                if member is not None:
                    cls.member_types.setdefault(attr, member)
            elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if item.name in ("__init__", "__post_init__"):
                    _harvest_init_body(cls, item, comments)
                guard = guard_annotation(
                    comments, item.lineno, item.body[0].lineno - 1
                )
                if guard is not None:
                    lock = guard if "." in guard else f"self.{guard}"
                    cls.guarded_methods[item.name] = lock
        model.classes[cls.name] = cls
    return model


def _field_lock_ctor(node: Optional[ast.AST]) -> bool:
    """``field(default_factory=threading.Lock)`` dataclass lock fields."""
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "field"
    ):
        return False
    for kw in node.keywords:
        if kw.arg != "default_factory":
            continue
        value = kw.value
        if isinstance(value, ast.Attribute) and value.attr in LOCK_CTORS:
            return True
        if isinstance(value, ast.Name) and value.id in LOCK_CTORS:
            return True
        if isinstance(value, ast.Lambda):
            return lock_ctor_name(value.body) is not None
    return False

"""Whole-engine concurrency lint (part 1 of ``repro check``).

A flow-insensitive-but-scope-aware AST pass over ``src/repro`` that
checks the engine's locking discipline against the model declared in
:mod:`repro.analysis.guards`:

* **Guarded attributes** — every read/write of an attribute annotated
  ``# guarded-by: <lock>`` must happen inside a ``with <lock>:`` block
  (or in a method whose ``def`` line carries the annotation, meaning the
  caller holds the lock).  ``Condition(self._lock)`` aliases count as
  holding the underlying lock, and ``basket.locked()`` is recognized as
  ``basket._lock``.
* **Lock order** — every statically observable nested acquisition
  becomes an edge ``A -> B`` in the acquisition graph; edges between
  locks in :data:`~repro.analysis.guards.LOCK_ORDER` must go strictly
  down the declared order, and the whole graph must be acyclic.
  ``self.m()`` calls propagate the callee's acquisitions to the caller's
  held set (intra-class, fixpoint over the call graph).
* **Engine invariants** — every ``threading.Lock``/``RLock``/
  ``Condition`` constructed in the engine must live on a class (locks
  need an owner), ``time.sleep`` must never run under a lock, and
  private (``_underscore``) attributes must not be written from outside
  their class (the "no basket mutation outside ``basket._lock``" rule,
  generalized).

Held locks are tracked *textually* (``self._lock``, ``other._lock``,
``basket._lock``) so cross-object disciplines like
``Profiler.merge_from`` check naturally.  Receiver classes are inferred
from parameter annotations, local assignments, member-type chains
(``engine.obs.spans``), and the naming conventions in
:data:`~repro.analysis.guards.NAME_HINTS`; accesses through receivers
the pass cannot type are skipped (under-approximation — the runtime
:mod:`repro.testing.lockcheck` oracle covers the dynamic side).

Deliberate approximations: ``.acquire()`` holds for the rest of the
function (``.release()`` is ignored), and nested functions/lambdas are
analyzed with an empty held set since they may run on another thread.

A finding can be suppressed — with justification — by a trailing
``# repro-check: allow(<code>)`` comment on the offending line.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.analysis.diagnostics import Report
from repro.analysis.guards import (
    LOCK_ORDER,
    LOCK_RANKS,
    NAME_HINTS,
    GuardModel,
    annotation_class,
    comment_lines,
    ctor_class,
    harvest_file,
    lock_ctor_name,
)

_ALLOW_RE = re.compile(r"repro-check:\s*allow\(([\w\s,-]+)\)")

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

_ScopeNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


@dataclass(frozen=True)
class LockEdge:
    """One observed ``src held while acquiring dst`` acquisition edge."""

    src: str
    dst: str
    file: str
    line: int

    def to_json(self) -> dict[str, object]:
        return {"src": self.src, "dst": self.dst, "file": self.file, "line": self.line}


@dataclass
class ConcurrencyResult:
    """Findings plus the extracted model and lock-acquisition graph."""

    report: Report
    model: GuardModel
    edges: list[LockEdge]
    files: list[str]

    def to_json(self) -> dict[str, object]:
        deduped = sorted({(e.src, e.dst) for e in self.edges})
        return {
            "files": list(self.files),
            "lock_order": list(LOCK_ORDER),
            "edges": [{"src": src, "dst": dst} for src, dst in deduped],
            "report": self.report.to_json(),
        }


@dataclass
class _MethodFacts:
    """Per-method lock acquisitions and intra-class calls (for closure)."""

    acquires: set[str] = field(default_factory=set)
    calls: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class _SelfCall:
    """A ``self.callee()`` made while holding locks (edge propagation)."""

    cls: str
    callee: str
    held: frozenset[str]
    file: str
    line: int


def iter_python_files(paths: Sequence[str]) -> list[str]:
    """All ``.py`` files under the given files/directories, sorted."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
    return out


def check_paths(paths: Sequence[str]) -> ConcurrencyResult:
    """Run the concurrency lint over files/directories on disk."""
    sources: list[tuple[str, str]] = []
    report = Report(subject="concurrency")
    for path in iter_python_files(paths):
        try:
            with open(path, encoding="utf-8") as handle:
                sources.append((path, handle.read()))
        except OSError as exc:
            report.error("module", f"cannot read {path}: {exc}", file=path, code="io-error")
    result = check_sources(sources)
    result.report.diagnostics[:0] = report.diagnostics
    return result


def check_sources(sources: Sequence[tuple[str, str]]) -> ConcurrencyResult:
    """Run the concurrency lint over in-memory ``(path, source)`` pairs."""
    report = Report(subject="concurrency")
    parsed: list[tuple[str, str, ast.Module]] = []
    for path, source in sources:
        try:
            parsed.append((path, source, ast.parse(source)))
        except SyntaxError as exc:
            report.error(
                "module", f"syntax error: {exc.msg}",
                file=path, line=exc.lineno, code="syntax-error",
            )
    model = GuardModel()
    for path, source, tree in parsed:
        model.merge(harvest_file(path, source, tree))
    edges: list[LockEdge] = []
    registry: dict[tuple[str, str], _MethodFacts] = {}
    self_calls: list[_SelfCall] = []
    for path, source, tree in parsed:
        comments = comment_lines(source)
        _check_module(path, tree, comments, model, report, edges, registry, self_calls)
        _check_lock_owners(path, tree, comments, report)
    _propagate_self_calls(registry, self_calls, edges)
    _check_graph(edges, report)
    return ConcurrencyResult(report, model, edges, [p for p, _, _ in parsed])


# ----------------------------------------------------------------------
# per-module driver
# ----------------------------------------------------------------------
def _check_module(
    path: str,
    tree: ast.Module,
    comments: dict[int, str],
    model: GuardModel,
    report: Report,
    edges: list[LockEdge],
    registry: dict[tuple[str, str], _MethodFacts],
    self_calls: list[_SelfCall],
) -> None:
    # (node, enclosing class, scope name, register-in-call-graph)
    worklist: list[tuple[_ScopeNode, Optional[str], Optional[str], bool]] = []
    module_level: list[ast.stmt] = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, _FUNCTION_NODES):
                    worklist.append((item, node.name, item.name, True))
        elif isinstance(node, _FUNCTION_NODES):
            worklist.append((node, None, node.name, True))
        else:
            module_level.append(node)
    scope = _Scope(
        path, comments, model, report, edges, None, None,
        registry, self_calls, worklist, register=False,
    )
    scope.block(module_level)
    while worklist:
        fn, cls, name, register = worklist.pop(0)
        _Scope(
            path, comments, model, report, edges, cls, name,
            registry, self_calls, worklist, register=register,
        ).run(fn)


class _Scope:
    """Checks one function/method body with its own held-lock state."""

    def __init__(
        self,
        path: str,
        comments: dict[int, str],
        model: GuardModel,
        report: Report,
        edges: list[LockEdge],
        class_name: Optional[str],
        scope_name: Optional[str],
        registry: dict[tuple[str, str], _MethodFacts],
        self_calls: list[_SelfCall],
        worklist: list[tuple[_ScopeNode, Optional[str], Optional[str], bool]],
        register: bool,
    ) -> None:
        self.path = path
        self.comments = comments
        self.model = model
        self.report = report
        self.edges = edges
        self.class_name = class_name
        self.scope_name = scope_name
        self.registry = registry
        self.self_calls = self_calls
        self.worklist = worklist
        self.register = register
        #: lock expression text -> ``Class.attr`` node (None if unresolved)
        self.held: dict[str, Optional[str]] = {}
        #: local name -> inferred class (None = unknown, shadows NAME_HINTS)
        self.local_types: dict[str, Optional[str]] = {}
        #: local name -> lock node (``span_lock``-style per-span locks)
        self.local_locks: dict[str, str] = {}
        self.acquires: set[str] = set()
        self.calls: list[str] = []

    # -- entry points --------------------------------------------------
    def run(self, fn: _ScopeNode) -> None:
        if isinstance(fn, ast.Lambda):
            self._expr(fn.body)
            return
        args = fn.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            cls = annotation_class(arg.annotation)
            if cls is not None:
                self.local_types[arg.arg] = cls
        guards = self.model.guards_for(self.class_name)
        if self.register and guards is not None and self.scope_name is not None:
            lock = guards.guarded_methods.get(self.scope_name)
            if lock is not None:
                # Calling convention: the method is entered with this
                # lock held — seed it without counting an acquisition.
                self.held[lock] = self._lock_node_for_text(lock)
        self.block(fn.body)
        if self.register and self.class_name is not None and self.scope_name is not None:
            self.registry[(self.class_name, self.scope_name)] = _MethodFacts(
                set(self.acquires), list(self.calls)
            )

    def block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    # -- statements ----------------------------------------------------
    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, _FUNCTION_NODES):
            # May run on another thread: analyzed with an empty held set.
            self.worklist.append((node, self.class_name, node.name, False))
            return
        if isinstance(node, ast.ClassDef):
            return  # nested classes: out of scope for this pass
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._with(node)
            return
        if isinstance(node, ast.If):
            self._if(node)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._expr(node.iter)
            self._shadow_targets(node.target)
            self._expr(node.target)
            self.block(node.body)
            self.block(node.orelse)
            return
        if isinstance(node, ast.Assign):
            self._expr(node.value)
            for target in node.targets:
                self._expr(target)
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                self._track_local(node.targets[0].id, node.value)
            return
        if isinstance(node, ast.AnnAssign):
            self._expr(node.value)
            self._expr(node.target)
            if isinstance(node.target, ast.Name):
                self.local_types[node.target.id] = annotation_class(node.annotation)
            return
        if isinstance(node, ast.Try):
            self.block(node.body)
            for handler in node.handlers:
                self._expr(handler.type)
                self.block(handler.body)
            self.block(node.orelse)
            self.block(node.finalbody)
            return
        if isinstance(node, ast.Expr):
            self._expr(node.value)
            acquired = self._acquire_call(node.value)
            if acquired is not None:
                # Bare ``X.acquire()``: held for the rest of the function.
                self._acquire(acquired[0], acquired[1], node.lineno)
            return
        # Generic statement: check expressions, recurse into sub-blocks.
        for _, value in ast.iter_fields(node):
            if isinstance(value, list):
                for child in value:
                    if isinstance(child, ast.stmt):
                        self._stmt(child)
                    elif isinstance(child, ast.expr):
                        self._expr(child)
            elif isinstance(value, ast.stmt):
                self._stmt(value)
            elif isinstance(value, ast.expr):
                self._expr(value)

    def _with(self, node: Union[ast.With, ast.AsyncWith]) -> None:
        added: list[str] = []
        for item in node.items:
            self._expr(item.context_expr)
            if item.optional_vars is not None:
                self._shadow_targets(item.optional_vars)
                self._expr(item.optional_vars)
            resolved = self._lock_item(item.context_expr)
            if resolved is not None:
                text, lock_node = resolved
                if self._acquire(text, lock_node, item.context_expr.lineno):
                    added.append(text)
        self.block(node.body)
        for text in added:
            del self.held[text]

    def _if(self, node: ast.If) -> None:
        self._expr(node.test)
        guard = self._acquire_guard(node)
        # The guarded body runs when acquisition FAILED — check it (and
        # the orelse) before marking the lock held.
        self.block(node.body)
        self.block(node.orelse)
        if guard is not None:
            self._acquire(guard[0], guard[1], node.lineno)

    def _acquire_guard(
        self, node: ast.If
    ) -> Optional[tuple[str, Optional[str]]]:
        """``if not X.acquire(...): return`` — X is held afterwards."""
        test = node.test
        if not (
            isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
            and node.body
            and isinstance(node.body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))
        ):
            return None
        return self._acquire_call(test.operand)

    def _acquire_call(self, node: ast.expr) -> Optional[tuple[str, Optional[str]]]:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
        ):
            return None
        target = node.func.value
        if isinstance(target, ast.Name) and target.id in self.local_locks:
            return target.id, self.local_locks[target.id]
        if isinstance(target, (ast.Attribute, ast.Name)):
            resolved = self._lock_item(target)
            if resolved is not None:
                return resolved
        return None

    # -- expressions ---------------------------------------------------
    def _expr(self, node: Optional[ast.AST]) -> None:
        if node is None:
            return
        if isinstance(node, ast.Lambda):
            self.worklist.append((node, self.class_name, self.scope_name, False))
            return
        if isinstance(node, ast.Attribute):
            self._attribute(node)
        elif isinstance(node, ast.Call):
            self._call(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.stmt, ast.expr_context)):
                continue
            self._expr(child)

    def _attribute(self, node: ast.Attribute) -> None:
        attr = node.attr
        if attr.startswith("__"):
            return
        receiver = node.value
        rtext = ast.unparse(receiver)
        cls = self._class_of(receiver)
        guards = self.model.guards_for(cls)
        writing = isinstance(node.ctx, (ast.Store, ast.Del))
        if guards is not None and attr in guards.guarded:
            if rtext == "self" and self.scope_name in ("__init__", "__post_init__"):
                return
            lock = guards.guarded[attr]
            required = {
                f"{rtext}.{alias}" for alias in guards.equivalent_locks(lock)
            }
            if required & self.held.keys():
                return
            code = "unguarded-write" if writing else "unguarded-read"
            if self._allowed(node.lineno, code):
                return
            verb = "write to" if writing else "read of"
            self.report.error(
                self._where(),
                f"{verb} {cls}.{attr} (guarded-by {lock}) without holding "
                f"{rtext}.{guards.canonical_lock(lock)}",
                file=self.path, line=node.lineno, code=code,
            )
            return
        if (
            writing
            and attr.startswith("_")
            and rtext != "self"
            and not self._allowed(node.lineno, "foreign-private-write")
        ):
            self.report.error(
                self._where(),
                f"write to private attribute {rtext}.{attr} from outside its class",
                file=self.path, line=node.lineno, code="foreign-private-write",
            )

    def _call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if (
            func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and self.held
            and not self._allowed(node.lineno, "sleep-under-lock")
        ):
            self.report.error(
                self._where(),
                f"time.sleep() while holding {', '.join(sorted(self.held))}",
                file=self.path, line=node.lineno, code="sleep-under-lock",
            )
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and self.class_name is not None
        ):
            self.calls.append(func.attr)
            held_nodes = frozenset(n for n in self.held.values() if n is not None)
            if held_nodes:
                self.self_calls.append(
                    _SelfCall(
                        self.class_name, func.attr, held_nodes,
                        self.path, node.lineno,
                    )
                )

    # -- lock resolution -----------------------------------------------
    def _lock_item(self, expr: ast.expr) -> Optional[tuple[str, Optional[str]]]:
        """With-item / acquire target -> ``(held text, graph node)``."""
        if isinstance(expr, ast.Attribute):
            cls = self._class_of(expr.value)
            guards = self.model.guards_for(cls)
            node: Optional[str] = None
            if guards is not None and expr.attr in guards.locks:
                node = f"{cls}.{guards.canonical_lock(expr.attr)}"
            return ast.unparse(expr), node
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "locked"
            and not expr.args
        ):
            # ``basket.locked()`` hands out basket._lock for with-blocks.
            base = expr.func.value
            cls = self._class_of(base)
            guards = self.model.guards_for(cls)
            node = None
            if guards is not None and "_lock" in guards.locks:
                node = f"{cls}._lock"
            return f"{ast.unparse(base)}._lock", node
        if isinstance(expr, ast.Name) and expr.id in self.local_locks:
            return expr.id, self.local_locks[expr.id]
        return None

    def _acquire(self, text: str, node: Optional[str], line: int) -> bool:
        if text in self.held:
            return False  # re-entrant acquisition of the same object
        for hnode in self.held.values():
            if hnode is not None and node is not None:
                self.edges.append(LockEdge(hnode, node, self.path, line))
        self.held[text] = node
        if node is not None:
            self.acquires.add(node)
        return True

    def _lock_node_for_text(self, lock_text: str) -> Optional[str]:
        rtext, _, lattr = lock_text.rpartition(".")
        if not rtext:
            return None
        try:
            receiver = ast.parse(rtext, mode="eval").body
        except SyntaxError:
            return None
        cls = self._class_of(receiver)
        guards = self.model.guards_for(cls)
        if guards is not None and lattr in guards.locks:
            return f"{cls}.{guards.canonical_lock(lattr)}"
        return None

    # -- receiver typing -----------------------------------------------
    def _class_of(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return self.class_name
            if expr.id in self.local_types:
                return self.local_types[expr.id]
            return NAME_HINTS.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._class_of(expr.value)
            guards = self.model.guards_for(base)
            if guards is not None:
                return guards.member_types.get(expr.attr)
            return None
        return None

    def _track_local(self, name: str, value: ast.expr) -> None:
        pending = self._pending_lock(value)
        if pending is not None:
            self.local_locks[name] = pending
            self.local_types[name] = None
            return
        if lock_ctor_name(value) is not None:
            self.local_types[name] = None
            return
        self.local_types[name] = self._infer(value)

    def _infer(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, (ast.Name, ast.Attribute)):
            return self._class_of(value)
        cls = ctor_class(value)
        if cls is not None and cls in self.model.classes:
            return cls
        return None

    def _pending_lock(self, value: ast.expr) -> Optional[str]:
        """``group.pending.setdefault(span, threading.Lock())`` — the
        fragment cache's per-span compute locks form one graph node."""
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "setdefault"
            and isinstance(value.func.value, ast.Attribute)
            and value.func.value.attr == "pending"
            and any(lock_ctor_name(arg) is not None for arg in value.args)
        ):
            return "FragmentCache.pending"
        return None

    def _shadow_targets(self, target: ast.expr) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self.local_types[node.id] = None

    # -- misc ----------------------------------------------------------
    def _where(self) -> str:
        if self.class_name is not None and self.scope_name is not None:
            return f"{self.class_name}.{self.scope_name}"
        return self.scope_name or "module"

    def _allowed(self, line: int, code: str) -> bool:
        comment = self.comments.get(line)
        if not comment:
            return False
        match = _ALLOW_RE.search(comment)
        return bool(match and code in match.group(1))


# ----------------------------------------------------------------------
# whole-program checks
# ----------------------------------------------------------------------
def _check_lock_owners(
    path: str,
    tree: ast.Module,
    comments: dict[int, str],
    report: Report,
) -> None:
    """Every lock constructed in the engine must belong to a class."""

    def visit(node: ast.AST, in_class: bool) -> None:
        name = lock_ctor_name(node)
        if name is not None and not in_class:
            comment = comments.get(node.lineno, "")
            match = _ALLOW_RE.search(comment)
            if not (match and "lock-no-owner" in match.group(1)):
                report.error(
                    "module",
                    f"threading.{name}() created outside any class — "
                    "every engine lock needs an owner class",
                    file=path, line=node.lineno, code="lock-no-owner",
                )
        in_class = in_class or isinstance(node, ast.ClassDef)
        for child in ast.iter_child_nodes(node):
            visit(child, in_class)

    visit(tree, False)


def _propagate_self_calls(
    registry: dict[tuple[str, str], _MethodFacts],
    self_calls: Sequence[_SelfCall],
    edges: list[LockEdge],
) -> None:
    """Add edges for locks acquired (transitively) by ``self.m()`` calls
    made while holding a lock."""
    closures: dict[tuple[str, str], set[str]] = {}

    def closure(key: tuple[str, str], seen: set[tuple[str, str]]) -> set[str]:
        if key in closures:
            return closures[key]
        if key in seen:
            return set()
        seen.add(key)
        facts = registry.get(key)
        if facts is None:
            return set()
        out = set(facts.acquires)
        for callee in facts.calls:
            out |= closure((key[0], callee), seen)
        closures[key] = out
        return out

    for call in self_calls:
        acquired = closure((call.cls, call.callee), set())
        for held in sorted(call.held):
            for node in sorted(acquired):
                if node != held:
                    edges.append(LockEdge(held, node, call.file, call.line))


def _check_graph(edges: Sequence[LockEdge], report: Report) -> None:
    """Validate the acquisition graph against the declared lock order."""
    seen: dict[tuple[str, str], LockEdge] = {}
    for edge in edges:
        seen.setdefault((edge.src, edge.dst), edge)
    for (src, dst), edge in sorted(seen.items()):
        src_rank = LOCK_RANKS.get(src)
        dst_rank = LOCK_RANKS.get(dst)
        if src_rank is None or dst_rank is None:
            report.warning(
                "lock-order",
                f"acquisition edge {src} -> {dst} involves a lock outside "
                "the declared LOCK_ORDER",
                file=edge.file, line=edge.line, code="unranked-lock",
            )
        elif src_rank >= dst_rank:
            report.error(
                "lock-order",
                f"{src} (rank {src_rank}) held while acquiring {dst} "
                f"(rank {dst_rank}) — violates the declared lock order",
                file=edge.file, line=edge.line, code="lock-order-violation",
            )
    adjacency: dict[str, list[str]] = {}
    for src, dst in seen:
        adjacency.setdefault(src, []).append(dst)
    color: dict[str, int] = {}
    stack: list[str] = []

    def dfs(node: str) -> None:
        color[node] = 1
        stack.append(node)
        for nxt in sorted(adjacency.get(node, ())):
            if color.get(nxt, 0) == 1:
                cycle = stack[stack.index(nxt):] + [nxt]
                edge = seen[(node, nxt)]
                report.error(
                    "lock-order",
                    "lock acquisition cycle: " + " -> ".join(cycle),
                    file=edge.file, line=edge.line, code="lock-cycle",
                )
            elif color.get(nxt, 0) == 0:
                dfs(nxt)
        stack.pop()
        color[node] = 2

    for node in sorted(adjacency):
        if color.get(node, 0) == 0:
            dfs(node)

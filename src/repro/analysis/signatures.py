"""Per-opcode type signatures for MAL-like programs.

One :class:`OpSig` per interpreter opcode: operand-count bounds plus a
typing rule that maps operand atom types to output atom types, mirroring
the runtime behaviour of :mod:`repro.kernel.algebra`.  The type-inference
pass (:mod:`repro.analysis.typecheck`) drives these rules symbolically;
``None`` stands for a statically unknown atom and propagates without
complaint — the rules only reject *definite* violations, exactly like the
kernel operators would at run time.

A test pins this table to :func:`repro.kernel.execution.interpreter.
known_opcodes`, so adding an opcode without a signature fails CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.kernel.atoms import Atom, atom_of_python, is_numeric

#: marker for "operand is a slot reference, not a literal"
_NO_LIT = object()


class SignatureError(Exception):
    """A definite type violation against an opcode signature."""


@dataclass(frozen=True)
class ArgType:
    """Static knowledge about one operand: its atom and literal value."""

    atom: Optional[Atom]  # None = unknown
    lit: object = _NO_LIT  # _NO_LIT for slot references

    @property
    def is_literal(self) -> bool:
        return self.lit is not _NO_LIT


def literal_arg(value: object) -> ArgType:
    """ArgType of a literal operand (atom inferred when possible)."""
    try:
        atom = atom_of_python(value)
    except Exception:
        atom = None  # Atoms, operator strings, None, ... carry no column type
    return ArgType(atom, value)


@dataclass(frozen=True)
class OpSig:
    """Operand-count bounds and the typing rule of one opcode."""

    name: str
    min_args: int
    max_args: Optional[int]  # None = unbounded
    rule: Callable[[Sequence[ArgType]], tuple[Optional[Atom], ...]]

    def check_arity(self, nargs: int) -> None:
        if nargs < self.min_args:
            raise SignatureError(
                f"{self.name} needs at least {self.min_args} operand(s), got {nargs}"
            )
        if self.max_args is not None and nargs > self.max_args:
            raise SignatureError(
                f"{self.name} takes at most {self.max_args} operand(s), got {nargs}"
            )

    def apply(self, args: Sequence[ArgType]) -> tuple[Optional[Atom], ...]:
        """Output atom types for the given operand types."""
        self.check_arity(len(args))
        return self.rule(args)


# ----------------------------------------------------------------------
# rule helpers
# ----------------------------------------------------------------------
def _require_numeric(arg: ArgType, op: str) -> None:
    if arg.atom is not None and not is_numeric(arg.atom):
        raise SignatureError(f"{op} needs a numeric operand, got {arg.atom.value}")


def _require_atom(arg: ArgType, atom: Atom, op: str, role: str) -> None:
    if arg.atom is not None and arg.atom != atom:
        raise SignatureError(f"{op} expects a {atom.value} {role}, got {arg.atom.value}")


def _promote(left: ArgType, right: ArgType, op: str) -> Optional[Atom]:
    if left.atom is None or right.atom is None:
        return None
    if left.atom == right.atom:
        return left.atom
    if is_numeric(left.atom) and is_numeric(right.atom):
        return Atom.FLT if Atom.FLT in (left.atom, right.atom) else Atom.INT
    raise SignatureError(f"{op} cannot combine {left.atom.value} with {right.atom.value}")


def _same(parts: Sequence[ArgType], op: str) -> Optional[Atom]:
    atom: Optional[Atom] = None
    for part in parts:
        if part.atom is None:
            continue
        if atom is None:
            atom = part.atom
        elif part.atom != atom:
            raise SignatureError(
                f"{op} atom mismatch: {atom.value} vs {part.atom.value}"
            )
    return atom


# ----------------------------------------------------------------------
# the signature table
# ----------------------------------------------------------------------
def _build_signatures() -> dict[str, OpSig]:
    table: dict[str, OpSig] = {}

    def sig(name: str, lo: int, hi: Optional[int], rule) -> None:
        table[name] = OpSig(name, lo, hi, rule)

    # -- selections: value column (+ optional candidates) -> OID list
    def select_rule(a):
        if len(a) == 6:
            _require_atom(a[5], Atom.OID, "algebra.select", "candidate list")
        return (Atom.OID,)

    sig("algebra.select", 3, 6, select_rule)

    def theta_rule(a):
        if len(a) == 4:
            _require_atom(a[3], Atom.OID, "algebra.thetaselect", "candidate list")
        if a[2].is_literal and a[2].lit not in ("==", "!=", "<", "<=", ">", ">="):
            raise SignatureError(
                f"algebra.thetaselect got unknown comparison {a[2].lit!r}"
            )
        return (Atom.OID,)

    sig("algebra.thetaselect", 3, 4, theta_rule)

    def mask_rule(a):
        _require_atom(a[0], Atom.BIT, "algebra.mask_select", "mask")
        if len(a) == 2:
            _require_atom(a[1], Atom.OID, "algebra.mask_select", "candidate list")
        return (Atom.OID,)

    sig("algebra.mask_select", 1, 2, mask_rule)

    def cand_rule(name):
        def rule(a):
            _require_atom(a[0], Atom.OID, name, "candidate list")
            _require_atom(a[1], Atom.OID, name, "candidate list")
            return (Atom.OID,)

        return rule

    for name in ("cand.intersect", "cand.union", "cand.difference"):
        sig(name, 2, 2, cand_rule(name))

    # -- projection / reconstruction
    def projection_rule(a):
        _require_atom(a[0], Atom.OID, "algebra.projection", "candidate list")
        return (a[1].atom,)

    sig("algebra.projection", 2, 2, projection_rule)
    sig("bat.mirror", 1, 1, lambda a: (Atom.OID,))
    sig("bat.materialize", 1, 1, lambda a: (a[0].atom,))
    sig("bat.slice", 3, 3, lambda a: (a[0].atom,))
    sig("bat.count", 1, 1, lambda a: (Atom.INT,))
    sig("bat.id", 1, 1, lambda a: (a[0].atom,))

    # -- joins
    def join_rule(outs):
        def rule(a):
            left, right = a[0], a[1]
            if (
                left.atom is not None
                and right.atom is not None
                and left.atom != right.atom
                and not (is_numeric(left.atom) and is_numeric(right.atom))
            ):
                raise SignatureError(
                    f"join atoms differ: {left.atom.value} vs {right.atom.value}"
                )
            return (Atom.OID,) * outs

        return rule

    sig("algebra.join", 2, 2, join_rule(2))
    sig("algebra.semijoin", 2, 2, join_rule(1))
    sig("algebra.antijoin", 2, 2, join_rule(1))

    # -- grouping
    sig("group.group", 1, None, lambda a: (Atom.INT, Atom.OID, Atom.INT))
    sig("group.distinct", 1, 1, lambda a: (a[0].atom,))

    # -- global aggregates (1-row-BAT convention)
    def sum_rule(a):
        _require_numeric(a[0], "aggr.sum")
        if a[0].atom is None:
            return (None,)
        return (Atom.FLT if a[0].atom == Atom.FLT else Atom.INT,)

    sig("aggr.sum", 1, 1, sum_rule)
    sig("aggr.count", 1, 1, lambda a: (Atom.INT,))
    sig("aggr.min", 1, 1, lambda a: (a[0].atom,))
    sig("aggr.max", 1, 1, lambda a: (a[0].atom,))

    def avg_rule(a):
        _require_numeric(a[0], "aggr.avg")
        return (Atom.FLT,)

    sig("aggr.avg", 1, 1, avg_rule)

    # -- grouped aggregates: (values, gids, ngroups)
    def grouped_rule(name, numeric, out):
        def rule(a):
            if numeric:
                _require_numeric(a[0], name)
            _require_atom(a[1], Atom.INT, name, "group-id column")
            _require_atom(a[2], Atom.INT, name, "group count")
            if out == "same":
                return (a[0].atom,)
            return (out,)

        return rule

    sig("aggr.subsum", 3, 3, grouped_rule("aggr.subsum", True, "same"))
    sig("aggr.subcount", 3, 3, grouped_rule("aggr.subcount", False, Atom.INT))
    sig("aggr.submin", 3, 3, grouped_rule("aggr.submin", False, "same"))
    sig("aggr.submax", 3, 3, grouped_rule("aggr.submax", False, "same"))
    sig("aggr.subavg", 3, 3, grouped_rule("aggr.subavg", True, Atom.FLT))

    # -- global-aggregate row alignment: n columns in, the same n out
    sig("aggr.align", 1, None, lambda a: tuple(arg.atom for arg in a))

    # -- merge / materialization
    sig("mat.pack", 1, None, lambda a: (_same(a, "mat.pack"),))
    sig("bat.append", 2, 2, lambda a: (_same(a, "bat.append"),))
    sig("bat.unique", 1, 1, lambda a: (a[0].atom,))

    # -- ordering
    sig("algebra.sort", 2, 2, lambda a: (a[0].atom, Atom.OID))

    def sortrefine_rule(a):
        _require_atom(a[0], Atom.OID, "algebra.sortrefine", "order")
        return (Atom.OID,)

    sig("algebra.sortrefine", 3, 3, sortrefine_rule)
    sig("algebra.firstn", 2, 3, lambda a: (Atom.OID,))

    # -- calculator
    def arith_rule(op):
        name = f"calc.{op}"

        def rule(a):
            if a[0].is_literal and a[1].is_literal:
                raise SignatureError(f"{name} needs at least one column operand")
            _require_numeric(a[0], name)
            _require_numeric(a[1], name)
            return (_promote(a[0], a[1], name),)

        return rule

    for op in ("+", "-", "*", "%"):
        sig(f"calc.{op}", 2, 2, arith_rule(op))

    def div_rule(a):
        if a[0].is_literal and a[1].is_literal:
            raise SignatureError("calc.div needs at least one column operand")
        _require_numeric(a[0], "calc.div")
        _require_numeric(a[1], "calc.div")
        return (Atom.FLT,)

    sig("calc.div", 2, 2, div_rule)
    sig("calc./", 2, 2, div_rule)

    def compare_rule(op):
        name = f"calc.{op}"

        def rule(a):
            if a[0].is_literal and a[1].is_literal:
                raise SignatureError(f"{name} needs at least one column operand")
            left, right = a[0].atom, a[1].atom
            if left is not None and right is not None:
                if (left == Atom.STR) != (right == Atom.STR):
                    raise SignatureError(
                        f"{name} cannot compare {left.value} with {right.value}"
                    )
            return (Atom.BIT,)

        return rule

    for op in ("==", "!=", "<", "<=", ">", ">="):
        sig(f"calc.{op}", 2, 2, compare_rule(op))

    def logic_rule(name):
        def rule(a):
            for arg in a:
                _require_atom(arg, Atom.BIT, name, "operand")
            return (Atom.BIT,)

        return rule

    sig("calc.and", 2, 2, logic_rule("calc.and"))
    sig("calc.or", 2, 2, logic_rule("calc.or"))
    sig("calc.not", 1, 1, logic_rule("calc.not"))

    def neg_rule(a):
        if a[0].atom is not None and a[0].atom not in (Atom.INT, Atom.FLT):
            raise SignatureError(f"calc.neg cannot negate {a[0].atom.value}")
        return (a[0].atom,)

    sig("calc.neg", 1, 1, neg_rule)

    def const_rule(a):
        atom = a[1].lit if a[1].is_literal and isinstance(a[1].lit, Atom) else None
        return (atom,)

    sig("calc.const", 3, 3, const_rule)
    return table


SIGNATURES: dict[str, OpSig] = _build_signatures()


def signature_for(opcode: str) -> Optional[OpSig]:
    """The signature of ``opcode``, or None for unknown opcodes."""
    return SIGNATURES.get(opcode)

"""Atom type inference over MAL-like programs.

Propagates :class:`~repro.kernel.atoms.Atom` types from the program's input
slots through every instruction, using the per-opcode signature table in
:mod:`repro.analysis.signatures`.  Unknown inputs propagate as ``None``
without complaint; definite violations (a BIT mask fed to an arithmetic
opcode, concatenating INT with STR partials, ...) become error
diagnostics pointing at the offending instruction.

The pass is deliberately forgiving about *scalars vs columns*: the
interpreter passes 1-row BATs, Python ints and numpy arrays through the
same slots, so only the atom (value type) is tracked.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.analysis.diagnostics import Report
from repro.analysis.signatures import (
    ArgType,
    SignatureError,
    literal_arg,
    signature_for,
)
from repro.kernel.atoms import Atom
from repro.kernel.execution.program import Lit, Program, Ref

#: slot type environment: slot name -> Atom or None (unknown)
TypeEnv = dict[str, Optional[Atom]]


def infer_types(
    program: Program,
    input_atoms: Optional[Mapping[str, Optional[Atom]]] = None,
    where: str = "program",
    report: Optional[Report] = None,
) -> tuple[TypeEnv, Report]:
    """Infer the atom of every slot; returns ``(types, report)``.

    ``input_atoms`` maps input-slot names to their atoms; missing entries
    (or a missing mapping) are treated as unknown.  The inference never
    raises — all violations are collected in the report, and slots the
    checker cannot type stay ``None``.
    """
    report = report if report is not None else Report(subject=where)
    env: TypeEnv = {}
    given = dict(input_atoms or {})
    for name in program.inputs:
        env[name] = given.get(name)

    for index, instr in enumerate(program.instructions):
        signature = signature_for(instr.opcode)
        if signature is None:
            report.error(
                where,
                f"unknown opcode {instr.opcode!r} (no signature; the "
                "interpreter would reject it)",
                instr=index,
            )
            for out in instr.outs:
                env.setdefault(out, None)
            continue
        args: list[ArgType] = []
        for operand in instr.args:
            if isinstance(operand, Ref):
                args.append(ArgType(env.get(operand.name)))
            elif isinstance(operand, Lit):
                args.append(literal_arg(operand.value))
            else:  # pragma: no cover - defensive
                args.append(ArgType(None))
        try:
            outs = signature.apply(args)
        except SignatureError as exc:
            report.error(where, str(exc), instr=index)
            outs = tuple(None for __ in instr.outs)
        if len(outs) != len(instr.outs):
            report.error(
                where,
                f"{instr.opcode} produces {len(outs)} value(s) but the "
                f"instruction binds {len(instr.outs)} output slot(s)",
                instr=index,
            )
            outs = tuple(outs[: len(instr.outs)]) + tuple(
                None for __ in range(len(instr.outs) - len(outs))
            )
        for out, atom in zip(instr.outs, outs):
            # Later passes handle double assignment; last write wins here.
            env[out] = atom
    return env, report


def output_atoms(
    program: Program,
    input_atoms: Optional[Mapping[str, Optional[Atom]]] = None,
) -> list[Optional[Atom]]:
    """Inferred atoms of the program's declared outputs (None = unknown)."""
    env, __ = infer_types(program, input_atoms)
    return [env.get(name) for name in program.outputs]

"""Human-readable program dumps with inferred atom types.

``repro lint --dump`` uses this to render each program of an incremental
plan with one instruction per line, its cost tag, and the inferred atom of
every output slot — the format bug reports and EXPERIMENTS.md quote when
discussing rewritten plans.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.analysis.typecheck import infer_types
from repro.core.rewriter.incremental import IncrementalPlan, packed, prep_slot
from repro.kernel.atoms import Atom
from repro.kernel.execution.program import Lit, Program, Ref
from repro.sql.physical import scan_slot


def _atom_name(atom: Optional[Atom]) -> str:
    return atom.value if atom is not None else "?"


def _operand(arg) -> str:
    if isinstance(arg, Ref):
        return arg.name
    if isinstance(arg, Lit):
        return repr(arg.value)
    return repr(arg)  # pragma: no cover - defensive


def dump_program(
    program: Program,
    title: str,
    input_atoms: Optional[Mapping[str, Optional[Atom]]] = None,
) -> str:
    """Render one program with slot types, one instruction per line."""
    env, __ = infer_types(program, input_atoms, where=title)
    lines = [f"== {title} =="]
    ins = ", ".join(
        f"{name}:{_atom_name(env.get(name))}" for name in program.inputs
    )
    lines.append(f"  inputs:  {ins or '(none)'}")
    for index, instr in enumerate(program.instructions):
        outs = ", ".join(
            f"{out}:{_atom_name(env.get(out))}" for out in instr.outs
        )
        args = ", ".join(_operand(arg) for arg in instr.args)
        lines.append(
            f"  {index:3d}  {outs} := {instr.opcode}({args})  #{instr.tag}"
        )
    outs = ", ".join(
        f"{name}:{_atom_name(env.get(name))}" for name in program.outputs
    )
    lines.append(f"  outputs: {outs or '(none)'}")
    return "\n".join(lines)


def dump_plan(
    plan: IncrementalPlan,
    schemas: Optional[Mapping[str, Mapping[str, Atom]]] = None,
) -> str:
    """Render every program of an incremental plan, types included."""
    schemas = schemas or {}
    parts: list[str] = []

    flow_lines = ["== flows =="]
    for flow in plan.flows:
        flow_lines.append(f"  {flow.name}  [{flow.kind}]")
    parts.append("\n".join(flow_lines))

    window_lines = ["== windows =="]
    for alias, window in plan.windows.items():
        unit = "us" if window.time_based else "tuples"
        size = "landmark" if window.size is None else f"{window.size} {unit}"
        window_lines.append(
            f"  {alias}: {window.kind} size={size} step={window.step} {unit}"
        )
    parts.append("\n".join(window_lines))

    def scan_atoms(alias: str) -> dict[str, Optional[Atom]]:
        table = dict(schemas.get(alias, {}))
        return {
            scan_slot(alias, column): table.get(column)
            for column in plan.scan_columns.get(alias, [])
        }

    fragment_atoms: dict[str, Optional[Atom]] = {}
    if plan.fragment is not None:
        alias = plan.stream_aliases[0]
        env, __ = infer_types(plan.fragment, scan_atoms(alias))
        fragment_atoms = {
            flow.name: env.get(slot)
            for flow, slot in zip(plan.flows, plan.fragment.outputs)
        }
        parts.append(
            dump_program(
                plan.fragment, "fragment (per basic window)", scan_atoms(alias)
            )
        )
    pair_inputs: dict[str, Optional[Atom]] = {}
    for alias, prep in plan.preps.items():
        env, __ = infer_types(prep.program, scan_atoms(alias))
        for column, slot in zip(prep.columns, prep.program.outputs):
            pair_inputs[prep_slot(alias, column)] = env.get(slot)
        parts.append(
            dump_program(
                prep.program, f"prep[{alias}] (per basic window)", scan_atoms(alias)
            )
        )
    if plan.pair_fragment is not None:
        env, __ = infer_types(plan.pair_fragment, pair_inputs)
        fragment_atoms = {
            flow.name: env.get(slot)
            for flow, slot in zip(plan.flows, plan.pair_fragment.outputs)
        }
        parts.append(
            dump_program(
                plan.pair_fragment,
                "pair fragment (per basic-window pair)",
                pair_inputs,
            )
        )

    combine_inputs = {
        packed(flow.name): fragment_atoms.get(flow.name) for flow in plan.flows
    }
    combine_env, __ = infer_types(plan.combine, combine_inputs)
    parts.append(dump_program(plan.combine, "combine (per slide)", combine_inputs))

    finalize_inputs = {
        flow.name: combine_env.get(flow.name) for flow in plan.flows
    }
    parts.append(
        dump_program(plan.finalize, "finalize (per slide)", finalize_inputs)
    )

    out_lines = ["== result columns =="]
    for name, atom in zip(plan.output_names, plan.output_atoms):
        out_lines.append(f"  {name}: {_atom_name(atom)}")
    parts.append("\n".join(out_lines))
    return "\n\n".join(parts)

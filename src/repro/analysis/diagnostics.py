"""Diagnostics shared by the static-analysis passes.

Every pass reports its findings as :class:`Diagnostic` records collected in
a :class:`Report`.  A diagnostic pinpoints the *program* (fragment, prep,
combine, ...), the instruction index inside it, and an actionable message;
severity separates hard contract violations (``error``) from hygiene
findings like dead slots (``warning``).

Source-level passes (the ``repro check`` concurrency lint) additionally
anchor findings to a ``file:line`` so editors and CI annotations can jump
straight to the offending statement, and carry a short ``code`` (e.g.
``unguarded-read``, ``lock-cycle``) that groups findings of one kind.
``Report.to_json`` serializes everything for ``--format json`` CI artifact
upload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

SEV_ERROR = "error"
SEV_WARNING = "warning"
SEV_INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass."""

    severity: str  # SEV_ERROR | SEV_WARNING | SEV_INFO
    where: str  # program name ("fragment", "combine", ...) or "plan"
    message: str
    instr: Optional[int] = None  # instruction index inside the program
    #: Source anchor (``repro check`` findings): path and 1-based line.
    file: Optional[str] = None
    line: Optional[int] = None
    #: Stable finding-kind slug (``unguarded-read``, ``lock-cycle``, ...).
    code: Optional[str] = None

    def render(self) -> str:
        location = self.where if self.instr is None else f"{self.where}[{self.instr}]"
        anchor = ""
        if self.file is not None:
            anchor = self.file if self.line is None else f"{self.file}:{self.line}"
            anchor += ": "
        tag = f" [{self.code}]" if self.code else ""
        return f"{anchor}{self.severity}: {location}: {self.message}{tag}"

    def to_json(self) -> dict[str, Any]:
        return {
            "severity": self.severity,
            "where": self.where,
            "message": self.message,
            "instr": self.instr,
            "file": self.file,
            "line": self.line,
            "code": self.code,
        }


@dataclass
class Report:
    """Accumulated findings of one or more passes over one plan/program."""

    subject: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def error(
        self,
        where: str,
        message: str,
        instr: Optional[int] = None,
        file: Optional[str] = None,
        line: Optional[int] = None,
        code: Optional[str] = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic(SEV_ERROR, where, message, instr, file, line, code)
        )

    def warning(
        self,
        where: str,
        message: str,
        instr: Optional[int] = None,
        file: Optional[str] = None,
        line: Optional[int] = None,
        code: Optional[str] = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic(SEV_WARNING, where, message, instr, file, line, code)
        )

    def info(
        self,
        where: str,
        message: str,
        instr: Optional[int] = None,
        file: Optional[str] = None,
        line: Optional[int] = None,
        code: Optional[str] = None,
    ) -> None:
        """A neutral note: behaviour worth knowing, nothing to fix
        (e.g. ``spilled-landmark`` — state is bounded, but on disk)."""
        self.diagnostics.append(
            Diagnostic(SEV_INFO, where, message, instr, file, line, code)
        )

    def extend(self, other: "Report") -> None:
        self.diagnostics.extend(other.diagnostics)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == SEV_ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == SEV_WARNING]

    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == SEV_INFO]

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings are allowed)."""
        return not self.errors()

    def render(self, include_warnings: bool = True) -> str:
        shown: Iterable[Diagnostic] = (
            self.diagnostics if include_warnings else self.errors()
        )
        lines = [d.render() for d in shown]
        if self.subject:
            lines = [f"-- {self.subject}"] + [f"  {line}" for line in lines]
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }

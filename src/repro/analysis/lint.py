"""The ``repro lint`` driver: verify rewritten plans of real queries.

Three query sources feed the verifier:

* explicit ``--sql`` plus ``--stream``/``--table`` schema declarations;
* Python files/directories (``examples/``): a conservative AST harvest
  finds ``create_stream`` / ``create_table`` / ``submit`` calls and
  resolves their literal (and f-string) arguments without executing the
  example;
* ``benchmarks/``: the shared ``conftest.py`` is imported and its
  ``fresh_engine`` / ``q*_sql`` builders are invoked with representative
  parameters, so the exact SQL the figure benchmarks submit is linted.

Each query is planned, optimized, rewritten and statically verified
(:mod:`repro.analysis.plan_verifier`); CI fails on any error diagnostic.
"""

from __future__ import annotations

import argparse
import ast
import importlib.util
import inspect
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.analysis.diagnostics import Report
from repro.analysis.plan_verifier import SchemaMap, verify_plan
from repro.analysis.pretty import dump_plan
from repro.core.engine import DataCellEngine
from repro.core.rewriter import rewrite
from repro.errors import CatalogError, ReproError, UnsupportedQueryError
from repro.sql.logical import find_scans
from repro.sql.optimizer import optimize
from repro.sql.planner import plan_query

#: representative parameters for benchmark query builders (``q1_sql(window,
#: step, threshold)`` & co.); ratios match the scaled-down figure runs.
_BENCH_PARAM_DEFAULTS = {"window": 1024, "step": 128, "threshold": 50}
_BENCH_PARAM_FALLBACK = 64


def schemas_for(engine: DataCellEngine, planned) -> SchemaMap:
    """Alias → column → atom map for every scan of a planned query."""
    schemas: dict[str, dict[str, object]] = {}
    for scan in find_scans(planned.plan):
        if scan.is_stream:
            schema = engine.catalog.stream(scan.relation).schema
        else:
            schema = engine.catalog.table(scan.relation).schema
        schemas[scan.alias] = {name: atom for name, atom in schema.columns}
    return schemas  # type: ignore[return-value]


def lint_sql(
    engine: DataCellEngine, sql: str, subject: str = "query"
) -> tuple[Report, Optional[str]]:
    """Rewrite + verify one query; returns ``(report, dump-or-None)``.

    Non-rewritable queries (re-evaluation fallback) produce a warning, not
    an error — the engine would accept them in ``reeval`` mode.
    """
    report = Report(subject=subject)
    try:
        planned = optimize(plan_query(sql, engine.catalog))
    except ReproError as exc:
        report.error("plan", f"query does not plan: {exc}")
        return report, None
    schemas = schemas_for(engine, planned)
    try:
        plan = rewrite(planned)
    except UnsupportedQueryError as exc:
        report.warning(
            "plan", f"not rewritable (re-evaluation fallback): {exc}"
        )
        return report, None
    report.extend(verify_plan(plan, schemas))
    return report, dump_plan(plan, schemas)


def resource_report_for(engine: DataCellEngine, sql: str, subject: str = "query"):
    """Rewrite one query and compute its static state bounds.

    Returns a :class:`repro.analysis.resources.ResourceReport`, or None
    for queries that do not plan or are not rewritable (those already
    produce their own lint diagnostics).
    """
    from repro.analysis.resources import analyze_resources

    try:
        plan = rewrite(optimize(plan_query(sql, engine.catalog)))
    except ReproError:
        return None
    return analyze_resources(
        plan,
        engine._stream_limits,
        subject=subject,
        landmark_spill_mb=getattr(engine, "landmark_spill_mb", None),
    )


# ----------------------------------------------------------------------
# AST harvesting of example scripts
# ----------------------------------------------------------------------
@dataclass
class HarvestedQueries:
    """Schemas and continuous-query SQL found in one Python source file."""

    source: str
    streams: list[tuple[str, list[tuple[str, str]]]] = field(default_factory=list)
    tables: list[tuple[str, list[tuple[str, str]]]] = field(default_factory=list)
    queries: list[str] = field(default_factory=list)
    skipped: int = 0  # submit() calls whose SQL could not be resolved
    #: Statically-resolved ``DataCellEngine(landmark_spill_mb=...)`` knob,
    #: so the resource analyzer judges the file's landmark queries under
    #: the memory regime the file actually runs them with.
    landmark_spill_mb: Optional[float] = None


class _Unresolved(Exception):
    """A harvested expression is not statically resolvable."""


class _Harvester(ast.NodeVisitor):
    """Best-effort constant evaluator over one module, in source order.

    Assignments of literal-ish expressions (constants, arithmetic,
    f-strings over already-known names) are tracked in a single flat
    namespace — good enough to resolve the SQL strings the examples build,
    while anything dynamic is skipped rather than executed.
    """

    def __init__(self, source: str) -> None:
        self.result = HarvestedQueries(source)
        self._names: dict[str, object] = {}

    # -- expression evaluation ----------------------------------------
    def _eval(self, node: ast.AST) -> object:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in self._names:
                return self._names[node.id]
            raise _Unresolved(node.id)
        if isinstance(node, (ast.List, ast.Tuple)):
            return [self._eval(item) for item in node.elts]
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            value = self._eval(node.operand)
            if isinstance(value, (int, float)):
                return -value
            raise _Unresolved("unary minus")
        if isinstance(node, ast.BinOp):
            left, right = self._eval(node.left), self._eval(node.right)
            ops = {
                ast.Add: lambda a, b: a + b,
                ast.Sub: lambda a, b: a - b,
                ast.Mult: lambda a, b: a * b,
                ast.FloorDiv: lambda a, b: a // b,
                ast.Div: lambda a, b: a / b,
                ast.Mod: lambda a, b: a % b,
            }
            fn = ops.get(type(node.op))
            if fn is None:
                raise _Unresolved(type(node.op).__name__)
            return fn(left, right)
        if isinstance(node, ast.JoinedStr):
            parts = []
            for value in node.values:
                if isinstance(value, ast.Constant):
                    parts.append(str(value.value))
                elif isinstance(value, ast.FormattedValue):
                    spec = ""
                    if value.format_spec is not None:
                        spec = str(self._eval(value.format_spec))
                    parts.append(format(self._eval(value.value), spec))
                else:  # pragma: no cover - defensive
                    raise _Unresolved("f-string part")
            return "".join(parts)
        raise _Unresolved(type(node).__name__)

    # -- statement visitors -------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            try:
                self._names[node.targets[0].id] = self._eval(node.value)
            except _Unresolved:
                self._names.pop(node.targets[0].id, None)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        callee = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if callee == "DataCellEngine":
            for keyword in node.keywords:
                if keyword.arg != "landmark_spill_mb":
                    continue
                try:
                    value = self._eval(keyword.value)
                except _Unresolved:
                    continue
                if isinstance(value, (int, float)) and value > 0:
                    self.result.landmark_spill_mb = float(value)
        if isinstance(func, ast.Attribute) and node.args:
            if func.attr in ("create_stream", "create_table") and len(node.args) >= 2:
                try:
                    name = self._eval(node.args[0])
                    columns = [
                        (str(col), str(atom))
                        for col, atom in self._eval(node.args[1])
                    ]
                except (_Unresolved, TypeError, ValueError):
                    pass
                else:
                    target = (
                        self.result.streams
                        if func.attr == "create_stream"
                        else self.result.tables
                    )
                    target.append((str(name), columns))
            elif func.attr == "submit":
                try:
                    sql = self._eval(node.args[0])
                except _Unresolved:
                    self.result.skipped += 1
                else:
                    if isinstance(sql, str) and sql not in self.result.queries:
                        self.result.queries.append(sql)
        self.generic_visit(node)


def harvest_python_file(path: Path) -> HarvestedQueries:
    """Statically harvest schemas and submitted SQL from one Python file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    harvester = _Harvester(str(path))
    harvester.visit(tree)
    return harvester.result


def _engine_for(harvest: HarvestedQueries) -> DataCellEngine:
    engine = DataCellEngine(landmark_spill_mb=harvest.landmark_spill_mb)
    for name, columns in harvest.streams:
        try:
            engine.create_stream(name, columns)
        except (CatalogError, ReproError):
            pass  # duplicate declarations across engines in one script
    for name, columns in harvest.tables:
        try:
            engine.create_table(name, columns)
        except (CatalogError, ReproError):
            pass
    return engine


# ----------------------------------------------------------------------
# benchmark harvesting (dynamic: conftest query builders)
# ----------------------------------------------------------------------
def harvest_benchmarks(directory: Path) -> Optional[tuple[DataCellEngine, list[str]]]:
    """Import ``conftest.py`` and collect its ``q*_sql`` builder outputs."""
    conftest = directory / "conftest.py"
    if not conftest.is_file():
        return None
    spec = importlib.util.spec_from_file_location("repro_lint_bench_conftest", conftest)
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        return None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    factory = getattr(module, "fresh_engine", None)
    engine = factory() if callable(factory) else DataCellEngine()
    queries: list[str] = []
    for name in sorted(vars(module)):
        if not re.fullmatch(r"q\d+_sql", name):
            continue
        builder = getattr(module, name)
        try:
            params = inspect.signature(builder).parameters
            args = [
                _BENCH_PARAM_DEFAULTS.get(param, _BENCH_PARAM_FALLBACK)
                for param in params
            ]
            sql = builder(*args)
        except Exception:
            continue
        if isinstance(sql, str):
            queries.append(sql)
    return engine, queries


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------
def _collect_targets(paths: list[str]) -> list[tuple[DataCellEngine, str, str]]:
    """Expand CLI paths into ``(engine, subject, sql)`` lint units."""
    units: list[tuple[DataCellEngine, str, str]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            bench = harvest_benchmarks(path)
            if bench is not None:
                engine, queries = bench
                for sql in queries:
                    units.append((engine, f"{path}/conftest.py", sql))
            for file in sorted(path.glob("*.py")):
                if file.name == "conftest.py" and bench is not None:
                    continue
                harvest = harvest_python_file(file)
                engine = _engine_for(harvest)
                for sql in harvest.queries:
                    units.append((engine, str(file), sql))
        elif path.is_file():
            harvest = harvest_python_file(path)
            engine = _engine_for(harvest)
            for sql in harvest.queries:
                units.append((engine, str(path), sql))
        else:
            raise FileNotFoundError(f"lint target {raw!r} does not exist")
    return units


def run_lint_cli(argv: list[str], out=None) -> int:
    """``repro lint`` entry point; returns a process exit code."""
    import sys

    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="statically verify the rewritten plans of continuous queries",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="Python files or directories to harvest queries from "
        "(default: examples/ and benchmarks/ when present)",
    )
    parser.add_argument("--sql", action="append", default=[], help="lint one SQL query")
    parser.add_argument(
        "--stream",
        action="append",
        default=[],
        metavar="NAME(COL TYPE,...)",
        help="declare a stream schema for --sql",
    )
    parser.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME(COL TYPE,...)",
        help="declare a table schema for --sql",
    )
    parser.add_argument(
        "--fuzz",
        type=int,
        default=0,
        metavar="N",
        help="also lint N randomly generated continuous queries "
        "(the repro fuzz generator as a free verifier corpus)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="generator seed for --fuzz (default 0)",
    )
    parser.add_argument(
        "--dump",
        action="store_true",
        help="print the typed program dump of every verified plan",
    )
    parser.add_argument(
        "--resources",
        action="store_true",
        help="also run the resource-bound analyzer and print per-query "
        "worst-case state bounds (unbounded landmark state, capacity "
        "mismatches, join fan-out)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress warnings, print errors only"
    )
    args = parser.parse_args(argv)

    units: list[tuple[DataCellEngine, str, str]] = []
    if args.sql:
        from repro.cli import _parse_schema

        engine = DataCellEngine()
        try:
            for declaration in args.stream:
                name, columns = _parse_schema(declaration)
                engine.create_stream(name, columns)
            for declaration in args.table:
                name, columns = _parse_schema(declaration)
                engine.create_table(name, columns)
        except ReproError as exc:
            print(f"repro lint: {exc}", file=out)
            return 2
        units += [(engine, "--sql", sql) for sql in args.sql]

    if args.fuzz:
        import numpy as np

        from repro.testing.fuzz.generator import TAXONOMY, QueryGenerator, build_engine

        for i in range(args.fuzz):
            generator = QueryGenerator(np.random.default_rng([args.seed, i]))
            try:
                query = generator.query(TAXONOMY[i % len(TAXONOMY)])
            except ReproError:
                continue
            units.append((build_engine(query), f"--fuzz[{i}]", query.sql))

    paths = list(args.paths)
    if not paths and not args.sql and not args.fuzz:
        paths = [p for p in ("examples", "benchmarks") if Path(p).is_dir()]
        if not paths:
            print("repro lint: nothing to lint (no examples/ or benchmarks/)", file=out)
            return 2
    try:
        units += _collect_targets(paths)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=out)
        return 2

    failures = 0
    for engine, subject, sql in units:
        report, dump = lint_sql(engine, sql, subject=subject)
        resources = None
        if args.resources:
            resources = resource_report_for(engine, sql, subject=subject)
            if resources is not None:
                report.extend(resources.report)
        label = " ".join(sql.split())
        if len(label) > 88:
            label = label[:85] + "..."
        if report.ok:
            status = "ok" if not report.warnings() else "ok (warnings)"
            print(f"{status}: {subject}: {label}", file=out)
        else:
            failures += 1
            print(f"FAIL: {subject}: {label}", file=out)
        shown = report.errors() if args.quiet else report.diagnostics
        for diagnostic in shown:
            print(f"    {diagnostic.render()}", file=out)
        if resources is not None:
            print(f"    state bound: {resources.total_state.render()}", file=out)
            if args.dump:
                print(resources.render_table(), file=out)
        if args.dump and dump is not None:
            print(dump, file=out)
            print(file=out)
    total = len(units)
    print(
        f"repro lint: {total} quer{'y' if total == 1 else 'ies'} checked, "
        f"{failures} failed",
        file=out,
    )
    return 1 if failures else 0

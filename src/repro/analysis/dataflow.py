"""Dataflow analysis over straight-line MAL-like programs.

The checks formalize the discipline the rewriter and the interpreter rely
on but never enforced statically:

* **def-before-use** — every slot reference is preceded by its definition
  (a program input or an earlier instruction's output);
* **single assignment** — no slot is written twice and no input is
  shadowed; the rewriter rearranges programs symbolically, which is only
  sound when a slot names exactly one value;
* **output contract** — every declared output is defined, declared inputs
  are unique;
* **liveness** — unused inputs, unused slots and dead instructions are
  reported as warnings, and :func:`dead_instructions` powers the
  optimizer's dead-code cleanup pass (all opcodes are pure, so an
  instruction none of whose outputs is transitively needed can go).
"""

from __future__ import annotations

from repro.analysis.diagnostics import Report
from repro.kernel.execution.program import Instr, Program, Ref


def _refs(instr: Instr) -> list[str]:
    return [arg.name for arg in instr.args if isinstance(arg, Ref)]


def analyze_dataflow(program: Program, where: str = "program") -> Report:
    """Run every dataflow check over ``program``; returns a report."""
    report = Report(subject=where)

    # -- input/output declarations ------------------------------------
    seen_inputs: set[str] = set()
    for name in program.inputs:
        if name in seen_inputs:
            report.error(where, f"input slot {name!r} declared twice")
        seen_inputs.add(name)

    # -- def-before-use and single assignment -------------------------
    defined: dict[str, int | None] = {name: None for name in seen_inputs}
    for index, instr in enumerate(program.instructions):
        for name in _refs(instr):
            if name not in defined:
                report.error(
                    where,
                    f"{instr.opcode} reads slot {name!r} before any definition",
                    instr=index,
                )
        seen_outs: set[str] = set()
        for out in instr.outs:
            if out in seen_outs:
                report.error(
                    where,
                    f"{instr.opcode} lists output slot {out!r} twice",
                    instr=index,
                )
            seen_outs.add(out)
            if out in defined:
                if defined[out] is None:
                    report.error(
                        where,
                        f"{instr.opcode} overwrites program input {out!r} "
                        "(inputs are immutable)",
                        instr=index,
                    )
                else:
                    report.error(
                        where,
                        f"slot {out!r} assigned twice (first at instruction "
                        f"{defined[out]}); programs are single-assignment",
                        instr=index,
                    )
            else:
                defined[out] = index

    for out in program.outputs:
        if out not in defined:
            report.error(where, f"declared output {out!r} is never defined")

    # -- liveness -----------------------------------------------------
    read: set[str] = set()
    for instr in program.instructions:
        read.update(_refs(instr))
    outputs = set(program.outputs)
    for name in program.inputs:
        if name not in read and name not in outputs:
            report.warning(where, f"input slot {name!r} is never read")
    for index in dead_instructions(program):
        instr = program.instructions[index]
        report.warning(
            where,
            f"dead instruction: {instr.opcode} defines "
            f"{', '.join(repr(o) for o in instr.outs)} but nothing uses it",
            instr=index,
        )
    return report


def dead_instructions(program: Program, keep: frozenset[str] = frozenset()) -> list[int]:
    """Indices of instructions whose outputs are all transitively unused.

    ``keep`` adds extra slots to treat as live roots besides the program's
    declared outputs.  Relies on every opcode being a pure function of its
    operands (the interpreter's contract), so removal never changes the
    observable outputs.
    """
    live: set[str] = set(program.outputs) | set(keep)
    dead: list[int] = []
    for index in range(len(program.instructions) - 1, -1, -1):
        instr = program.instructions[index]
        if any(out in live for out in instr.outs):
            live.update(_refs(instr))
        else:
            dead.append(index)
    dead.reverse()
    return dead


def eliminate_dead_instructions(
    program: Program, keep: frozenset[str] = frozenset()
) -> int:
    """Drop dead instructions from ``program`` in place; returns the count."""
    dead = dead_instructions(program, keep)
    if dead:
        doomed = set(dead)
        program.instructions = [
            instr
            for index, instr in enumerate(program.instructions)
            if index not in doomed
        ]
    return len(dead)

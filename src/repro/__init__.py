"""repro — a reproduction of "Enhanced Stream Processing in a DBMS Kernel"
(Liarou, Idreos, Manegold, Kersten; EDBT 2013).

DataCell: a stream engine built *on top of* a column-store DBMS kernel,
with incremental window processing realized entirely at the query-plan
level.  See README.md for a tour and DESIGN.md for the architecture.

Public entry points:

* :class:`repro.DataCellEngine` — the engine facade (streams, tables,
  continuous queries, feeding, scheduling);
* :class:`repro.WindowSpec` — window specifications;
* :mod:`repro.kernel` — the column-store substrate;
* :mod:`repro.dsms` — the specialized tuple-at-a-time comparator engine
  ("SystemX" stand-in);
* :mod:`repro.workloads` — synthetic stream generators for the paper's
  experiments.
"""

from repro.core import (
    AdaptiveChunker,
    Basket,
    Block,
    ContinuousQuery,
    DataCellEngine,
    Fail,
    IncrementalFactory,
    OverflowPolicy,
    ReevalFactory,
    ResultBatch,
    RetryingEmitter,
    Sample,
    Scheduler,
    ShedNewest,
    ShedOldest,
    WindowSpec,
)
from repro.errors import ReproError

__version__ = "0.1.0"

__all__ = [
    "AdaptiveChunker",
    "Basket",
    "Block",
    "ContinuousQuery",
    "DataCellEngine",
    "Fail",
    "IncrementalFactory",
    "OverflowPolicy",
    "ReevalFactory",
    "ReproError",
    "ResultBatch",
    "RetryingEmitter",
    "Sample",
    "Scheduler",
    "ShedNewest",
    "ShedOldest",
    "WindowSpec",
    "__version__",
]

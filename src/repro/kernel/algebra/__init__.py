"""Columnar algebra operators of the kernel.

Submodules group the operator families (MonetDB module naming):

* :mod:`repro.kernel.algebra.select` — range/theta selections, candidates
* :mod:`repro.kernel.algebra.project` — projections (late reconstruction)
* :mod:`repro.kernel.algebra.join` — equi/semi/anti joins
* :mod:`repro.kernel.algebra.group` — grouping and distinct
* :mod:`repro.kernel.algebra.aggregate` — global and grouped aggregates
* :mod:`repro.kernel.algebra.sort` — ordering and top-N
* :mod:`repro.kernel.algebra.setops` — concat/pack, slices, unique
* :mod:`repro.kernel.algebra.calc` — scalar/vector calculator

The package re-exports every operator *except* the four whose name
collides with its submodule (``group.group``, ``join.join``,
``select.select``, ``sort.sort``).  Those are reached through their
submodule — ``from repro.kernel.algebra import join; join.join(l, r)`` —
so ``from repro.kernel.algebra import group, join, select, sort`` always
yields the submodules, never a shadowing function, and the interpreter
and compiler can import them without :mod:`importlib` workarounds.
"""

from repro.kernel.algebra import (
    aggregate,
    calc,
    group,
    join,
    project,
    select,
    setops,
    sort,
)
from repro.kernel.algebra.aggregate import (
    subavg,
    subcount,
    submax,
    submin,
    subsum,
    total_avg,
    total_count,
    total_max,
    total_min,
    total_sum,
)
from repro.kernel.algebra.calc import arith, compare, divide
from repro.kernel.algebra.group import Grouping, distinct, group_values
from repro.kernel.algebra.join import antijoin, semijoin
from repro.kernel.algebra.project import head_oids, materialize, projection
from repro.kernel.algebra.select import mask_select, thetaselect
from repro.kernel.algebra.setops import append, concat, slice_bat, unique
from repro.kernel.algebra.sort import firstn, sort_refine

__all__ = [
    "Grouping",
    "aggregate",
    "antijoin",
    "append",
    "arith",
    "calc",
    "compare",
    "concat",
    "distinct",
    "divide",
    "firstn",
    "group",
    "group_values",
    "head_oids",
    "join",
    "mask_select",
    "materialize",
    "project",
    "projection",
    "select",
    "semijoin",
    "setops",
    "slice_bat",
    "sort",
    "sort_refine",
    "subavg",
    "subcount",
    "submax",
    "submin",
    "subsum",
    "thetaselect",
    "total_avg",
    "total_count",
    "total_max",
    "total_min",
    "total_sum",
    "unique",
]

"""Join operators.

The kernel implements a vectorized equi-join: the right side is sorted once,
then every left value locates its run of matches by binary search and the
(left, right) oid pairs are expanded with ``np.repeat`` arithmetic — the
numpy equivalent of a hash join's build/probe with full many-to-many output.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TypeMismatchError
from repro.kernel.atoms import Atom, is_numeric
from repro.kernel.bat import BAT


def _match_pairs(left: np.ndarray, right: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """All (left_pos, right_pos) pairs with equal values."""
    if len(left) == 0 or len(right) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(right, kind="stable")
    sorted_right = right[order]
    lo = np.searchsorted(sorted_right, left, side="left")
    hi = np.searchsorted(sorted_right, left, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_pos = np.repeat(np.arange(len(left), dtype=np.int64), counts)
    # For left row i, its matches live at sorted positions lo[i] .. hi[i)-1.
    starts = np.repeat(counts.cumsum() - counts, counts)
    within = np.arange(total, dtype=np.int64) - starts
    right_sorted_pos = np.repeat(lo, counts) + within
    right_pos = order[right_sorted_pos]
    return left_pos, right_pos


def join(left: BAT, right: BAT) -> tuple[BAT, BAT]:
    """Inner equi-join on tail values.

    Returns two head-aligned OID BATs ``(loids, roids)``: row ``k`` of the
    result pairs left oid ``loids[k]`` with right oid ``roids[k]``.
    """
    if left.atom != right.atom and not (is_numeric(left.atom) and is_numeric(right.atom)):
        raise TypeMismatchError(f"join atoms differ: {left.atom} vs {right.atom}")
    left_pos, right_pos = _match_pairs(left.tail, right.tail)
    loids = BAT(left_pos + left.hseq, Atom.OID)
    roids = BAT(right_pos + right.hseq, Atom.OID)
    return loids, roids


def semijoin(left: BAT, right: BAT) -> BAT:
    """Left oids having at least one match on the right (EXISTS)."""
    if len(left) == 0 or len(right) == 0:
        return BAT.empty(Atom.OID)
    mask = np.isin(left.tail, right.tail)
    return BAT(np.flatnonzero(mask).astype(np.int64) + left.hseq, Atom.OID)


def antijoin(left: BAT, right: BAT) -> BAT:
    """Left oids having no match on the right (NOT EXISTS)."""
    if len(left) == 0:
        return BAT.empty(Atom.OID)
    if len(right) == 0:
        return BAT(np.arange(left.hseq, left.hseq + len(left), dtype=np.int64), Atom.OID)
    mask = ~np.isin(left.tail, right.tail)
    return BAT(np.flatnonzero(mask).astype(np.int64) + left.hseq, Atom.OID)

"""Grouping operators.

``group`` maps each row of one or more head-aligned key columns to a dense
group id, and reports one representative oid per group ("extents" in
MonetDB terms).  Group ids are dense ``0..ngroups-1`` and deterministic:
groups are numbered in ascending key order, which makes partial-result
merging and test assertions stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AlignmentError, KernelError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT, require_aligned


@dataclass(frozen=True)
class Grouping:
    """Result of a group-by over head-aligned key columns.

    Attributes
    ----------
    gids:
        INT BAT aligned with the inputs; row i holds the group id of row i.
    extents:
        OID BAT with one representative head oid per group, in group order.
    ngroups:
        Number of distinct groups.
    """

    gids: BAT
    extents: BAT
    ngroups: int


def _factorize(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (codes, first_positions) with codes dense in value order."""
    uniques, first, inverse = np.unique(values, return_index=True, return_inverse=True)
    del uniques
    return inverse.astype(np.int64), first.astype(np.int64)


def group(keys: Sequence[BAT]) -> Grouping:
    """Group rows by the combined value of one or more key columns."""
    if not keys:
        raise KernelError("group needs at least one key column")
    base = keys[0]
    for key in keys[1:]:
        require_aligned(base, key)
    codes, first = _factorize(base.tail)
    for key in keys[1:]:
        key_codes, __ = _factorize(key.tail)
        # Re-factorize the (prev, key) pair into fresh dense codes.
        width = int(key_codes.max()) + 1 if len(key_codes) else 1
        combined = codes * width + key_codes
        codes, first = _factorize(combined)
    ngroups = int(codes.max()) + 1 if len(codes) else 0
    gids = BAT(codes, Atom.INT, base.hseq)
    extents = BAT(first + base.hseq, Atom.OID)
    return Grouping(gids, extents, ngroups)


def group_values(grouping: Grouping, key: BAT) -> BAT:
    """Materialize the per-group key values, in group order."""
    positions = key.positions_of(grouping.extents.tail)
    return BAT(key.tail[positions], key.atom)


def distinct(b: BAT) -> BAT:
    """Distinct tail values, ascending (SQL DISTINCT on a single column)."""
    return BAT(np.unique(b.tail), b.atom)


def check_aligned_with_gids(grouping: Grouping, values: BAT) -> None:
    """Assert a value column is aligned with the grouping's input rows."""
    if grouping.gids.hseq != values.hseq or len(grouping.gids) != len(values):
        raise AlignmentError("value column not aligned with grouping input")

"""Aggregation operators: global scalars and grouped ("sub") variants.

Global aggregates return Python/numpy scalars (``None`` for the empty-input
cases where SQL mandates NULL).  Grouped variants take a value column plus
the group-id column from :mod:`repro.kernel.algebra.group` and return one
row per group, in group order, using ``np.add.at``-style scatter reductions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError, TypeMismatchError
from repro.kernel.atoms import Atom, is_numeric
from repro.kernel.bat import BAT


def _require_numeric(b: BAT, op: str) -> None:
    if not is_numeric(b.atom):
        raise TypeMismatchError(f"{op} needs a numeric column, got {b.atom}")


# ----------------------------------------------------------------------
# global aggregates
# ----------------------------------------------------------------------
def total_sum(b: BAT):
    """SUM over the whole column; None on empty input (SQL NULL)."""
    _require_numeric(b, "sum")
    if b.is_empty():
        return None
    result = b.tail.sum()
    return float(result) if b.atom == Atom.FLT else int(result)


def total_count(b: BAT) -> int:
    """COUNT(*) over the whole column."""
    return len(b)


def total_min(b: BAT):
    """MIN over the whole column; None on empty input."""
    if b.is_empty():
        return None
    result = b.tail.min()
    return result.item() if isinstance(result, np.generic) else result


def total_max(b: BAT):
    """MAX over the whole column; None on empty input."""
    if b.is_empty():
        return None
    result = b.tail.max()
    return result.item() if isinstance(result, np.generic) else result


def total_avg(b: BAT):
    """AVG over the whole column; None on empty input."""
    _require_numeric(b, "avg")
    if b.is_empty():
        return None
    return float(b.tail.mean())


# ----------------------------------------------------------------------
# grouped aggregates
# ----------------------------------------------------------------------
def _scatter_reduce(values: np.ndarray, gids: np.ndarray, ngroups: int, ufunc, init):
    out = np.full(ngroups, init, dtype=values.dtype if values.dtype.kind != "b" else np.int64)
    ufunc.at(out, gids, values)
    return out


def subsum(values: BAT, gids: BAT, ngroups: int) -> BAT:
    """Per-group SUM; groups with no rows get 0 (callers mask via subcount)."""
    _require_numeric(values, "subsum")
    if len(values) != len(gids):
        raise KernelError("subsum: values and gids must be aligned")
    out = np.zeros(ngroups, dtype=values.tail.dtype)
    np.add.at(out, gids.tail, values.tail)
    return BAT(out, values.atom)


def subcount(values: BAT, gids: BAT, ngroups: int) -> BAT:
    """Per-group COUNT."""
    if len(values) != len(gids):
        raise KernelError("subcount: values and gids must be aligned")
    out = np.bincount(gids.tail, minlength=ngroups).astype(np.int64)
    return BAT(out, Atom.INT)


def submin(values: BAT, gids: BAT, ngroups: int) -> BAT:
    """Per-group MIN (undefined for empty groups — callers mask)."""
    if len(values) != len(gids):
        raise KernelError("submin: values and gids must be aligned")
    if values.atom == Atom.STR:
        out = np.empty(ngroups, dtype=object)
        seen = np.zeros(ngroups, dtype=bool)
        for gid, value in zip(gids.tail, values.tail):
            if not seen[gid] or value < out[gid]:
                out[gid] = value
                seen[gid] = True
        return BAT(out, Atom.STR)
    if values.atom == Atom.FLT:
        init = np.inf
    else:
        init = np.iinfo(np.int64).max
    out = _scatter_reduce(values.tail, gids.tail, ngroups, np.minimum, init)
    return BAT(out, values.atom)


def submax(values: BAT, gids: BAT, ngroups: int) -> BAT:
    """Per-group MAX (undefined for empty groups — callers mask)."""
    if len(values) != len(gids):
        raise KernelError("submax: values and gids must be aligned")
    if values.atom == Atom.STR:
        out = np.empty(ngroups, dtype=object)
        seen = np.zeros(ngroups, dtype=bool)
        for gid, value in zip(gids.tail, values.tail):
            if not seen[gid] or value > out[gid]:
                out[gid] = value
                seen[gid] = True
        return BAT(out, Atom.STR)
    if values.atom == Atom.FLT:
        init = -np.inf
    else:
        init = np.iinfo(np.int64).min
    out = _scatter_reduce(values.tail, gids.tail, ngroups, np.maximum, init)
    return BAT(out, values.atom)


def subavg(values: BAT, gids: BAT, ngroups: int) -> BAT:
    """Per-group AVG as FLT (0-row groups yield NaN)."""
    sums = subsum(values, gids, ngroups).tail.astype(np.float64)
    counts = subcount(values, gids, ngroups).tail.astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = sums / counts
    return BAT(out, Atom.FLT)

"""Selection operators.

MonetDB-style selections consume a value BAT (plus an optional candidate
list) and produce a *candidate list*: an OID BAT holding the absolute head
oids of the qualifying rows, in head order.  Downstream operators use the
candidate list with :func:`repro.kernel.algebra.project.projection` to fetch
values from other head-aligned columns (late tuple reconstruction).
"""

from __future__ import annotations

import operator

import numpy as np

from repro.errors import KernelError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT

_THETA_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _positions_to_oids(b: BAT, positions: np.ndarray) -> BAT:
    return BAT(positions.astype(np.int64) + b.hseq, Atom.OID)


def select(
    b: BAT,
    low,
    high,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
    candidates: BAT | None = None,
) -> BAT:
    """Range selection ``low <op> b[i] <op> high`` returning qualifying oids.

    ``low`` / ``high`` may be ``None`` for an open bound.  When
    ``candidates`` is given, only rows whose oid appears in it are
    considered, and the result is a subset of it.
    """
    values = b.tail
    mask = np.ones(len(values), dtype=bool)
    if low is not None:
        mask &= values >= low if low_inclusive else values > low
    if high is not None:
        mask &= values <= high if high_inclusive else values < high
    if candidates is None:
        positions = np.flatnonzero(mask)
        return _positions_to_oids(b, positions)
    cand_positions = b.positions_of(candidates.tail)
    keep = mask[cand_positions]
    return BAT(candidates.tail[keep], Atom.OID)


def thetaselect(b: BAT, value, op: str, candidates: BAT | None = None) -> BAT:
    """Theta selection ``b[i] <op> value`` returning qualifying oids."""
    try:
        fn = _THETA_OPS[op]
    except KeyError:
        raise KernelError(f"unknown theta operator {op!r}") from None
    if b.atom == Atom.STR:
        # Object arrays: comparisons still vectorize via numpy ufuncs on
        # object dtype, but against a scalar they may return a scalar bool
        # for empty inputs; normalize.
        mask = np.asarray(fn(b.tail, value), dtype=bool).reshape(-1)
        if mask.shape[0] != len(b):
            mask = np.fromiter((fn(v, value) for v in b.tail), dtype=bool, count=len(b))
    else:
        mask = fn(b.tail, value)
    if candidates is None:
        return _positions_to_oids(b, np.flatnonzero(mask))
    cand_positions = b.positions_of(candidates.tail)
    keep = mask[cand_positions]
    return BAT(candidates.tail[keep], Atom.OID)


def mask_select(b: BAT, candidates: BAT | None = None) -> BAT:
    """Turn a BIT BAT into a candidate list of the true rows.

    Used after calc comparisons on computed expressions.
    """
    if b.atom != Atom.BIT:
        raise KernelError("mask_select expects a BIT BAT")
    if candidates is None:
        return _positions_to_oids(b, np.flatnonzero(b.tail))
    cand_positions = b.positions_of(candidates.tail)
    keep = b.tail[cand_positions]
    return BAT(candidates.tail[keep.astype(bool)], Atom.OID)


def intersect_candidates(left: BAT, right: BAT) -> BAT:
    """Intersection of two sorted candidate lists (AND of predicates)."""
    merged = np.intersect1d(left.tail, right.tail, assume_unique=True)
    return BAT(merged.astype(np.int64), Atom.OID)


def union_candidates(left: BAT, right: BAT) -> BAT:
    """Union of two sorted candidate lists (OR of predicates)."""
    merged = np.union1d(left.tail, right.tail)
    return BAT(merged.astype(np.int64), Atom.OID)


def difference_candidates(left: BAT, right: BAT) -> BAT:
    """Candidates in ``left`` but not in ``right`` (NOT / anti-select)."""
    merged = np.setdiff1d(left.tail, right.tail, assume_unique=True)
    return BAT(merged.astype(np.int64), Atom.OID)

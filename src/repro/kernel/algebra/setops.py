"""Set / materialization operators: concat (mat.pack), slice, unique.

``concat`` is DataCell's merge workhorse: partial results of basic windows
are packed into one column before compensation operators run (paper §3,
"Merging Intermediates").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import KernelError, TypeMismatchError
from repro.kernel.atoms import numpy_dtype
from repro.kernel.bat import BAT


def concat(parts: Sequence[BAT]) -> BAT:
    """Pack several BATs of the same atom into one fresh dense BAT.

    The result has ``hseq`` 0; alignment relationships between *different*
    flows survive as long as both flows are concatenated in the same part
    order, which the incremental merge program guarantees.
    """
    parts = [p for p in parts]
    if not parts:
        raise KernelError("concat needs at least one input")
    atom = parts[0].atom
    for part in parts[1:]:
        if part.atom != atom:
            raise TypeMismatchError(
                f"concat atom mismatch: {atom} vs {part.atom}"
            )
    tails = [p.tail for p in parts if len(p)]
    if not tails:
        return BAT.empty(atom)
    if len(tails) == 1:
        return BAT(tails[0].copy(), atom)
    return BAT(np.concatenate(tails), atom)


def slice_bat(b: BAT, start: int, stop: int) -> BAT:
    """Positional slice as an operator (window/basic-window views)."""
    return b.slice(start, stop)


def unique(b: BAT) -> BAT:
    """Distinct values, ascending."""
    return BAT(np.unique(b.tail), b.atom)


def append(base: BAT, extra: BAT) -> BAT:
    """Functional append: a new BAT holding base followed by extra."""
    if base.atom != extra.atom:
        raise TypeMismatchError(f"append atom mismatch: {base.atom} vs {extra.atom}")
    if base.is_empty():
        return BAT(extra.tail.copy(), extra.atom, base.hseq)
    out = np.empty(len(base) + len(extra), dtype=numpy_dtype(base.atom))
    out[: len(base)] = base.tail
    out[len(base):] = extra.tail
    return BAT(out, base.atom, base.hseq)

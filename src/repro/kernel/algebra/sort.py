"""Ordering operators: sort, order-permutation, top-N."""

from __future__ import annotations

import numpy as np

from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT


def sort(b: BAT, descending: bool = False) -> tuple[BAT, BAT]:
    """Stable sort of the tail values.

    Returns ``(sorted_values, order)`` where ``order`` is an OID BAT holding
    the original head oids in output order — projecting other aligned
    columns through ``order`` applies the same permutation (ORDER BY over a
    multi-column result).
    """
    order = np.argsort(b.tail, kind="stable")
    if descending:
        order = order[::-1].copy()
    values = BAT(b.tail[order], b.atom)
    oids = BAT(order.astype(np.int64) + b.hseq, Atom.OID)
    return values, oids


def sort_refine(order: BAT, b: BAT, descending: bool = False) -> BAT:
    """Refine an existing order by a further (lower-priority) key.

    Used for multi-key ORDER BY: sort by the last key first, then refine by
    earlier keys with a stable sort.
    """
    positions = b.positions_of(order.tail)
    key = b.tail[positions]
    refine = np.argsort(key, kind="stable")
    if descending:
        refine = refine[::-1].copy()
    return BAT(order.tail[refine], Atom.OID)


def firstn(b: BAT, n: int, descending: bool = False) -> BAT:
    """Oids of the first ``n`` rows in sort order (LIMIT after ORDER BY)."""
    __, order = sort(b, descending=descending)
    return BAT(order.tail[:n].copy(), Atom.OID)

"""Ordering operators: sort, order-permutation, top-N."""

from __future__ import annotations

import numpy as np

from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT


def _stable_argsort(values: np.ndarray, descending: bool) -> np.ndarray:
    """Stable permutation for either direction: ties keep input order.

    ``np.argsort(..., kind="stable")[::-1]`` is NOT a stable descending
    sort — the reversal also reverses ties, which silently breaks the
    multi-key ORDER BY composition in ``sort_refine`` (a DESC refine pass
    must preserve the within-tie order imposed by lower-priority keys).
    Descending instead sorts the reversed input and maps positions back,
    which keeps ties in original order for any comparable dtype.
    """
    if not descending:
        return np.argsort(values, kind="stable")
    n = len(values)
    return n - 1 - np.argsort(values[::-1], kind="stable")[::-1]


def sort(b: BAT, descending: bool = False) -> tuple[BAT, BAT]:
    """Stable sort of the tail values.

    Returns ``(sorted_values, order)`` where ``order`` is an OID BAT holding
    the original head oids in output order — projecting other aligned
    columns through ``order`` applies the same permutation (ORDER BY over a
    multi-column result).
    """
    order = _stable_argsort(b.tail, descending)
    values = BAT(b.tail[order], b.atom)
    oids = BAT(order.astype(np.int64) + b.hseq, Atom.OID)
    return values, oids


def sort_refine(order: BAT, b: BAT, descending: bool = False) -> BAT:
    """Refine an existing order by a further (lower-priority) key.

    Used for multi-key ORDER BY: sort by the last key first, then refine by
    earlier keys with a stable sort (both directions must be tie-stable).
    """
    positions = b.positions_of(order.tail)
    key = b.tail[positions]
    refine = _stable_argsort(key, descending)
    return BAT(order.tail[refine], Atom.OID)


def firstn(b: BAT, n: int, descending: bool = False) -> BAT:
    """Oids of the first ``n`` rows in sort order (LIMIT after ORDER BY)."""
    __, order = sort(b, descending=descending)
    return BAT(order.tail[:n].copy(), Atom.OID)

"""Projection (tuple reconstruction) operators.

``projection(cand, b)`` is MonetDB's positional fetch-join: for every oid in
the candidate list it fetches the tail value of ``b`` at that head position.
This is the late-reconstruction backbone — selections produce oid lists, and
projections materialize exactly the columns later operators need.
"""

from __future__ import annotations

import numpy as np

from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT


def projection(candidates: BAT, b: BAT) -> BAT:
    """Fetch ``b``'s tail values at the head oids listed in ``candidates``.

    The result is head-aligned with ``candidates`` (same hseq/count), so
    several projections through the same candidate list stay mutually
    aligned — the property group-by and calc operators rely on.
    """
    positions = b.positions_of(candidates.tail)
    return BAT(b.tail[positions], b.atom, candidates.hseq)


def materialize(b: BAT) -> BAT:
    """Copy a (possibly zero-copy view) BAT into its own storage.

    DataCell caches intermediates across window slides; a cached view over
    a basket buffer would alias storage the basket is about to compact, so
    partials are materialized before being stored.
    """
    return BAT(np.array(b.tail, copy=True), b.atom, b.hseq)


def head_oids(b: BAT) -> BAT:
    """The (virtual) head of ``b`` as an explicit OID BAT (MonetDB: mirror).

    The result is head-aligned with ``b`` (same hseq), so projecting a
    selection/join result through it recovers original oids.
    """
    return BAT(np.arange(b.hseq, b.hseq + len(b), dtype=np.int64), Atom.OID, b.hseq)

"""Scalar/vector calculator operators (MonetDB's ``batcalc`` module).

Binary operators accept any mix of BAT and scalar operands; BAT operands
must be head-aligned.  Comparisons yield BIT BATs that selections consume
via :func:`repro.kernel.algebra.select.mask_select`.
"""

from __future__ import annotations

import operator

import numpy as np

from repro.errors import KernelError, TypeMismatchError
from repro.kernel.atoms import Atom, division_result, promote
from repro.kernel.bat import BAT, require_aligned

_ARITH = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "%": operator.mod,
}

_COMPARE = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _operand_info(value):
    if isinstance(value, BAT):
        return value.tail, value.atom, value
    from repro.kernel.atoms import atom_of_python

    return value, atom_of_python(value), None


def _align(left, right) -> tuple:
    ltail, latom, lbat = _operand_info(left)
    rtail, ratom, rbat = _operand_info(right)
    if lbat is not None and rbat is not None:
        require_aligned(lbat, rbat)
    bat = lbat if lbat is not None else rbat
    if bat is None:
        raise KernelError("calc needs at least one BAT operand")
    return ltail, latom, rtail, ratom, bat.hseq


def arith(op: str, left, right) -> BAT:
    """Element-wise ``left <op> right`` for ``+ - * %``."""
    try:
        fn = _ARITH[op]
    except KeyError:
        raise KernelError(f"unknown arithmetic operator {op!r}") from None
    ltail, latom, rtail, ratom, hseq = _align(left, right)
    atom = promote(latom, ratom)
    result = fn(ltail, rtail)
    return BAT.from_array(np.asarray(result), atom, hseq)


def divide(left, right) -> BAT:
    """SQL division: always FLT, divide-by-zero yields NaN (NULL)."""
    ltail, latom, rtail, ratom, hseq = _align(left, right)
    atom = division_result(latom, ratom)
    denominator = np.asarray(rtail, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.asarray(ltail, dtype=np.float64) / denominator
    # SQL: x / 0 is NULL, represented in-band as NaN (never +/-inf).
    result = np.where(denominator == 0.0, np.nan, result)
    return BAT.from_array(np.atleast_1d(result), atom, hseq)


def compare(op: str, left, right) -> BAT:
    """Element-wise comparison producing a BIT BAT."""
    try:
        fn = _COMPARE[op]
    except KeyError:
        raise KernelError(f"unknown comparison operator {op!r}") from None
    ltail, latom, rtail, ratom, hseq = _align(left, right)
    if (latom == Atom.STR) != (ratom == Atom.STR):
        raise TypeMismatchError(f"cannot compare {latom} with {ratom}")
    result = np.asarray(fn(ltail, rtail), dtype=bool)
    return BAT(np.atleast_1d(result), Atom.BIT, hseq)


def logic_and(left: BAT, right: BAT) -> BAT:
    """Element-wise AND of two BIT BATs."""
    require_aligned(left, right)
    if left.atom != Atom.BIT or right.atom != Atom.BIT:
        raise TypeMismatchError("logic_and expects BIT BATs")
    return BAT(left.tail & right.tail, Atom.BIT, left.hseq)


def logic_or(left: BAT, right: BAT) -> BAT:
    """Element-wise OR of two BIT BATs."""
    require_aligned(left, right)
    if left.atom != Atom.BIT or right.atom != Atom.BIT:
        raise TypeMismatchError("logic_or expects BIT BATs")
    return BAT(left.tail | right.tail, Atom.BIT, left.hseq)


def logic_not(b: BAT) -> BAT:
    """Element-wise NOT of a BIT BAT."""
    if b.atom != Atom.BIT:
        raise TypeMismatchError("logic_not expects a BIT BAT")
    return BAT(~b.tail, Atom.BIT, b.hseq)


def negate(b: BAT) -> BAT:
    """Unary minus."""
    if b.atom not in (Atom.INT, Atom.FLT):
        raise TypeMismatchError(f"cannot negate {b.atom}")
    return BAT(-b.tail, b.atom, b.hseq)


def constant_column(value, atom: Atom, count: int, hseq: int = 0) -> BAT:
    """A column of ``count`` copies of ``value`` (literal projection)."""
    from repro.kernel.atoms import numpy_dtype

    if atom == Atom.STR:
        arr = np.empty(count, dtype=object)
        arr[:] = value
    else:
        arr = np.full(count, value, dtype=numpy_dtype(atom))
    return BAT(arr, atom, hseq)

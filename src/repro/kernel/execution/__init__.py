"""Operator-at-a-time execution: programs, interpreter, profiler."""

from repro.kernel.execution.interpreter import Interpreter, known_opcodes
from repro.kernel.execution.profiler import Profiler
from repro.kernel.execution.program import (
    TAG_ADMIN,
    TAG_MAIN,
    TAG_MERGE,
    Instr,
    Lit,
    Program,
    Ref,
    SlotNames,
)

__all__ = [
    "Instr",
    "Interpreter",
    "Lit",
    "Profiler",
    "Program",
    "Ref",
    "SlotNames",
    "TAG_ADMIN",
    "TAG_MAIN",
    "TAG_MERGE",
    "known_opcodes",
]

"""Program execution: interpreter, compiled backend, profiler."""

from repro.kernel.execution.backends import (
    BACKENDS,
    CompiledBackend,
    ExecutionBackend,
    InterpreterBackend,
    make_backend,
)
from repro.kernel.execution.compiled import (
    CompiledProgram,
    ProgramCompiler,
    compile_program,
)
from repro.kernel.execution.interpreter import (
    Interpreter,
    kernel_registry,
    known_opcodes,
)
from repro.kernel.execution.profiler import Profiler
from repro.kernel.execution.program import (
    TAG_ADMIN,
    TAG_MAIN,
    TAG_MERGE,
    Instr,
    Lit,
    Program,
    Ref,
    SlotNames,
)

__all__ = [
    "BACKENDS",
    "CompiledBackend",
    "CompiledProgram",
    "ExecutionBackend",
    "Instr",
    "Interpreter",
    "InterpreterBackend",
    "Lit",
    "Profiler",
    "Program",
    "ProgramCompiler",
    "Ref",
    "SlotNames",
    "TAG_ADMIN",
    "TAG_MAIN",
    "TAG_MERGE",
    "compile_program",
    "kernel_registry",
    "known_opcodes",
    "make_backend",
]

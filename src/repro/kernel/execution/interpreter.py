"""Interpreter for MAL-like programs.

Maps opcodes to the columnar algebra and evaluates a :class:`Program` over
an environment of named slots.  Results of multi-output opcodes (join,
group, sort) unpack positionally into the instruction's ``outs``.

The opcode surface is intentionally small and flat — the DataCell rewriter
manipulates programs symbolically, so every opcode must be a pure function
of its operands.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping

from repro.errors import ExecutionError, UnknownInstructionError
from repro.kernel.algebra import (
    aggregate,
    calc,
    group as group_mod,
    join as join_mod,
    project,
    select as select_mod,
    setops,
    sort as sort_mod,
)
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.kernel.execution.profiler import Profiler
from repro.kernel.execution.program import Instr, Lit, Program, Ref


def _sum_bat(b: BAT) -> BAT:
    """1-row BAT holding SUM(b); 0-row on empty input."""
    if b.is_empty():
        out_atom = b.atom if b.atom == Atom.FLT else Atom.INT
        return BAT.empty(out_atom)
    value = aggregate.total_sum(b)
    out_atom = Atom.FLT if b.atom == Atom.FLT else Atom.INT
    return BAT.from_values([value], out_atom)


def _count_bat(b: BAT) -> BAT:
    """1-row INT BAT holding COUNT(b) (0 is a valid value)."""
    return BAT.from_values([len(b)], Atom.INT)


def _min_bat(b: BAT) -> BAT:
    if b.is_empty():
        return BAT.empty(b.atom)
    return BAT.from_values([aggregate.total_min(b)], b.atom)


def _max_bat(b: BAT) -> BAT:
    if b.is_empty():
        return BAT.empty(b.atom)
    return BAT.from_values([aggregate.total_max(b)], b.atom)


def _avg_bat(b: BAT) -> BAT:
    if b.is_empty():
        return BAT.empty(Atom.FLT)
    return BAT.from_values([aggregate.total_avg(b)], Atom.FLT)


def _group(*keys: BAT):
    grouping = group_mod.group(list(keys))
    return grouping.gids, grouping.extents, grouping.ngroups


def _align_globals(*bats: BAT):
    """Global-aggregate row fixup: if any aggregate is empty, all are.

    Global aggregates follow the 1-row-BAT convention but MIN/SUM/AVG of an
    empty rowset produce 0 rows while COUNT produces ``[0]``; a query mixing
    them must emit a consistent (empty) row.
    """
    if any(b.is_empty() for b in bats):
        empties = tuple(BAT.empty(b.atom) for b in bats)
        return empties if len(empties) > 1 else empties[0]
    return bats if len(bats) > 1 else bats[0]


def _build_registry() -> dict[str, Callable]:
    registry: dict[str, Callable] = {
        # selections
        "algebra.select": select_mod.select,
        "algebra.thetaselect": select_mod.thetaselect,
        "algebra.mask_select": select_mod.mask_select,
        "cand.intersect": select_mod.intersect_candidates,
        "cand.union": select_mod.union_candidates,
        "cand.difference": select_mod.difference_candidates,
        # projection / reconstruction
        "algebra.projection": project.projection,
        "bat.mirror": project.head_oids,
        "bat.materialize": project.materialize,
        "bat.slice": setops.slice_bat,
        "bat.count": lambda b: len(b),
        "bat.id": lambda b: b,
        # joins
        "algebra.join": join_mod.join,
        "algebra.semijoin": join_mod.semijoin,
        "algebra.antijoin": join_mod.antijoin,
        # grouping
        "group.group": _group,
        "group.distinct": group_mod.distinct,
        # aggregates (scalar → 1-row-BAT convention, see DESIGN.md)
        "aggr.sum": _sum_bat,
        "aggr.count": _count_bat,
        "aggr.min": _min_bat,
        "aggr.max": _max_bat,
        "aggr.avg": _avg_bat,
        "aggr.subsum": aggregate.subsum,
        "aggr.subcount": aggregate.subcount,
        "aggr.submin": aggregate.submin,
        "aggr.submax": aggregate.submax,
        "aggr.subavg": aggregate.subavg,
        "aggr.align": _align_globals,
        # merge / materialization
        "mat.pack": lambda *parts: setops.concat(list(parts)),
        "bat.append": setops.append,
        "bat.unique": setops.unique,
        # ordering
        "algebra.sort": sort_mod.sort,
        "algebra.sortrefine": sort_mod.sort_refine,
        "algebra.firstn": sort_mod.firstn,
        # calculator
        "calc.div": calc.divide,
        "calc.and": calc.logic_and,
        "calc.or": calc.logic_or,
        "calc.not": calc.logic_not,
        "calc.neg": calc.negate,
        "calc.const": calc.constant_column,
    }
    for op in ("+", "-", "*", "%"):
        registry[f"calc.{op}"] = (lambda o: lambda left, right: calc.arith(o, left, right))(op)
    for op in ("==", "!=", "<", "<=", ">", ">="):
        registry[f"calc.{op}"] = (lambda o: lambda left, right: calc.compare(o, left, right))(op)
    registry["calc./"] = calc.divide
    return registry


_REGISTRY = _build_registry()


def known_opcodes() -> frozenset[str]:
    """All opcodes the interpreter implements (rewriter sanity checks)."""
    return frozenset(_REGISTRY)


def kernel_registry() -> Mapping[str, Callable]:
    """The built-in opcode → kernel-function table (read-only view).

    The compiled backend (:mod:`repro.kernel.execution.compiled`)
    specializes exactly this surface; sharing the table is what makes the
    ``known_opcodes()`` parity between the two backends structural rather
    than maintained by hand.
    """
    return _REGISTRY


class Interpreter:
    """Executes programs over a slot environment.

    A single interpreter instance is stateless between runs and safe to
    share; profiling is per-call via an explicit :class:`Profiler`.
    """

    def __init__(self, registry: Mapping[str, Callable] | None = None) -> None:
        self._registry = dict(registry) if registry is not None else _REGISTRY

    def run(
        self,
        program: Program,
        inputs: Mapping[str, object],
        profiler: Profiler | None = None,
    ) -> dict[str, object]:
        """Evaluate ``program`` and return its declared outputs.

        Raises :class:`ExecutionError` if an input slot is missing or an
        instruction fails; :class:`UnknownInstructionError` on unknown
        opcodes.
        """
        env: dict[str, object] = {}
        for name in program.inputs:
            if name not in inputs:
                raise ExecutionError(f"missing program input {name!r}")
            env[name] = inputs[name]
        for instr in program.instructions:
            self._step(instr, env, profiler)
        missing = [name for name in program.outputs if name not in env]
        if missing:
            raise ExecutionError(f"program outputs never produced: {missing}")
        return {name: env[name] for name in program.outputs}

    def _step(self, instr: Instr, env: dict, profiler: Profiler | None) -> None:
        fn = self._registry.get(instr.opcode)
        if fn is None:
            raise UnknownInstructionError(f"unknown opcode {instr.opcode!r}")
        args = []
        for operand in instr.args:
            if isinstance(operand, Ref):
                if operand.name not in env:
                    raise ExecutionError(
                        f"{instr.opcode}: slot {operand.name!r} is undefined"
                    )
                args.append(env[operand.name])
            elif isinstance(operand, Lit):
                args.append(operand.value)
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"bad operand {operand!r}")
        if profiler is None:
            # Unprofiled firings skip the two perf_counter() calls too.
            try:
                result = fn(*args)
            except Exception as exc:
                raise ExecutionError(f"{instr!r} failed: {exc}") from exc
        else:
            start = time.perf_counter()
            try:
                result = fn(*args)
            except Exception as exc:
                raise ExecutionError(f"{instr!r} failed: {exc}") from exc
            profiler.record(instr.tag, instr.opcode, time.perf_counter() - start)
        if len(instr.outs) == 1:
            env[instr.outs[0]] = result
        else:
            if not isinstance(result, tuple) or len(result) != len(instr.outs):
                raise ExecutionError(
                    f"{instr.opcode} returned {result!r}, expected "
                    f"{len(instr.outs)} outputs"
                )
            for name, value in zip(instr.outs, result):
                env[name] = value

"""MAL-like physical programs.

A :class:`Program` is a straight-line sequence of instructions over named
slots — the reproduction's analogue of a MonetDB MAL plan.  Operands are
either slot references (:class:`Ref`) or literals (:class:`Lit`).  Each
instruction carries a *tag* classifying it for the profiler: DataCell's
Figure 7 cost breakdown distinguishes ``main`` (original plan work) from
``merge`` (incremental bookkeeping: concat, compensation, transitions).

Programs are deliberately *data*, not closures: the DataCell rewriter builds
and rearranges them, the interpreter executes them, and tests can inspect
them instruction by instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

TAG_MAIN = "main"
TAG_MERGE = "merge"
TAG_ADMIN = "admin"


@dataclass(frozen=True)
class Ref:
    """Operand referring to a slot in the execution environment."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Lit:
    """Literal operand embedded in the program."""

    value: object

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.value)


Operand = Ref | Lit


@dataclass(frozen=True)
class Instr:
    """One instruction: ``outs := opcode(args)``."""

    opcode: str
    args: tuple[Operand, ...]
    outs: tuple[str, ...]
    tag: str = TAG_MAIN

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        outs = ", ".join(self.outs)
        args = ", ".join(repr(a) for a in self.args)
        return f"{outs} := {self.opcode}({args})  #{self.tag}"


@dataclass
class Program:
    """A straight-line instruction sequence with declared inputs/outputs."""

    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    instructions: list[Instr] = field(default_factory=list)

    def emit(
        self,
        opcode: str,
        args: Sequence[Operand],
        outs: Sequence[str],
        tag: str = TAG_MAIN,
    ) -> Instr:
        """Append an instruction and return it."""
        instr = Instr(opcode, tuple(args), tuple(outs), tag)
        self.instructions.append(instr)
        return instr

    def extend(self, other: "Program") -> None:
        """Splice another program's instructions onto this one."""
        self.instructions.extend(other.instructions)

    def slots_written(self) -> set[str]:
        return {out for instr in self.instructions for out in instr.outs}

    def slots_read(self) -> set[str]:
        return {
            arg.name
            for instr in self.instructions
            for arg in instr.args
            if isinstance(arg, Ref)
        }

    def validate(self) -> None:
        """Check def-before-use; raises ValueError on dangling refs."""
        defined = set(self.inputs)
        for instr in self.instructions:
            for arg in instr.args:
                if isinstance(arg, Ref) and arg.name not in defined:
                    raise ValueError(
                        f"instruction {instr!r} reads undefined slot {arg.name!r}"
                    )
            defined.update(instr.outs)
        for out in self.outputs:
            if out not in defined:
                raise ValueError(f"program output {out!r} is never defined")

    def pretty(self) -> str:
        """Human-readable listing (used by tests and EXPLAIN)."""
        lines = [f"-- inputs: {', '.join(self.inputs) or '(none)'}"]
        lines += [repr(instr) for instr in self.instructions]
        lines.append(f"-- outputs: {', '.join(self.outputs) or '(none)'}")
        return "\n".join(lines)


class SlotNames:
    """Generator of unique slot names (``t0, t1, ...`` with a prefix)."""

    def __init__(self, prefix: str = "t") -> None:
        self._prefix = prefix
        self._next = 0

    def fresh(self, hint: str = "") -> str:
        name = f"{self._prefix}{self._next}" + (f"_{hint}" if hint else "")
        self._next += 1
        return name

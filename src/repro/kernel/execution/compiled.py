"""Compiled execution backend: specialize a verified Program into one
fused Python callable.

The interpreter (:mod:`repro.kernel.execution.interpreter`) pays
per-instruction Python dispatch on every firing: a registry lookup, an
operand-unpacking loop, env dict writes, and two ``time.perf_counter()``
calls per opcode.  On top of that each calculator kernel re-discovers its
operand shapes (``calc._align``), re-derives the result atom, and
materializes an intermediate :class:`BAT` that the very next instruction
immediately unwraps.  :class:`ProgramCompiler` removes all of it by
*source-emitting* a single specialized function per program and
``exec``-ing it once at compile time:

* each opcode's kernel function is resolved **once** and bound into the
  emitted function's globals (``_f0``, ``_f1``, ...);
* :class:`~repro.kernel.execution.program.Lit` operands are pre-bound —
  inlined as Python literals when their repr round-trips, otherwise bound
  as named constants (``_c0``, ...);
* environment slots become numbered Python locals (``i0``/``v0``) instead
  of dict entries;
* single-consumer **calc instructions are fused at the tail level**:
  each chain value lives as three locals — raw numpy tail, atom, head
  sequence — and the operators are emitted as native numpy expressions
  (``_t1 = _t0 * 2``), so no intermediate :class:`BAT` is built and no
  kernel function is called for fused arithmetic.  Fusion follows the
  dataflow, not adjacency: a chain value stays unmaterialized across
  interleaved non-calc instructions (projections, appends) because all
  checks and compute are emitted at the producing instruction's original
  position — only the materialization is elided.  A value becomes a real
  BAT only where a multi-consumer slot, a program output, or a non-calc
  consumer needs one — and not at all when its sole consumer is an
  ``algebra.mask_select``, in which case the candidate list is built
  straight from the boolean tail.  Operand
  typing, atom promotion, and head-alignment checks are emitted
  instruction for instruction, specialized to what is known at compile
  time (literal operands contribute their atom statically; chain values
  are BATs by construction; other slots are decomposed once and checked
  dynamically);
* instructions whose operands are all literals are constant-folded at
  compile time (kernel functions are pure by the Program contract);
* per-instruction profiler timing is elided in favour of one span per
  maximal same-tag instruction run (recorded under the pseudo-opcode
  ``compiled.fused``), so the per-tag main/merge cost breakdown the
  benchmarks consume stays exact while the hot path pays one
  ``perf_counter`` pair per segment instead of per instruction.  When no
  profiler is passed at run time a separate timing-free variant runs.
  Compiling with ``profile=True`` preserves the interpreter's exact
  per-opcode timing (fusion and folding are disabled so ``by_opcode`` and
  ``calls`` match instruction for instruction).

Error semantics match the interpreter: a missing input raises
:class:`~repro.errors.ExecutionError` before anything runs, and when the
fused body fails the program is re-run through the interpreter so the
canonical per-instruction ``ExecutionError`` (with the failing
instruction's repr) is what propagates.  The fused chain checks are
therefore written to be *at least as strict* as the kernels they replace:
a spurious failure only costs one interpreted re-run, whereas silently
succeeding where a kernel would raise could diverge.  Unsupported opcodes
raise :class:`~repro.errors.UnknownInstructionError` at *compile* time —
the backend seam (:mod:`repro.kernel.execution.backends`) catches that
and falls back to the interpreter per program.

The compiler only ever sees validated programs: :meth:`compile` runs
``Program.validate()`` first, and the engine additionally runs the static
plan verifier (:func:`repro.analysis.plan_verifier.check_plan`) on every
submitted *incremental* plan when the compiled backend is selected.  The
reeval baseline's plans are outside the incremental-plan verifier's
domain; their programs are still validated per program by
:meth:`compile`.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Mapping, Optional

import numpy as np

from repro.errors import ExecutionError, KernelError, UnknownInstructionError
from repro.kernel.algebra import project as project_mod
from repro.kernel.algebra import select as select_mod
from repro.kernel.atoms import Atom, atom_of_python, division_result, is_numeric, promote
from repro.kernel.bat import BAT
from repro.kernel.execution import interpreter as interpreter_mod
from repro.kernel.execution.interpreter import Interpreter, kernel_registry
from repro.kernel.execution.profiler import Profiler
from repro.kernel.execution.program import Instr, Lit, Program, Ref

#: Pseudo-opcode fused tag-segments are recorded under (profile=False).
FUSED_OPCODE = "compiled.fused"


def _inline_literal(value: object) -> Optional[str]:
    """Source text for a literal whose repr round-trips, else None."""
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        # repr round-trips for finite floats; inf/nan repr is not a literal
        return repr(value) if math.isfinite(value) else None
    return None


# ----------------------------------------------------------------------
# tail-level chain evaluation: runtime helpers
#
# A chain value is three locals — raw tail, atom, head sequence — plus
# compile-time knowledge of whether the operand is a BAT.  The helpers
# below supply the pieces the emitted numpy expressions cannot express
# inline; every raise replicates a condition under which the interpreted
# kernel would raise too (the exact exception type/message is irrelevant:
# any failure triggers the interpreter re-run, which produces the
# canonical error).
# ----------------------------------------------------------------------
def _state_of(value: object) -> tuple[Any, Atom, int, bool]:
    """Decompose a runtime operand exactly like ``calc._operand_info``."""
    if isinstance(value, BAT):
        return value.tail, value.atom, value.hseq, True
    return value, atom_of_python(value), 0, False


def _misaligned() -> None:
    raise KernelError("fused chain: BATs not aligned")


def _no_bat() -> None:
    raise KernelError("calc needs at least one BAT operand")


def _type_mismatch() -> None:
    raise KernelError("fused chain: operand type mismatch")


def _align_generic(
    tl: Any, hl: int, bl: bool, tr: Any, hr: int, br: bool
) -> int:
    """Full ``calc._align`` checks when neither operand kind is known."""
    if bl and br:
        if hl != hr or tl.shape[0] != tr.shape[0]:
            _misaligned()
    elif not (bl or br):
        _no_bat()
    return hl if bl else hr


def _as_bit(result: Any) -> np.ndarray:
    """The compare kernels' result normalization."""
    return np.atleast_1d(np.asarray(result, dtype=bool))


def _divide_tails(lt: Any, rt: Any) -> np.ndarray:
    """``calc.divide`` tail arithmetic (NaN for division by zero)."""
    denominator = np.asarray(rt, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.asarray(lt, dtype=np.float64) / denominator
    return np.atleast_1d(np.where(denominator == 0.0, np.nan, result))


def _mat_from_array(t: np.ndarray, a: Atom, h: int) -> BAT:
    """Materialize an arith/div chain value (the kernels' ``from_array``)."""
    return BAT.from_array(t, a, h)


def _mat_bat(t: np.ndarray, a: Atom, h: int) -> BAT:
    """Materialize a cmp/logic/neg chain value (direct construction)."""
    return BAT(t, a, h)


def _mask_positions_of(t: np.ndarray, a: Atom) -> np.ndarray:
    """``algebra.mask_select`` position list off a chain's boolean tail."""
    if a is not Atom.BIT:
        raise KernelError("mask_select expects a BIT BAT")
    return np.flatnonzero(t).astype(np.int64)


def _mask_oids(positions: np.ndarray, h: int) -> BAT:
    """Turn mask positions into the kernel's absolute-oid candidate list."""
    return BAT(positions + h, Atom.OID)


def _project_positions(
    cand: BAT,
    b: BAT,
    positions: np.ndarray,
    hseq: int,
    srclen: int,
    kernel: Callable[[BAT, BAT], BAT],
) -> BAT:
    """``algebra.projection`` through a candidate list built by a fused
    mask: when ``b`` is head-aligned with the mask's source the positions
    index ``b.tail`` directly (``positions_of`` would return exactly
    them, in range by construction); any other shape takes the kernel."""
    if isinstance(b, BAT) and b.hseq == hseq and b.tail.shape[0] == srclen:
        return BAT(b.tail[positions], b.atom, cand.hseq)
    return kernel(cand, b)


def _agg_sum_state(t: np.ndarray, a: Atom) -> BAT:
    """``aggr.sum`` off a chain value (interpreter ``_sum_bat`` parity)."""
    if t.shape[0] == 0:
        return BAT.empty(a if a is Atom.FLT else Atom.INT)
    if not is_numeric(a):
        raise KernelError(f"sum needs a numeric column, got {a}")
    if a is Atom.FLT:
        return BAT.from_values([float(t.sum())], Atom.FLT)
    return BAT.from_values([int(t.sum())], Atom.INT)


def _agg_count_state(t: np.ndarray, a: Atom) -> BAT:
    """``aggr.count`` off a chain value."""
    return BAT.from_values([t.shape[0]], Atom.INT)


def _agg_min_state(t: np.ndarray, a: Atom) -> BAT:
    """``aggr.min`` off a chain value."""
    if t.shape[0] == 0:
        return BAT.empty(a)
    value = t.min()
    return BAT.from_values(
        [value.item() if isinstance(value, np.generic) else value], a
    )


def _agg_max_state(t: np.ndarray, a: Atom) -> BAT:
    """``aggr.max`` off a chain value."""
    if t.shape[0] == 0:
        return BAT.empty(a)
    value = t.max()
    return BAT.from_values(
        [value.item() if isinstance(value, np.generic) else value], a
    )


def _agg_avg_state(t: np.ndarray, a: Atom) -> BAT:
    """``aggr.avg`` off a chain value."""
    if t.shape[0] == 0:
        return BAT.empty(Atom.FLT)
    if not is_numeric(a):
        raise KernelError(f"avg needs a numeric column, got {a}")
    return BAT.from_values([float(t.mean())], Atom.FLT)


#: Helper bindings present in every compiled namespace.
_CHAIN_HELPERS: dict[str, object] = {
    "_x_os": _state_of,
    "_x_mis": _misaligned,
    "_x_nob": _no_bat,
    "_x_tmm": _type_mismatch,
    "_x_al": _align_generic,
    "_x_ab": _as_bit,
    "_x_dv": _divide_tails,
    "_x_pro": promote,
    "_x_dr": division_result,
    "_x_mfa": _mat_from_array,
    "_x_mbt": _mat_bat,
    "_x_fnz": _mask_positions_of,
    "_x_moid": _mask_oids,
    "_x_prj": _project_positions,
    "_x_gsum": _agg_sum_state,
    "_x_gcnt": _agg_count_state,
    "_x_gmin": _agg_min_state,
    "_x_gmax": _agg_max_state,
    "_x_gavg": _agg_avg_state,
    "_AB": Atom.BIT,
    "_AI": Atom.INT,
    "_AF": Atom.FLT,
    "_AS": Atom.STR,
}

#: Chain plan per opcode: (family, infix symbol or None, arity).
_CHAIN_OPS: dict[str, tuple[str, Optional[str], int]] = {
    "calc.+": ("arith", "+", 2),
    "calc.-": ("arith", "-", 2),
    "calc.*": ("arith", "*", 2),
    "calc.%": ("arith", "%", 2),
    "calc.==": ("cmp", "==", 2),
    "calc.!=": ("cmp", "!=", 2),
    "calc.<": ("cmp", "<", 2),
    "calc.<=": ("cmp", "<=", 2),
    "calc.>": ("cmp", ">", 2),
    "calc.>=": ("cmp", ">=", 2),
    "calc.div": ("div", None, 2),
    "calc./": ("div", None, 2),
    "calc.and": ("logic", "&", 2),
    "calc.or": ("logic", "|", 2),
    "calc.not": ("not", None, 1),
    "calc.neg": ("neg", None, 1),
}

#: Chain families whose materialization goes through ``BAT.from_array``
#: (the rest construct the BAT directly, as their kernels do).
_FROM_ARRAY_FAMILIES = frozenset({"arith", "div"})

#: Prebound names for the atoms literal operands can take.
_ATOM_NAMES = {Atom.BIT: "_AB", Atom.INT: "_AI", Atom.FLT: "_AF", Atom.STR: "_AS"}

#: Global aggregates that can consume a chain value without materializing
#: it, mapped to their emitted helper names.
_AGGR_STATE_OPS = {
    "aggr.sum": "_x_gsum",
    "aggr.count": "_x_gcnt",
    "aggr.min": "_x_gmin",
    "aggr.max": "_x_gmax",
    "aggr.avg": "_x_gavg",
}

#: The canonical kernel each specialized (non-calc) fusion replicates.
#: Fusion is enabled only when the compiler's registry maps the opcode to
#: this exact function — a custom registry entry keeps the plain path.
_CANONICAL_KERNELS: dict[str, object] = {
    "algebra.mask_select": select_mod.mask_select,
    "algebra.projection": project_mod.projection,
    "aggr.sum": interpreter_mod._sum_bat,
    "aggr.count": interpreter_mod._count_bat,
    "aggr.min": interpreter_mod._min_bat,
    "aggr.max": interpreter_mod._max_bat,
    "aggr.avg": interpreter_mod._avg_bat,
}


class _Operand:
    """Compile-time descriptor of one chain operand.

    ``kind`` is ``"state"`` (a chain value: tail/atom/hseq exprs, a BAT by
    construction), ``"ref"`` (a decomposed slot of unknown runtime kind —
    ``b`` names the is-BAT flag local), or ``"lit"`` (``t`` is the value
    expression, ``a`` the compile-time atom's bound name).
    """

    __slots__ = ("kind", "t", "a", "h", "b")

    def __init__(self, kind: str, t: str, a: str, h: str = "", b: str = "") -> None:
        self.kind = kind
        self.t = t
        self.a = a
        self.h = h
        self.b = b


class CompiledProgram:
    """One program specialized into fused callables.

    ``run`` mirrors :meth:`Interpreter.run` — same signature, same
    results, same error types — so factories can hold either behind the
    :class:`~repro.kernel.execution.backends.ExecutionBackend` seam.
    """

    def __init__(
        self,
        program: Program,
        fast: Callable[..., tuple[object, ...]],
        traced: Callable[..., tuple[object, ...]],
        source: str,
        fused_count: int,
        folded_count: int,
        interpreter: Interpreter,
    ) -> None:
        self._program = program
        self._fast = fast
        self._traced = traced
        #: Emitted Python source (both variants) — debugging and tests.
        self.source = source
        #: Intermediate BAT materializations eliminated by chain fusion.
        self.fused_count = fused_count
        #: Number of all-literal instructions evaluated at compile time.
        self.folded_count = folded_count
        self._interp = interpreter
        self._input_names = program.inputs
        self._output_names = program.outputs

    @property
    def program(self) -> Program:
        return self._program

    def run(
        self,
        inputs: Mapping[str, object],
        profiler: Optional[Profiler] = None,
    ) -> dict[str, object]:
        """Evaluate the program and return its declared outputs."""
        args = []
        for name in self._input_names:
            if name not in inputs:
                raise ExecutionError(f"missing program input {name!r}")
            args.append(inputs[name])
        try:
            if profiler is None:
                values = self._fast(*args)
            else:
                snap = profiler.snapshot()
                values = self._traced(*args, profiler)
        except Exception:
            # Reproduce the canonical per-instruction ExecutionError (the
            # fused body carries no per-instruction try/except).  Kernel
            # functions are pure, so the re-run fails identically — and if
            # it unexpectedly succeeds (a chain check stricter than its
            # kernel), the re-run's result is simply the correct answer.
            # Roll back the segments the failed traced body already
            # recorded, so the interpreter re-run does not double-count
            # the successfully-executed prefix.
            if profiler is not None:
                profiler.restore(snap)
            return self._interp.run(self._program, inputs, profiler)
        return dict(zip(self._output_names, values))


class ProgramCompiler:
    """Compiles verified Programs to fused callables over a fixed registry.

    The compiler specializes exactly the built-in opcode surface of
    :func:`~repro.kernel.execution.interpreter.kernel_registry` unless an
    explicit registry is given; anything outside it raises
    :class:`UnknownInstructionError` from :meth:`compile` (the backend
    seam turns that into per-program interpreter fallback).
    """

    def __init__(self, registry: Optional[Mapping[str, Callable[..., Any]]] = None) -> None:
        self._registry: Mapping[str, Callable[..., Any]] = (
            registry if registry is not None else kernel_registry()
        )
        self._interp = Interpreter(self._registry)

    def known_opcodes(self) -> frozenset[str]:
        """Every opcode this compiler can specialize."""
        return frozenset(self._registry)

    # ------------------------------------------------------------------
    def compile(self, program: Program, profile: bool = False) -> CompiledProgram:
        """Specialize ``program``; raises on unknown opcodes or invalid plans.

        ``profile=True`` keeps the interpreter's per-opcode timing: fusion
        and constant folding are disabled so every instruction records
        ``(tag, opcode, elapsed)`` exactly as the interpreter would.
        """
        try:
            program.validate()
        except ValueError as exc:
            raise ExecutionError(f"cannot compile invalid program: {exc}") from exc
        emitter = _Emitter(program, self._registry, profile)
        fast_src, traced_src = emitter.emit()
        source = fast_src + "\n\n" + traced_src
        namespace: dict[str, object] = dict(emitter.bindings)
        namespace.update(_CHAIN_HELPERS)
        namespace["_pc"] = time.perf_counter
        code = compile(source, "<repro.compiled>", "exec")
        exec(code, namespace)  # noqa: S102 - our own emitted source
        fast = namespace["_fast"]
        traced = namespace["_traced"]
        return CompiledProgram(
            program,
            fast,  # type: ignore[arg-type]
            traced,  # type: ignore[arg-type]
            source,
            emitter.fused_count,
            emitter.folded_count,
            self._interp,
        )


def compile_program(
    program: Program,
    registry: Optional[Mapping[str, Callable[..., Any]]] = None,
    profile: bool = False,
) -> CompiledProgram:
    """Convenience wrapper: one-off compilation of a single program."""
    return ProgramCompiler(registry).compile(program, profile=profile)


# ----------------------------------------------------------------------
# code emission
# ----------------------------------------------------------------------
class _Statement:
    """One emitted line plus the profiling metadata of its instruction."""

    def __init__(self, line: str, tag: str, opcode: str) -> None:
        self.line = line
        self.tag = tag
        self.opcode = opcode


class _Emitter:
    """Builds the ``_fast``/``_traced`` source for one program."""

    def __init__(
        self,
        program: Program,
        registry: Mapping[str, Callable[..., Any]],
        profile: bool,
    ) -> None:
        self.program = program
        self.registry = registry
        self.profile = profile
        #: Names bound into the exec namespace (_f* kernels, _c* consts).
        self.bindings: dict[str, object] = {}
        self.fused_count = 0
        self.folded_count = 0
        self._fn_names: dict[str, str] = {}
        self._next_const = 0
        self._next_value = 0
        self._next_chain = 0
        # current slot name -> local identifier or constant binding
        self._slot_expr: dict[str, str] = {}
        # live chain values: slot name -> operand descriptor
        self._chain_states: dict[str, _Operand] = {}
        # slot local -> decomposed (t, a, h, b) locals, emitted once
        self._decomposed: dict[str, _Operand] = {}
        # fused-mask outputs: slot name -> (positions local, hseq expr,
        # source-length expr) for projection specialization
        self._mask_positions: dict[str, tuple[str, str, str]] = {}

    # -- naming --------------------------------------------------------
    def _fn(self, opcode: str) -> str:
        name = self._fn_names.get(opcode)
        if name is None:
            try:
                fn = self.registry[opcode]
            except KeyError:
                raise UnknownInstructionError(f"unknown opcode {opcode!r}") from None
            name = f"_f{len(self._fn_names)}"
            self._fn_names[opcode] = name
            self.bindings[name] = fn
        return name

    def _bind_const(self, value: object) -> str:
        name = f"_c{self._next_const}"
        self._next_const += 1
        self.bindings[name] = value
        return name

    def _const(self, value: object) -> str:
        inline = _inline_literal(value)
        return inline if inline is not None else self._bind_const(value)

    def _atom_const(self, atom: Atom) -> str:
        return _ATOM_NAMES.get(atom) or self._bind_const(atom)

    def _fresh(self) -> str:
        name = f"v{self._next_value}"
        self._next_value += 1
        return name

    def _chain_locals(self) -> tuple[str, str, str]:
        n = self._next_chain
        self._next_chain += 1
        return f"_t{n}", f"_a{n}", f"_h{n}"

    # -- fusion / folding decisions ------------------------------------
    def _use_counts(self) -> dict[str, int]:
        uses: dict[str, int] = {}
        for instr in self.program.instructions:
            for arg in instr.args:
                if isinstance(arg, Ref):
                    uses[arg.name] = uses.get(arg.name, 0) + 1
        for out in self.program.outputs:
            uses[out] = uses.get(out, 0) + 1
        return uses

    def _first_consumers(self) -> dict[str, int]:
        consumers: dict[str, int] = {}
        for index, instr in enumerate(self.program.instructions):
            for arg in instr.args:
                if isinstance(arg, Ref) and arg.name not in consumers:
                    consumers[arg.name] = index
        return consumers

    def _redefined(self) -> set[str]:
        seen: set[str] = set(self.program.inputs)
        dups: set[str] = set()
        for instr in self.program.instructions:
            for out in instr.outs:
                if out in seen:
                    dups.add(out)
                seen.add(out)
        return dups

    def _chainable(self, instr: Instr) -> bool:
        """Can this instruction run as a tail-level chain element?"""
        plan = _CHAIN_OPS.get(instr.opcode)
        if plan is None or len(instr.args) != plan[2] or len(instr.outs) != 1:
            return False
        if instr.opcode not in self.registry:
            return False
        lits = [arg for arg in instr.args if isinstance(arg, Lit)]
        if len(lits) == len(instr.args):
            return False  # all-literal: fold or fail on the plain path
        if plan[0] in ("logic", "not", "neg") and lits:
            return False  # these kernels reject scalar operands outright
        for lit in lits:
            try:
                atom_of_python(lit.value)
            except Exception:
                # The kernel would reject this operand at run time; leave
                # the instruction on the plain path so the canonical
                # error surfaces.
                return False
        return True

    def _try_fold(self, instr: Instr) -> Optional[str]:
        """Constant-fold an all-literal single-output instruction."""
        if self.profile or len(instr.outs) != 1:
            return None
        if not all(isinstance(a, Lit) for a in instr.args):
            return None
        fn = self.registry.get(instr.opcode)
        if fn is None:
            raise UnknownInstructionError(f"unknown opcode {instr.opcode!r}")
        try:
            value = fn(*[a.value for a in instr.args if isinstance(a, Lit)])
        except Exception:
            return None  # defer the error to run time (interpreter path)
        self.folded_count += 1
        return self._bind_const(value)

    # -- plain (per-kernel-call) emission ------------------------------
    def _emit_plain(self, instr: Instr, statements: list[_Statement]) -> None:
        folded = self._try_fold(instr)
        if folded is not None:
            self._slot_expr[instr.outs[0]] = folded
            return
        parts = []
        for arg in instr.args:
            if isinstance(arg, Ref):
                parts.append(self._slot_expr[arg.name])
            else:
                parts.append(self._const(arg.value))
        call = f"{self._fn(instr.opcode)}({', '.join(parts)})"
        if instr.outs:
            targets = [self._fresh() for __ in instr.outs]
            for out, target in zip(instr.outs, targets):
                self._slot_expr[out] = target
            line = f"{', '.join(targets)} = {call}"
        else:
            line = call
        statements.append(_Statement(line, instr.tag, instr.opcode))

    # -- chain emission ------------------------------------------------
    def _operand(
        self, arg: object, instr: Instr, statements: list[_Statement]
    ) -> _Operand:
        """Resolve one instruction argument to a chain operand."""
        if isinstance(arg, Lit):
            return _Operand(
                "lit", self._const(arg.value), self._atom_const(atom_of_python(arg.value))
            )
        assert isinstance(arg, Ref)
        state = self._chain_states.pop(arg.name, None)
        if state is not None:
            return state
        slot = self._slot_expr[arg.name]
        cached = self._decomposed.get(slot)
        if cached is None:
            t, a, h = self._chain_locals()
            b = f"_b{self._next_chain - 1}"
            statements.append(
                _Statement(
                    f"{t}, {a}, {h}, {b} = _x_os({slot})", instr.tag, instr.opcode
                )
            )
            cached = _Operand("ref", t, a, h, b)
            self._decomposed[slot] = cached
        return cached

    def _emit_checks_and_hseq(
        self,
        left: _Operand,
        right: _Operand,
        out: list[str],
        require_bats: bool = False,
    ) -> str:
        """Emit alignment/operand-kind checks; return the hseq expression.

        ``require_bats`` is the logic-family rule (both operands must be
        BATs); otherwise ``calc._align`` semantics apply (at least one).
        """
        lk, rk = left.kind, right.kind
        aligned = (
            f"{left.h} != {right.h} or {left.t}.shape[0] != {right.t}.shape[0]"
        )
        if require_bats:
            if lk == "ref":
                out.append(f"if not {left.b}: _x_tmm()")
            if rk == "ref":
                out.append(f"if not {right.b}: _x_tmm()")
            out.append(f"if {aligned}: _x_mis()")
            return left.h
        if lk != "lit" and rk != "lit":
            if lk == "state" and rk == "state":
                out.append(f"if {aligned}: _x_mis()")
                return left.h
            if lk == "state":  # state/ref
                out.append(f"if {right.b} and ({aligned}): _x_mis()")
                return left.h
            if rk == "state":  # ref/state
                out.append(f"if {left.b} and ({aligned}): _x_mis()")
                return f"{left.h} if {left.b} else {right.h}"
            hseq = self._chain_locals()[2]
            out.append(
                f"{hseq} = _x_al({left.t}, {left.h}, {left.b}, "
                f"{right.t}, {right.h}, {right.b})"
            )
            return hseq
        if lk == "lit" and rk == "ref":
            out.append(f"if not {right.b}: _x_nob()")
            return right.h
        if rk == "lit" and lk == "ref":
            out.append(f"if not {left.b}: _x_nob()")
            return left.h
        # lit/state or state/lit: the state side is a BAT by construction
        return left.h if lk != "lit" else right.h

    def _emit_chain_op(
        self, instr: Instr, operands: list[_Operand], statements: list[_Statement]
    ) -> _Operand:
        """Emit one fused instruction; return its chain-value descriptor."""
        family, symbol, __ = _CHAIN_OPS[instr.opcode]
        lines: list[str] = []
        left = operands[0]
        if family in ("not", "neg"):
            if left.kind == "ref":
                lines.append(f"if not {left.b}: _x_tmm()")
            if family == "not":
                lines.append(f"if {left.a} is not _AB: _x_tmm()")
                tail, atom = f"~{left.t}", "_AB"
            else:
                lines.append(
                    f"if {left.a} is not _AI and {left.a} is not _AF: _x_tmm()"
                )
                tail, atom = f"-{left.t}", left.a
            hseq = left.h
        else:
            right = operands[1]
            if family == "logic":
                for side in (left, right):
                    lines.append(f"if {side.a} is not _AB: _x_tmm()")
                hseq = self._emit_checks_and_hseq(left, right, lines, require_bats=True)
                tail, atom = f"{left.t} {symbol} {right.t}", "_AB"
            elif family == "cmp":
                hseq = self._emit_checks_and_hseq(left, right, lines)
                for one, other in ((left, right), (right, left)):
                    if one.kind == "lit":
                        check = "is not _AS" if one.a == "_AS" else "is _AS"
                        lines.append(f"if {other.a} {check}: _x_tmm()")
                        break
                else:
                    lines.append(
                        f"if ({left.a} is _AS) != ({right.a} is _AS): _x_tmm()"
                    )
                tail, atom = f"_x_ab({left.t} {symbol} {right.t})", "_AB"
            elif family == "div":
                hseq = self._emit_checks_and_hseq(left, right, lines)
                tail = f"_x_dv({left.t}, {right.t})"
                atom_local = self._chain_locals()[1]
                lines.append(f"{atom_local} = _x_dr({left.a}, {right.a})")
                atom = atom_local
            else:  # arith
                hseq = self._emit_checks_and_hseq(left, right, lines)
                tail = f"{left.t} {symbol} {right.t}"
                atom_local = self._chain_locals()[1]
                lines.append(
                    f"{atom_local} = {left.a} if {left.a} is {right.a} "
                    f"else _x_pro({left.a}, {right.a})"
                )
                atom = atom_local
        tail_local = self._chain_locals()[0]
        lines.append(f"{tail_local} = {tail}")
        for line in lines:
            statements.append(_Statement(line, instr.tag, instr.opcode))
        return _Operand("state", tail_local, atom, hseq)


    def _is_canonical(self, opcode: str) -> bool:
        return self.registry.get(opcode) is _CANONICAL_KERNELS.get(opcode)

    def _mask_fused(self, instr: Instr) -> bool:
        """May this mask_select consume a chain value directly?"""
        return (
            instr.opcode == "algebra.mask_select"
            and len(instr.args) == 1
            and len(instr.outs) == 1
            and isinstance(instr.args[0], Ref)
            and self._is_canonical("algebra.mask_select")
        )

    def _aggr_fused(self, instr: Instr) -> bool:
        """May this global aggregate consume a chain value directly?"""
        return (
            instr.opcode in _AGGR_STATE_OPS
            and len(instr.args) == 1
            and len(instr.outs) == 1
            and isinstance(instr.args[0], Ref)
            and self._is_canonical(instr.opcode)
        )

    def _statements(self) -> list[_Statement]:
        statements: list[_Statement] = []
        instructions = self.program.instructions
        uses = self._use_counts()
        consumers = self._first_consumers()
        redefined = self._redefined()

        def stateful(index: int, instr: Instr) -> bool:
            """May ``instr``'s value stay unmaterialized chain state?  Yes
            when its single consumer is a later same-tag instruction that
            reads chain state itself (a fused calc op, a mask_select, or
            a global aggregate)."""
            out = instr.outs[0]
            if (
                uses.get(out, 0) != 1
                or out in redefined
                or out in self.program.inputs
            ):
                return False
            consumer = consumers.get(out, -1)
            if consumer <= index or instructions[consumer].tag != instr.tag:
                return False
            target = instructions[consumer]
            return (
                self._chainable(target)
                or self._mask_fused(target)
                or self._aggr_fused(target)
            )

        for index, instr in enumerate(instructions):
            if self.profile:
                self._emit_plain(instr, statements)
                continue
            # Slot redefinition is legal (Program.validate() allows it):
            # any write invalidates a fused-mask registration under the
            # same name, else a later projection through the redefined
            # slot would index with the *old* mask's positions.  The
            # fused-mask branch below re-registers its own output; a
            # self-redefining projection (``x = projection(x, src)``)
            # merely loses the specialization and takes the kernel path.
            for out in instr.outs:
                self._mask_positions.pop(out, None)
            if self._mask_fused(instr):
                state = self._chain_states.pop(instr.args[0].name, None)  # type: ignore[union-attr]
                if state is not None:
                    positions = f"_p{self._next_chain}"
                    self._next_chain += 1
                    target = self._fresh()
                    self._slot_expr[instr.outs[0]] = target
                    statements.append(
                        _Statement(
                            f"{positions} = _x_fnz({state.t}, {state.a})",
                            instr.tag,
                            instr.opcode,
                        )
                    )
                    statements.append(
                        _Statement(
                            f"{target} = _x_moid({positions}, {state.h})",
                            instr.tag,
                            instr.opcode,
                        )
                    )
                    self._mask_positions[instr.outs[0]] = (
                        positions,
                        state.h,
                        f"{state.t}.shape[0]",
                    )
                    continue
            if self._aggr_fused(instr):
                state = self._chain_states.pop(instr.args[0].name, None)  # type: ignore[union-attr]
                if state is not None:
                    target = self._fresh()
                    self._slot_expr[instr.outs[0]] = target
                    statements.append(
                        _Statement(
                            f"{target} = {_AGGR_STATE_OPS[instr.opcode]}"
                            f"({state.t}, {state.a})",
                            instr.tag,
                            instr.opcode,
                        )
                    )
                    continue
            if (
                instr.opcode == "algebra.projection"
                and len(instr.args) == 2
                and len(instr.outs) == 1
                and isinstance(instr.args[0], Ref)
                and isinstance(instr.args[1], Ref)
                and instr.args[0].name in self._mask_positions
                and self._is_canonical("algebra.projection")
            ):
                positions, hseq, srclen = self._mask_positions[instr.args[0].name]
                cand = self._slot_expr[instr.args[0].name]
                source = self._slot_expr[instr.args[1].name]
                target = self._fresh()
                self._slot_expr[instr.outs[0]] = target
                statements.append(
                    _Statement(
                        f"{target} = _x_prj({cand}, {source}, {positions}, "
                        f"{hseq}, {srclen}, {self._fn('algebra.projection')})",
                        instr.tag,
                        instr.opcode,
                    )
                )
                continue
            if not self._chainable(instr):
                self._emit_plain(instr, statements)
                continue
            operands = [self._operand(arg, instr, statements) for arg in instr.args]
            value = self._emit_chain_op(instr, operands, statements)
            if stateful(index, instr):
                self._chain_states[instr.outs[0]] = value
                self.fused_count += 1
            else:
                family = _CHAIN_OPS[instr.opcode][0]
                mat = "_x_mfa" if family in _FROM_ARRAY_FAMILIES else "_x_mbt"
                target = self._fresh()
                statements.append(
                    _Statement(
                        f"{target} = {mat}({value.t}, {value.a}, {value.h})",
                        instr.tag,
                        instr.opcode,
                    )
                )
                self._slot_expr[instr.outs[0]] = target
        return statements

    def emit(self) -> tuple[str, str]:
        """The ``_fast`` and ``_traced`` function sources."""
        params = []
        for index, name in enumerate(self.program.inputs):
            ident = f"i{index}"
            params.append(ident)
            self._slot_expr[name] = ident
        statements = self._statements()
        returns = (
            "return (" + ", ".join(self._slot_expr[out] for out in self.program.outputs)
            + ("," if len(self.program.outputs) == 1 else "")
            + ")"
        )

        fast = [f"def _fast({', '.join(params)}):"]
        for statement in statements:
            fast.append(f"    {statement.line}")
        fast.append(f"    {returns}")

        traced = [f"def _traced({', '.join(params + ['_prof'])}):"]
        if self.profile:
            for statement in statements:
                traced.append("    _t = _pc()")
                traced.append(f"    {statement.line}")
                traced.append(
                    f"    _prof.record({statement.tag!r}, "
                    f"{statement.opcode!r}, _pc() - _t)"
                )
        else:
            index = 0
            while index < len(statements):
                tag = statements[index].tag
                traced.append("    _t = _pc()")
                while index < len(statements) and statements[index].tag == tag:
                    traced.append(f"    {statements[index].line}")
                    index += 1
                traced.append(
                    f"    _prof.record({tag!r}, {FUSED_OPCODE!r}, _pc() - _t)"
                )
        traced.append(f"    {returns}")
        return "\n".join(fast), "\n".join(traced)

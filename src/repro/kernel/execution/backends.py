"""Execution-backend seam: interpreted vs compiled program evaluation.

Factories hold an :class:`ExecutionBackend` instead of a bare
:class:`~repro.kernel.execution.interpreter.Interpreter`, so the choice
between op-at-a-time interpretation and compiled/fused execution
(:mod:`repro.kernel.execution.compiled`) is one constructor argument
(``DataCellEngine(backend="compiled")``) rather than a code change.

Fallback contract: the compiler specializes exactly the *built-in*
opcode surface (:func:`~repro.kernel.execution.interpreter.kernel_registry`).
A program containing any other opcode — e.g. one registered on a custom
interpreter registry — compiles to ``None`` once and runs through the
interpreter on every firing, bumping the
:data:`~repro.kernel.execution.profiler.COUNTER_COMPILED_FALLBACKS`
counter so the fallback is observable (``repro top`` counters, tests).
Opcodes unknown to both raise
:class:`~repro.errors.UnknownInstructionError` exactly as the interpreter
alone would.
"""

from __future__ import annotations

import threading
import warnings
from typing import Mapping, Optional

from repro.errors import ExecutionError, UnknownInstructionError
from repro.kernel.execution.compiled import CompiledProgram, ProgramCompiler
from repro.kernel.execution.interpreter import Interpreter
from repro.kernel.execution.profiler import COUNTER_COMPILED_FALLBACKS, Profiler
from repro.kernel.execution.program import Program

#: Backend names accepted by ``make_backend`` / ``DataCellEngine``.
BACKENDS: tuple[str, ...] = ("interpreted", "compiled")

#: Compiled-program cache entries kept per backend (plans per factory are
#: few and long-lived; the cap only guards pathological churn).
_CACHE_CAP = 256


class ExecutionBackend:
    """Evaluates verified Programs; same run() contract as Interpreter."""

    name: str = "abstract"

    def run(
        self,
        program: Program,
        inputs: Mapping[str, object],
        profiler: Optional[Profiler] = None,
    ) -> dict[str, object]:
        raise NotImplementedError


class InterpreterBackend(ExecutionBackend):
    """Op-at-a-time interpretation — the default backend."""

    name = "interpreted"

    def __init__(self, interpreter: Optional[Interpreter] = None) -> None:
        self._interp = interpreter if interpreter is not None else Interpreter()

    def run(
        self,
        program: Program,
        inputs: Mapping[str, object],
        profiler: Optional[Profiler] = None,
    ) -> dict[str, object]:
        return self._interp.run(program, inputs, profiler)


class CompiledBackend(ExecutionBackend):
    """Compiled/fused execution with per-program interpreter fallback.

    Compilation results are memoized per Program identity: factory plans
    are built once at submit time and reused for every firing, so keying
    on ``id(program)`` is both safe (the cache entry keeps the program
    alive, preventing id reuse) and free of the cost of structural
    hashing.  A ``None`` entry records a program that failed to compile
    and permanently runs interpreted; the triggering exception is kept on
    the entry (see :meth:`fallback_error`) so an *unexpected* compiler
    failure — anything other than the contractual
    :class:`UnknownInstructionError` / :class:`ExecutionError` — stays
    diagnosable instead of being indistinguishable from an unsupported
    opcode.  Unexpected failures additionally emit a :class:`RuntimeWarning`
    at compile time (results are still correct — the interpreter is
    authoritative — but silent would hide a compiler bug).
    """

    name = "compiled"

    def __init__(
        self,
        interpreter: Optional[Interpreter] = None,
        profile: bool = False,
    ) -> None:
        # The compiler always targets the built-in registry; the fallback
        # interpreter may carry extension opcodes on top of it.
        self._compiler = ProgramCompiler()
        self._interp = interpreter if interpreter is not None else Interpreter()
        self._profile = profile
        self._lock = threading.Lock()
        # id(program) -> (program, compiled-or-None, compile-error-or-None)
        self._cache: dict[
            int, tuple[Program, Optional[CompiledProgram], Optional[Exception]]
        ] = {}  # guarded-by: _lock

    def compiled_for(self, program: Program) -> Optional[CompiledProgram]:
        """The memoized compilation of ``program`` (None = fallback)."""
        key = id(program)
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                return entry[1]
        # Compile outside the lock: compilation execs source and may run
        # constant folding; concurrent duplicate compiles are benign.
        error: Optional[Exception] = None
        compiled: Optional[CompiledProgram]
        try:
            compiled = self._compiler.compile(program, profile=self._profile)
        except (UnknownInstructionError, ExecutionError) as exc:
            # The contractual fallback reasons: an opcode outside the
            # built-in registry, or a program the verifier rejects.
            compiled, error = None, exc
        except Exception as exc:  # pragma: no cover - compiler bug guard
            # Anything else is a compiler defect, not an unsupported
            # program.  Fall back (the interpreter is authoritative) but
            # say so — a silent catch here turns bugs into permanently
            # slow, undiagnosable programs.
            compiled, error = None, exc
            warnings.warn(
                f"unexpected failure compiling program "
                f"({len(program.instructions)} instructions); "
                f"falling back to the interpreter: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )
        with self._lock:
            if len(self._cache) >= _CACHE_CAP:
                self._cache.clear()
            self._cache[key] = (program, compiled, error)
        return compiled

    def fallback_error(self, program: Program) -> Optional[Exception]:
        """Why ``program`` fell back to the interpreter (None = compiled,
        or never seen)."""
        with self._lock:
            entry = self._cache.get(id(program))
            return entry[2] if entry is not None else None

    def run(
        self,
        program: Program,
        inputs: Mapping[str, object],
        profiler: Optional[Profiler] = None,
    ) -> dict[str, object]:
        compiled = self.compiled_for(program)
        if compiled is None:
            if profiler is not None:
                profiler.count(COUNTER_COMPILED_FALLBACKS)
            return self._interp.run(program, inputs, profiler)
        return compiled.run(inputs, profiler)


def make_backend(
    name: str,
    interpreter: Optional[Interpreter] = None,
    profile: bool = False,
) -> ExecutionBackend:
    """Build a backend by name (``interpreted`` | ``compiled``).

    ``interpreter`` seeds the interpreted path (and the compiled
    backend's fallback) — pass one carrying extension opcodes if needed.
    ``profile`` only affects the compiled backend: it preserves
    per-opcode timing at the cost of disabling fusion.
    """
    if name == "interpreted":
        return InterpreterBackend(interpreter)
    if name == "compiled":
        return CompiledBackend(interpreter, profile=profile)
    raise ValueError(f"unknown execution backend {name!r}; expected one of {BACKENDS}")

"""Per-instruction profiler.

DataCell's Figure 7 splits a sliding step's cost into the *main plan*
(original query operators) and the *merge* machinery (concat, compensation,
transition administration).  The interpreter tags every executed
instruction; this profiler accumulates wall time per tag and per opcode so
benchmarks report measured — not modelled — breakdowns.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class Profiler:
    """Accumulates instruction timings by cost tag and opcode."""

    by_tag: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    by_opcode: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    calls: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, tag: str, opcode: str, seconds: float) -> None:
        self.by_tag[tag] += seconds
        self.by_opcode[opcode] += seconds
        self.calls[opcode] += 1

    @property
    def total(self) -> float:
        return sum(self.by_tag.values())

    def tag_seconds(self, tag: str) -> float:
        return self.by_tag.get(tag, 0.0)

    def merge_from(self, other: "Profiler") -> None:
        """Fold another profiler's counters into this one."""
        for tag, seconds in other.by_tag.items():
            self.by_tag[tag] += seconds
        for opcode, seconds in other.by_opcode.items():
            self.by_opcode[opcode] += seconds
        for opcode, count in other.calls.items():
            self.calls[opcode] += count

    def snapshot(self) -> dict[str, float]:
        """Plain-dict copy of the per-tag totals."""
        return dict(self.by_tag)

    def reset(self) -> None:
        self.by_tag.clear()
        self.by_opcode.clear()
        self.calls.clear()

"""Per-instruction profiler.

DataCell's Figure 7 splits a sliding step's cost into the *main plan*
(original query operators) and the *merge* machinery (concat, compensation,
transition administration).  The interpreter tags every executed
instruction; this profiler accumulates wall time per tag and per opcode so
benchmarks report measured — not modelled — breakdowns.

Besides timings the profiler carries integer *counters* (factory firings,
fragment-cache hits/misses, ...) so the parallel scheduler and the shared
fragment cache can report their behaviour through the same channel.

Thread-safety: the parallel scheduler merges per-firing profilers from
worker threads into shared per-factory and global profilers, so every
mutating or snapshotting method takes the instance lock.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field

#: Counter names used across the engine (any name is accepted).
COUNTER_FIRINGS = "firings"
COUNTER_CACHE_HITS = "fragment_cache_hits"
COUNTER_CACHE_MISSES = "fragment_cache_misses"
#: Overload-control counters (bounded baskets; see docs/OPERATIONS.md).
COUNTER_SHED = "overflow_shed"
COUNTER_BLOCK_WAITS = "overflow_block_waits"
COUNTER_BLOCK_TIMEOUTS = "overflow_block_timeouts"
COUNTER_INGEST_RETRIES = "ingest_retries"
COUNTER_INGEST_DROPPED = "ingest_dropped"
COUNTER_EMIT_RETRIES = "emit_retries"
COUNTER_DEAD_LETTERS = "dead_letter_batches"
#: Scheduler/observability counters (see docs/OPERATIONS.md §6).
COUNTER_WORKER_ERRORS = "worker_errors"
COUNTER_TUPLES_CONSUMED = "tuples_consumed"
COUNTER_ROWS_EMITTED = "rows_emitted"
#: Programs the compiled backend handed to the interpreter instead
#: (unsupported opcode — see kernel.execution.backends).
COUNTER_COMPILED_FALLBACKS = "compiled_fallbacks"
#: Durability counters (checkpoint/restore; see docs/OPERATIONS.md §7).
COUNTER_CHECKPOINTS = "checkpoints"
COUNTER_CHECKPOINT_BYTES = "checkpoint_bytes"
COUNTER_JOURNAL_RECORDS = "journal_records"
COUNTER_JOURNAL_BYTES = "journal_bytes"
COUNTER_REPLAYED_RECORDS = "replayed_records"
COUNTER_RECOVERY_SUPPRESSED = "recovery_suppressed"
#: Landmark spill counters (bounded-memory landmark store; see
#: docs/OPERATIONS.md §8 and docs/METRICS.md).
COUNTER_LANDMARK_SPILL_RUNS = "landmark_spill_runs"
COUNTER_LANDMARK_SPILL_BYTES = "landmark_spill_bytes"
COUNTER_LANDMARK_PAGEINS = "landmark_spill_pageins"
COUNTER_LANDMARK_PAGEIN_BYTES = "landmark_spill_pagein_bytes"


@dataclass
class Profiler:
    """Accumulates instruction timings by cost tag and opcode."""

    by_tag: dict[str, float] = field(default_factory=lambda: defaultdict(float))  # guarded-by: _lock
    by_opcode: dict[str, float] = field(default_factory=lambda: defaultdict(float))  # guarded-by: _lock
    calls: dict[str, int] = field(default_factory=lambda: defaultdict(int))  # guarded-by: _lock
    counters: dict[str, int] = field(default_factory=lambda: defaultdict(int))  # guarded-by: _lock

    def __post_init__(self) -> None:
        # RLock: merge_from(other) locks both sides and snapshot() is
        # callable while the same thread holds the lock.
        self._lock = threading.RLock()
        # Optional per-observation hook (opcode, seconds): the scheduler
        # attaches the observability layer's per-opcode histograms here.
        self._observer = None  # guarded-by: _lock

    def set_observer(self, observer) -> None:
        """Attach a ``(opcode, seconds)`` callback invoked on every record.

        Used by the observability layer to feed per-opcode duration
        histograms; ``None`` (the default) keeps record() allocation-free.
        """
        with self._lock:
            self._observer = observer

    def record(self, tag: str, opcode: str, seconds: float) -> None:
        with self._lock:
            self.by_tag[tag] += seconds
            self.by_opcode[opcode] += seconds
            self.calls[opcode] += 1
            observer = self._observer
        if observer is not None:
            observer(opcode, seconds)

    def count(self, counter: str, amount: int = 1) -> None:
        """Bump an integer counter (firings, cache hits, ...)."""
        with self._lock:
            self.counters[counter] += amount

    @property
    def total(self) -> float:
        with self._lock:
            return sum(self.by_tag.values())

    def tag_seconds(self, tag: str) -> float:
        with self._lock:
            return self.by_tag.get(tag, 0.0)

    def counter(self, counter: str) -> int:
        with self._lock:
            return self.counters.get(counter, 0)

    def merge_from(self, other: "Profiler") -> None:
        """Fold another profiler's timings and counters into this one."""
        with other._lock:
            tags = dict(other.by_tag)
            opcodes = dict(other.by_opcode)
            calls = dict(other.calls)
            counters = dict(other.counters)
        with self._lock:
            for tag, seconds in tags.items():
                self.by_tag[tag] += seconds
            for opcode, seconds in opcodes.items():
                self.by_opcode[opcode] += seconds
            for opcode, count in calls.items():
                self.calls[opcode] += count
            for counter, count in counters.items():
                self.counters[counter] += count

    def tags(self) -> dict[str, float]:
        """Plain-dict copy of the per-tag wall-time totals."""
        with self._lock:
            return dict(self.by_tag)

    def snapshot(self) -> dict[str, dict]:
        """Structured copy: ``{"tags", "opcodes", "calls", "counters"}``.

        Timings (float seconds) and counters (ints) live in separate
        sub-dicts, so a counter whose name happens to match a cost tag can
        never type-pun an int into the float timing view (the old flat
        snapshot relied on names "never" colliding — see
        :meth:`snapshot_flat`).
        """
        with self._lock:
            return {
                "tags": dict(self.by_tag),
                "opcodes": dict(self.by_opcode),
                "calls": dict(self.calls),
                "counters": dict(self.counters),
            }

    def restore(self, snap: dict[str, dict]) -> None:
        """Replace all timings/counters with a prior :meth:`snapshot`.

        Error-path rollback: the compiled backend snapshots before running
        a traced program and restores on failure, so the segments recorded
        by the partially-executed fused body are not double-counted when
        the interpreter re-run records the whole program again.  The
        caller must own the profiler for the snapshot-restore span (true
        for per-firing profilers; merging happens after the firing).
        """
        with self._lock:
            self.by_tag.clear()
            self.by_tag.update(snap["tags"])
            self.by_opcode.clear()
            self.by_opcode.update(snap["opcodes"])
            self.calls.clear()
            self.calls.update(snap["calls"])
            self.counters.clear()
            self.counters.update(snap["counters"])

    def snapshot_flat(self) -> dict[str, float]:
        """Deprecated: the pre-structured flat view (tags ∪ counters).

        Kept for benchmarks written against the old shape.  When a
        counter name collides with a tag the counter wins (the historical
        ``dict.update`` behaviour) — use :meth:`snapshot` instead, which
        keeps both.
        """
        with self._lock:
            snap: dict[str, float] = dict(self.by_tag)
            snap.update(self.counters)
            return snap

    def reset(self) -> None:
        with self._lock:
            self.by_tag.clear()
            self.by_opcode.clear()
            self.calls.clear()
            self.counters.clear()

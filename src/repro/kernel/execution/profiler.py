"""Per-instruction profiler.

DataCell's Figure 7 splits a sliding step's cost into the *main plan*
(original query operators) and the *merge* machinery (concat, compensation,
transition administration).  The interpreter tags every executed
instruction; this profiler accumulates wall time per tag and per opcode so
benchmarks report measured — not modelled — breakdowns.

Besides timings the profiler carries integer *counters* (factory firings,
fragment-cache hits/misses, ...) so the parallel scheduler and the shared
fragment cache can report their behaviour through the same channel.

Thread-safety: the parallel scheduler merges per-firing profilers from
worker threads into shared per-factory and global profilers, so every
mutating or snapshotting method takes the instance lock.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field

#: Counter names used across the engine (any name is accepted).
COUNTER_FIRINGS = "firings"
COUNTER_CACHE_HITS = "fragment_cache_hits"
COUNTER_CACHE_MISSES = "fragment_cache_misses"
#: Overload-control counters (bounded baskets; see docs/OPERATIONS.md).
COUNTER_SHED = "overflow_shed"
COUNTER_BLOCK_WAITS = "overflow_block_waits"
COUNTER_BLOCK_TIMEOUTS = "overflow_block_timeouts"
COUNTER_INGEST_RETRIES = "ingest_retries"
COUNTER_INGEST_DROPPED = "ingest_dropped"
COUNTER_EMIT_RETRIES = "emit_retries"
COUNTER_DEAD_LETTERS = "dead_letter_batches"


@dataclass
class Profiler:
    """Accumulates instruction timings by cost tag and opcode."""

    by_tag: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    by_opcode: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    calls: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    counters: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def __post_init__(self) -> None:
        # RLock: merge_from(other) locks both sides and snapshot() is
        # callable while the same thread holds the lock.
        self._lock = threading.RLock()

    def record(self, tag: str, opcode: str, seconds: float) -> None:
        with self._lock:
            self.by_tag[tag] += seconds
            self.by_opcode[opcode] += seconds
            self.calls[opcode] += 1

    def count(self, counter: str, amount: int = 1) -> None:
        """Bump an integer counter (firings, cache hits, ...)."""
        with self._lock:
            self.counters[counter] += amount

    @property
    def total(self) -> float:
        with self._lock:
            return sum(self.by_tag.values())

    def tag_seconds(self, tag: str) -> float:
        with self._lock:
            return self.by_tag.get(tag, 0.0)

    def counter(self, counter: str) -> int:
        with self._lock:
            return self.counters.get(counter, 0)

    def merge_from(self, other: "Profiler") -> None:
        """Fold another profiler's timings and counters into this one."""
        with other._lock:
            tags = dict(other.by_tag)
            opcodes = dict(other.by_opcode)
            calls = dict(other.calls)
            counters = dict(other.counters)
        with self._lock:
            for tag, seconds in tags.items():
                self.by_tag[tag] += seconds
            for opcode, seconds in opcodes.items():
                self.by_opcode[opcode] += seconds
            for opcode, count in calls.items():
                self.calls[opcode] += count
            for counter, count in counters.items():
                self.counters[counter] += count

    def snapshot(self) -> dict[str, float]:
        """Plain-dict copy of the per-tag totals plus the counters.

        Counter names never collide with cost tags (``main``/``merge``/
        ``admin``), so benchmarks can keep reading tags out of the same
        breakdown dict.
        """
        with self._lock:
            snap: dict[str, float] = dict(self.by_tag)
            snap.update(self.counters)
            return snap

    def reset(self) -> None:
        with self._lock:
            self.by_tag.clear()
            self.by_opcode.clear()
            self.calls.clear()
            self.counters.clear()

"""Tables and the catalog.

A relational table is a collection of head-aligned BATs, one per attribute
(MonetDB's vertical fragmentation).  The catalog tracks persistent tables
and declared stream schemas; stream *contents* live in DataCell baskets
(:mod:`repro.core.basket`), which share the same column representation so a
single query plan can mix both (paper Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.shared_memory import SharedMemory

import numpy as np

from repro.errors import CatalogError, KernelError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT, BATBuilder


@dataclass(frozen=True)
class Schema:
    """Ordered (name, atom) attribute list."""

    columns: tuple[tuple[str, Atom], ...]

    @staticmethod
    def of(*columns: tuple[str, Atom]) -> "Schema":
        return Schema(tuple(columns))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(name for name, __ in self.columns)

    def atom_of(self, name: str) -> Atom:
        for col, atom in self.columns:
            if col == name:
                return atom
        raise CatalogError(f"unknown column {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(col == name for col, __ in self.columns)

    def __len__(self) -> int:
        return len(self.columns)


class Table:
    """A persistent base table: one BATBuilder per attribute."""

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        self._builders = {col: BATBuilder(atom) for col, atom in schema.columns}

    def __len__(self) -> int:
        first = next(iter(self._builders.values()), None)
        return len(first) if first is not None else 0

    @property
    def count(self) -> int:
        return len(self)

    def append_rows(self, rows: Iterable[Sequence]) -> int:
        """Append tuples given in schema column order; returns rows added."""
        names = self.schema.names
        added = 0
        for row in rows:
            if len(row) != len(names):
                raise KernelError(
                    f"row arity {len(row)} != schema arity {len(names)}"
                )
            for name, value in zip(names, row):
                self._builders[name].append(value)
            added += 1
        return added

    def append_columns(self, columns: Mapping[str, Sequence | np.ndarray]) -> int:
        """Bulk append column-wise; all columns must have equal length."""
        lengths = {name: len(vals) for name, vals in columns.items()}
        if set(lengths) != set(self.schema.names):
            raise KernelError(
                f"append_columns needs exactly columns {self.schema.names}"
            )
        unique_lengths = set(lengths.values())
        if len(unique_lengths) > 1:
            raise KernelError(f"ragged column append: {lengths}")
        for name, values in columns.items():
            self._builders[name].extend(values)
        return unique_lengths.pop() if unique_lengths else 0

    def column(self, name: str) -> BAT:
        """Immutable snapshot of one attribute column."""
        if name not in self._builders:
            raise CatalogError(f"table {self.name!r} has no column {name!r}")
        return self._builders[name].snapshot()

    def columns(self) -> dict[str, BAT]:
        """Snapshots of all attribute columns (mutually head-aligned)."""
        return {name: builder.snapshot() for name, builder in self._builders.items()}


@dataclass
class StreamDecl:
    """A declared stream: schema only; tuples flow through baskets."""

    name: str
    schema: Schema


class Catalog:
    """Name → table/stream registry shared by the SQL binder and DataCell."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._streams: dict[str, StreamDecl] = {}

    # -- tables ---------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> Table:
        if name in self._tables or name in self._streams:
            raise CatalogError(f"name {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def tables(self) -> dict[str, Table]:
        """All persistent tables, in creation order."""
        return dict(self._tables)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    # -- streams --------------------------------------------------------
    def create_stream(self, name: str, schema: Schema) -> StreamDecl:
        if name in self._tables or name in self._streams:
            raise CatalogError(f"name {name!r} already exists")
        decl = StreamDecl(name, schema)
        self._streams[name] = decl
        return decl

    def stream(self, name: str) -> StreamDecl:
        try:
            return self._streams[name]
        except KeyError:
            raise CatalogError(f"unknown stream {name!r}") from None

    def has_stream(self, name: str) -> bool:
        return name in self._streams

    def schema_of(self, name: str) -> Schema:
        """Schema of either a table or a stream."""
        if name in self._tables:
            return self._tables[name].schema
        if name in self._streams:
            return self._streams[name].schema
        raise CatalogError(f"unknown relation {name!r}")

    def is_stream(self, name: str) -> bool:
        if name in self._streams:
            return True
        if name in self._tables:
            return False
        raise CatalogError(f"unknown relation {name!r}")


# ----------------------------------------------------------------------
# shared-memory column segments (partitioned execution, DESIGN.md §14)
# ----------------------------------------------------------------------
#
# Fixed-width (numeric/bool) columns of one routed batch are packed
# back-to-back into a single ``multiprocessing.shared_memory`` block so a
# shard worker in another process can map them without a pickle round
# trip; only variable-width (str) columns fall back to pickling.  The
# ownership rule is creator-unlinks: the coordinating engine creates and
# unlinks every segment (after the consuming worker acknowledges the
# copy), so Python's resource tracker never sees a cross-process leak
# and ``/dev/shm`` is provably clean after ``engine.close()``.

@dataclass(frozen=True)
class SegmentMeta:
    """Recipe to reassemble one shared-memory column segment."""

    name: str  # shared_memory block name
    columns: tuple[tuple[str, str, int, int], ...]  # (col, dtype, offset, rows)


def write_segment(
    name: str, columns: Mapping[str, np.ndarray]
) -> tuple[SegmentMeta, "SharedMemory"]:
    """Pack fixed-width arrays into one named shared-memory block.

    Returns the reassembly metadata and the (still-open) block; the
    caller closes its mapping once the message is sent and unlinks after
    the consumer's acknowledgement.  Callers must only pass fixed-width
    dtypes (object columns cannot live in shared memory).
    """
    from multiprocessing import shared_memory

    total = 0
    layout: list[tuple[str, str, int, int]] = []
    arrays: dict[str, np.ndarray] = {}
    for col, values in columns.items():
        arr = np.ascontiguousarray(values)
        if arr.dtype.hasobject:
            raise KernelError(
                f"column {col!r} has an object dtype; object columns "
                "travel pickled, not through shared memory"
            )
        layout.append((col, arr.dtype.str, total, len(arr)))
        arrays[col] = arr
        total += arr.nbytes
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(total, 1))
    for (col, dtype, offset, rows), arr in zip(layout, arrays.values()):
        dest = np.ndarray((rows,), dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
        dest[:] = arr
    return SegmentMeta(name, tuple(layout)), shm


def read_segment(meta: SegmentMeta) -> dict[str, np.ndarray]:
    """Copy a segment's columns out of shared memory and close the mapping.

    The returned arrays are private copies (basket builders keep them far
    beyond the segment's lifetime); the mapping is closed before
    returning, never unlinked — unlinking is the creator's job.
    """
    from multiprocessing import resource_tracker, shared_memory

    # Attaching registers the block with the resource tracker as if this
    # process owned it; it does not — the creator unlinks.  Worse, a
    # fork-inherited tracker is *shared* with the creator, so a late
    # unregister would strip the creator's own registration and its
    # unlink would then crash the tracker.  Suppress the registration at
    # the source instead.  Python 3.13's track=False does this properly;
    # until then this is the documented idiom.
    real_register = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None
    try:
        shm = shared_memory.SharedMemory(name=meta.name)
    finally:
        resource_tracker.register = real_register
    try:
        out: dict[str, np.ndarray] = {}
        for col, dtype, offset, rows in meta.columns:
            view = np.ndarray(
                (rows,), dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
            )
            out[col] = np.array(view, copy=True)
        return out
    finally:
        shm.close()

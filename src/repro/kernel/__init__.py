"""The column-store DBMS kernel substrate (MonetDB analogue).

Provides BAT storage, the columnar algebra, tables/catalog, and the
operator-at-a-time execution engine that DataCell builds on.
"""

from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT, BATBuilder
from repro.kernel.storage import Catalog, Schema, StreamDecl, Table

__all__ = [
    "Atom",
    "BAT",
    "BATBuilder",
    "Catalog",
    "Schema",
    "StreamDecl",
    "Table",
]

"""Atom (scalar type) system of the column-store kernel.

MonetDB calls its scalar types *atoms*.  We support the subset needed by the
DataCell reproduction: 64-bit integers, double-precision floats, booleans,
object identifiers (oids), strings, and microsecond timestamps.

Each atom maps to a numpy dtype used for the tail array of a BAT.  The
module also centralizes type promotion rules used by the calc operators and
by the SQL binder.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import TypeMismatchError


class Atom(enum.Enum):
    """Scalar types storable in a BAT tail."""

    OID = "oid"
    INT = "int"
    FLT = "flt"
    BIT = "bit"
    STR = "str"
    TIMESTAMP = "timestamp"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Atom.{self.name}"


_NUMPY_DTYPES = {
    Atom.OID: np.dtype(np.int64),
    Atom.INT: np.dtype(np.int64),
    Atom.FLT: np.dtype(np.float64),
    Atom.BIT: np.dtype(np.bool_),
    Atom.STR: np.dtype(object),
    Atom.TIMESTAMP: np.dtype(np.int64),
}

_NULL_VALUES = {
    Atom.OID: np.int64(-1),
    Atom.INT: np.int64(np.iinfo(np.int64).min),
    Atom.FLT: np.float64(np.nan),
    Atom.BIT: np.False_,
    Atom.STR: None,
    Atom.TIMESTAMP: np.int64(np.iinfo(np.int64).min),
}

_NUMERIC_ATOMS = frozenset({Atom.INT, Atom.FLT, Atom.OID, Atom.TIMESTAMP})


def numpy_dtype(atom: Atom) -> np.dtype:
    """Return the numpy dtype backing ``atom``."""
    return _NUMPY_DTYPES[atom]


def null_value(atom: Atom):
    """Return the in-band null sentinel for ``atom``."""
    return _NULL_VALUES[atom]


def is_numeric(atom: Atom) -> bool:
    """True if ``atom`` supports arithmetic."""
    return atom in _NUMERIC_ATOMS


def atom_of_dtype(dtype: np.dtype) -> Atom:
    """Map a numpy dtype back to the atom it represents.

    Integer dtypes map to :data:`Atom.INT`; the OID/TIMESTAMP distinction
    only exists at the BAT level where it is carried explicitly.
    """
    kind = np.dtype(dtype).kind
    if kind in "iu":
        return Atom.INT
    if kind == "f":
        return Atom.FLT
    if kind == "b":
        return Atom.BIT
    if kind in "OU":
        return Atom.STR
    raise TypeMismatchError(f"no atom for numpy dtype {dtype!r}")


def atom_of_python(value) -> Atom:
    """Infer the atom of a Python scalar (used for SQL literals)."""
    if isinstance(value, bool):
        return Atom.BIT
    if isinstance(value, (int, np.integer)):
        return Atom.INT
    if isinstance(value, (float, np.floating)):
        return Atom.FLT
    if isinstance(value, str):
        return Atom.STR
    raise TypeMismatchError(f"no atom for python value {value!r}")


def promote(left: Atom, right: Atom) -> Atom:
    """Type promotion for binary arithmetic/comparison operands.

    INT op FLT widens to FLT; TIMESTAMP/OID arithmetic degrades to INT.
    """
    if left == right:
        return left
    if not (is_numeric(left) and is_numeric(right)):
        raise TypeMismatchError(f"cannot promote {left} with {right}")
    if Atom.FLT in (left, right):
        return Atom.FLT
    return Atom.INT


def division_result(left: Atom, right: Atom) -> Atom:
    """SQL-style division always yields FLT for numeric inputs."""
    if not (is_numeric(left) and is_numeric(right)):
        raise TypeMismatchError(f"cannot divide {left} by {right}")
    return Atom.FLT

"""Binary Association Tables (BATs) — the kernel's only collection type.

A BAT models MonetDB's column representation: a *virtual* head of densely
increasing object identifiers (oids) starting at ``hseq``, and a *tail*
holding the actual values in a numpy array.  Every relational table is a set
of head-aligned BATs, one per attribute; every operator result is again a
BAT, which is what lets DataCell cache and reuse intermediates at arbitrary
points of a query plan.

Design notes
------------
* Tails are immutable by convention: operators never mutate an input tail,
  they allocate a new one.  ``np.ndarray.setflags`` is not used so that
  zero-copy slicing (``BAT.slice``) stays cheap; "we are all responsible
  users".
* Candidate lists (selection results) are plain OID BATs whose *tail* holds
  absolute oids into some other BAT.  ``materialize_oids`` + subtraction of
  ``hseq`` turns them into positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import AlignmentError, KernelError, TypeMismatchError
from repro.kernel.atoms import Atom, numpy_dtype


@dataclass(frozen=True)
class BAT:
    """An immutable column: virtual oid head + numpy tail.

    Attributes
    ----------
    tail:
        The values, as a 1-D numpy array.
    atom:
        Logical scalar type of the tail.
    hseq:
        First head oid.  Row ``i`` of the tail is associated with oid
        ``hseq + i``.
    """

    tail: np.ndarray
    atom: Atom
    hseq: int = 0

    def __post_init__(self) -> None:
        if self.tail.ndim != 1:
            raise KernelError("BAT tail must be one-dimensional")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_values(values: Iterable, atom: Atom, hseq: int = 0) -> "BAT":
        """Build a BAT from a Python iterable, coercing to the atom dtype."""
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                         dtype=numpy_dtype(atom))
        return BAT(arr, atom, hseq)

    @staticmethod
    def from_array(arr: np.ndarray, atom: Atom | None = None, hseq: int = 0) -> "BAT":
        """Wrap an existing numpy array (no copy) as a BAT."""
        if atom is None:
            from repro.kernel.atoms import atom_of_dtype

            atom = atom_of_dtype(arr.dtype)
        expected = numpy_dtype(atom)
        if arr.dtype != expected:
            arr = arr.astype(expected)
        return BAT(arr, atom, hseq)

    @staticmethod
    def empty(atom: Atom, hseq: int = 0) -> "BAT":
        """An empty BAT of the given atom."""
        return BAT(np.empty(0, dtype=numpy_dtype(atom)), atom, hseq)

    @staticmethod
    def dense_oids(first: int, count: int, hseq: int = 0) -> "BAT":
        """A candidate list covering oids ``first .. first+count-1``."""
        return BAT(np.arange(first, first + count, dtype=np.int64), Atom.OID, hseq)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.tail.shape[0])

    @property
    def count(self) -> int:
        """Number of rows (MonetDB: BATcount)."""
        return len(self)

    @property
    def hrange(self) -> tuple[int, int]:
        """Half-open head oid range ``[hseq, hseq + count)``."""
        return (self.hseq, self.hseq + len(self))

    def is_empty(self) -> bool:
        return len(self) == 0

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def value(self, position: int):
        """Tail value at a 0-based position."""
        return self.tail[position]

    def positions_of(self, oids: np.ndarray) -> np.ndarray:
        """Translate absolute head oids into 0-based tail positions."""
        positions = np.asarray(oids, dtype=np.int64) - self.hseq
        if len(positions) and (positions.min() < 0 or positions.max() >= len(self)):
            raise AlignmentError(
                f"oids out of range for BAT with hrange {self.hrange}"
            )
        return positions

    def slice(self, start: int, stop: int) -> "BAT":
        """Zero-copy view of positions ``[start, stop)``.

        The slice keeps head alignment: its ``hseq`` is shifted so the
        surviving rows keep their original oids.
        """
        start = max(0, start)
        stop = min(len(self), stop)
        if stop < start:
            stop = start
        return BAT(self.tail[start:stop], self.atom, self.hseq + start)

    def take_positions(self, positions: np.ndarray, hseq: int = 0) -> "BAT":
        """Gather tail values at ``positions`` into a fresh BAT."""
        return BAT(self.tail[positions], self.atom, hseq)

    def rebase(self, hseq: int) -> "BAT":
        """Same tail, new head sequence base."""
        return BAT(self.tail, self.atom, hseq)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def to_list(self) -> list:
        """Tail values as a Python list (tests and emitters)."""
        return self.tail.tolist()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = ", ".join(repr(v) for v in self.tail[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return (
            f"BAT({self.atom.value}, hseq={self.hseq}, count={len(self)}, "
            f"[{preview}{suffix}])"
        )


def require_same_atom(left: BAT, right: BAT) -> Atom:
    """Assert two BATs share an atom and return it."""
    if left.atom != right.atom:
        raise TypeMismatchError(f"atom mismatch: {left.atom} vs {right.atom}")
    return left.atom


def require_aligned(left: BAT, right: BAT) -> None:
    """Assert two BATs are head-aligned (same hseq and count)."""
    if left.hseq != right.hseq or len(left) != len(right):
        raise AlignmentError(
            f"BATs not aligned: {left.hrange} vs {right.hrange}"
        )


@dataclass
class BATBuilder:
    """Amortized append buffer used by baskets and receptors.

    Appending to an immutable BAT would be O(n) per append; the builder
    keeps a growable numpy buffer and snapshots to an immutable BAT view on
    demand.
    """

    atom: Atom
    hseq: int = 0
    _buffer: np.ndarray = field(init=False, repr=False)
    _length: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._buffer = np.empty(16, dtype=numpy_dtype(self.atom))

    def __len__(self) -> int:
        return self._length

    def _grow_to(self, needed: int) -> None:
        capacity = len(self._buffer)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        new = np.empty(capacity, dtype=numpy_dtype(self.atom))
        new[: self._length] = self._buffer[: self._length]
        self._buffer = new

    def append(self, value) -> None:
        """Append one scalar."""
        self._grow_to(self._length + 1)
        self._buffer[self._length] = value
        self._length += 1

    def extend(self, values: Sequence | np.ndarray) -> None:
        """Append many values at once (bulk path used by receptors)."""
        arr = np.asarray(values, dtype=numpy_dtype(self.atom))
        self._grow_to(self._length + len(arr))
        self._buffer[self._length : self._length + len(arr)] = arr
        self._length += len(arr)

    def snapshot(self) -> BAT:
        """An immutable BAT view over the current contents (zero copy)."""
        return BAT(self._buffer[: self._length], self.atom, self.hseq)

    def drop_head(self, count: int) -> None:
        """Delete the ``count`` oldest rows, advancing ``hseq``.

        This is how baskets expire consumed stream tuples.
        """
        count = min(count, self._length)
        if count <= 0:
            return
        remaining = self._length - count
        # Compact in place; the buffer is reused.
        self._buffer[:remaining] = self._buffer[count : self._length]
        self._length = remaining
        self.hseq += count

"""Incremental per-tuple aggregate accumulators.

These are the specialized stream operators of the paper's related work
(stream aggregates with per-tuple add/retract, e.g. [17, 19, 26]): every
accumulator supports ``add(value)`` and ``retract(value)`` so window expiry
can undo a tuple's contribution without recomputation.

MIN/MAX cannot be retracted from a scalar, so they keep a lazy-deletion
heap over a value-count table — the classical bounded-memory trick.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Optional


class SumAccumulator:
    """Retractable SUM."""

    def __init__(self) -> None:
        self.total = 0
        self.count = 0

    def add(self, value) -> None:
        self.total += value
        self.count += 1

    def retract(self, value) -> None:
        self.total -= value
        self.count -= 1

    def value(self):
        return self.total if self.count else None

    def is_empty(self) -> bool:
        return self.count == 0


class CountAccumulator:
    """Retractable COUNT."""

    def __init__(self) -> None:
        self.count = 0

    def add(self, value=None) -> None:
        self.count += 1

    def retract(self, value=None) -> None:
        self.count -= 1

    def value(self) -> int:
        return self.count

    def is_empty(self) -> bool:
        return self.count == 0


class AvgAccumulator:
    """Retractable AVG via (sum, count)."""

    def __init__(self) -> None:
        self.total = 0
        self.count = 0

    def add(self, value) -> None:
        self.total += value
        self.count += 1

    def retract(self, value) -> None:
        self.total -= value
        self.count -= 1

    def value(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def is_empty(self) -> bool:
        return self.count == 0


class _ExtremeAccumulator:
    """Shared machinery for retractable MIN/MAX (lazy-deletion heap)."""

    def __init__(self, sign: int) -> None:
        self._sign = sign  # -1 for max (negate into a min-heap), +1 for min
        self._heap: list = []
        self._counts: Counter = Counter()
        self._size = 0

    def add(self, value) -> None:
        self._counts[value] += 1
        heapq.heappush(self._heap, self._sign * value)
        self._size += 1

    def retract(self, value) -> None:
        self._counts[value] -= 1
        if self._counts[value] <= 0:
            del self._counts[value]
        self._size -= 1

    def value(self):
        while self._heap:
            candidate = self._sign * self._heap[0]
            if self._counts.get(candidate, 0) > 0:
                return candidate
            heapq.heappop(self._heap)  # stale entry (already retracted)
        return None

    def is_empty(self) -> bool:
        return self._size == 0


class MinAccumulator(_ExtremeAccumulator):
    """Retractable MIN."""

    def __init__(self) -> None:
        super().__init__(sign=1)


class MaxAccumulator(_ExtremeAccumulator):
    """Retractable MAX."""

    def __init__(self) -> None:
        super().__init__(sign=-1)


_FACTORIES = {
    "sum": SumAccumulator,
    "count": CountAccumulator,
    "avg": AvgAccumulator,
    "min": MinAccumulator,
    "max": MaxAccumulator,
}


def make_accumulator(func: str):
    """Instantiate the accumulator for an SQL aggregate name."""
    return _FACTORIES[func]()


class GroupedAccumulators:
    """Per-group accumulator bank for GROUP BY aggregation.

    Groups appear on first add and disappear when every member aggregate is
    empty again (tracked via a per-group tuple count).
    """

    def __init__(self, funcs: list[str]) -> None:
        self._funcs = funcs
        self._groups: dict = {}
        self._sizes: Counter = Counter()

    def add(self, key, values: list) -> None:
        bank = self._groups.get(key)
        if bank is None:
            bank = [make_accumulator(func) for func in self._funcs]
            self._groups[key] = bank
        for accumulator, value in zip(bank, values):
            accumulator.add(value)
        self._sizes[key] += 1

    def retract(self, key, values: list) -> None:
        bank = self._groups[key]
        for accumulator, value in zip(bank, values):
            accumulator.retract(value)
        self._sizes[key] -= 1
        if self._sizes[key] <= 0:
            del self._groups[key]
            del self._sizes[key]

    def snapshot(self) -> list[tuple]:
        """(key, [aggregate values...]) per live group, in key order."""
        return [
            (key, [accumulator.value() for accumulator in bank])
            for key, bank in sorted(self._groups.items())
        ]

    def __len__(self) -> int:
        return len(self._groups)

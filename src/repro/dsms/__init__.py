"""SystemX — the specialized tuple-at-a-time stream engine stand-in."""

from repro.dsms.accumulators import (
    AvgAccumulator,
    CountAccumulator,
    GroupedAccumulators,
    MaxAccumulator,
    MinAccumulator,
    SumAccumulator,
    make_accumulator,
)
from repro.dsms.engine import SystemX, SystemXQuery

__all__ = [
    "AvgAccumulator",
    "CountAccumulator",
    "GroupedAccumulators",
    "MaxAccumulator",
    "MinAccumulator",
    "SumAccumulator",
    "SystemX",
    "SystemXQuery",
    "make_accumulator",
]

"""Per-tuple expression evaluation for the specialized engine.

A tuple-at-a-time DSMS interprets scalar expressions once per tuple; this
module compiles the shared SQL AST into nested Python closures over row
tuples.  The per-tuple interpretation overhead (vs the kernel's vectorized
operators) is deliberate: it is exactly the architectural difference the
paper's Figure 9 measures.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import DsmsError
from repro.sql.ast import BinOp, ColumnRef, Expr, FuncCall, Literal, UnaryOp
from repro.sql.binder import Binding

Rows = Mapping[str, tuple]
ScalarFn = Callable[[Rows], object]

def _sql_divide(a, b):
    """SQL division, matching the kernel's ``calc.divide`` semantics:
    the quotient is always float and ``x / 0`` is NULL, represented
    in-band as NaN — never ``None`` (which would poison later arithmetic
    and comparisons) and never an exception.
    """
    if b == 0:
        return float("nan")
    return a / b


_BINOPS: dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _sql_divide,
    "%": lambda a, b: a % b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
}


def compile_scalar(
    expr: Expr,
    binding: Binding,
    index_maps: Mapping[str, Mapping[str, int]],
) -> ScalarFn:
    """Compile ``expr`` to a closure over per-alias row tuples.

    ``index_maps`` gives, per relation alias, the position of each column
    inside that alias's row tuples.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda rows: value
    if isinstance(expr, ColumnRef):
        bound = binding.resolve(expr)
        alias = bound.alias
        try:
            index = index_maps[alias][bound.column]
        except KeyError:
            raise DsmsError(
                f"column {bound.column!r} of {alias!r} not available per tuple"
            ) from None
        return lambda rows: rows[alias][index]
    if isinstance(expr, UnaryOp):
        inner = compile_scalar(expr.operand, binding, index_maps)
        if expr.op == "-":
            return lambda rows: -inner(rows)
        if expr.op == "not":
            return lambda rows: not inner(rows)
        raise DsmsError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinOp):
        left = compile_scalar(expr.left, binding, index_maps)
        right = compile_scalar(expr.right, binding, index_maps)
        try:
            fn = _BINOPS[expr.op]
        except KeyError:
            raise DsmsError(f"unknown operator {expr.op!r}") from None
        return lambda rows: fn(left(rows), right(rows))
    if isinstance(expr, FuncCall):
        raise DsmsError(f"aggregate {expr} cannot be evaluated per tuple")
    raise DsmsError(f"cannot compile expression {expr!r}")


def compile_output_expr(
    expr: Expr,
    columns: Mapping[str, int],
) -> Callable[[tuple], object]:
    """Compile a post-aggregation expression over a named result row.

    Used for HAVING and projected expressions over aggregate outputs
    (``key_i`` / ``agg_i`` synthetic columns).
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ColumnRef):
        if expr.table is not None or expr.name not in columns:
            raise DsmsError(f"unknown output column {expr}")
        index = columns[expr.name]
        return lambda row: row[index]
    if isinstance(expr, UnaryOp):
        inner = compile_output_expr(expr.operand, columns)
        if expr.op == "-":
            return lambda row: -inner(row)
        return lambda row: not inner(row)
    if isinstance(expr, BinOp):
        left = compile_output_expr(expr.left, columns)
        right = compile_output_expr(expr.right, columns)
        fn = _BINOPS[expr.op]
        return lambda row: fn(left(row), right(row))
    raise DsmsError(f"cannot compile output expression {expr!r}")

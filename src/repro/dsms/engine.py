"""SystemX — a specialized tuple-at-a-time stream engine (simulation).

The paper benchmarks DataCell against an unnamed commercial DSMS
("SystemX").  This module is its architectural stand-in: a volcano-style
engine that processes **one tuple at a time** with operator-level
incremental windows — per-tuple filters, symmetric hash joins with probe-
on-arrival/retract-on-expiry, and retractable aggregate accumulators.

It shares the SQL front-end (a real product would have its own parser;
reusing ours keeps the workloads identical) but *none* of the kernel: no
BATs, no vectorized operators, no plan programs.  Its cost profile — low
fixed overhead per window, linear per-tuple interpretation cost — is the
specialized-engine profile Figure 9 contrasts with DataCell's bulk
processing.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.rewriter.analysis import analyze
from repro.core.windows import WindowSpec
from repro.dsms.accumulators import GroupedAccumulators
from repro.dsms.expr import compile_output_expr, compile_scalar
from repro.errors import DsmsError
from repro.kernel.storage import Catalog
from repro.sql.optimizer import optimize
from repro.sql.planner import PlannedQuery, plan_query


@dataclass
class _SideState:
    """Per-stream runtime state of a query.

    Tuples first land in ``pending`` and are *admitted* into the window
    structures only up to the current window boundary, so correctness does
    not depend on how the benchmark interleaves the input streams.
    """

    alias: str
    window: WindowSpec
    filter_fn: Optional[Callable]
    key_fn: Optional[Callable]  # join key (join queries only)
    pending: deque = field(default_factory=deque)
    buffer: deque = field(default_factory=deque)
    hash_table: dict = field(default_factory=dict)
    admitted: int = 0
    emitted: int = 0

    def admission_limit(self) -> int:
        """Tuples allowed into the window before the next emission."""
        if self.window.is_landmark:
            return (self.emitted + 1) * self.window.step
        return self.window.size + self.emitted * self.window.step

    def due(self) -> bool:
        """Has this side admitted a full slide?"""
        return self.admitted >= self.admission_limit()


class SystemXQuery:
    """One registered continuous query inside SystemX."""

    def __init__(self, planned: PlannedQuery, name: str) -> None:
        self.name = name
        self.planned = planned
        shape = analyze(planned)
        self._shape = shape
        binding = planned.binding
        if shape.table is not None:
            raise DsmsError("SystemX does not join streams with stored tables")
        for stream in shape.streams:
            if stream.window.time_based:
                raise DsmsError("the SystemX simulation supports count-based windows")

        index_maps = {
            s.alias: {col: i for i, (col, __) in enumerate(s.scan.schema)}
            for s in shape.streams
        }
        self._sides: dict[str, _SideState] = {}
        for stream in shape.streams:
            filter_fn = (
                compile_scalar(stream.predicate, binding, index_maps)
                if stream.predicate is not None
                else None
            )
            self._sides[stream.alias] = _SideState(
                stream.alias, stream.window, filter_fn, None
            )
        self._residual_fn = (
            compile_scalar(shape.residual, binding, index_maps)
            if shape.residual is not None
            else None
        )

        self._is_join = shape.is_join
        if self._is_join:
            assert shape.join is not None
            left_alias = binding.resolve(shape.join.left_key).alias
            right_alias = binding.resolve(shape.join.right_key).alias
            self._left_alias, self._right_alias = left_alias, right_alias
            self._sides[left_alias].key_fn = compile_scalar(
                shape.join.left_key, binding, index_maps
            )
            self._sides[right_alias].key_fn = compile_scalar(
                shape.join.right_key, binding, index_maps
            )

        aggregate = shape.aggregate
        self._aggregate = aggregate
        if aggregate is not None:
            self._key_fns = [
                compile_scalar(key, binding, index_maps) for key in aggregate.keys
            ]
            self._arg_fns = [
                compile_scalar(spec.arg, binding, index_maps)
                if spec.arg is not None
                else (lambda rows: 1)
                for spec in aggregate.aggs
            ]
            self._funcs = [spec.func for spec in aggregate.aggs]
            self._accs = GroupedAccumulators(self._funcs)
            columns = {f"key_{i}": i for i in range(len(aggregate.keys))}
            for i, spec in enumerate(aggregate.aggs):
                columns[spec.out] = len(aggregate.keys) + i
            self._synthetic_columns = columns
        else:
            self._item_fns = [
                compile_scalar(expr, binding, index_maps)
                for expr, __ in shape.project.items
            ]
            self._pair_counter: Counter = Counter()
            columns = {name: i for i, (__, name) in enumerate(shape.project.items)}
            self._synthetic_columns = columns

        self._having_fn = (
            compile_output_expr(shape.having, self._synthetic_columns)
            if shape.having is not None
            else None
        )
        if aggregate is not None:
            self._project_fns = [
                compile_output_expr(expr, self._synthetic_columns)
                for expr, __ in shape.project.items
            ]
        else:
            self._project_fns = None  # projection happened per tuple
        out_columns = {
            name: i
            for i, (name, __) in enumerate(planned.plan.output_columns())
        }
        self._order_keys = (
            [(out_columns[name], desc) for name, desc in shape.order.keys]
            if shape.order is not None
            else None
        )
        self._limit = shape.limit.count if shape.limit is not None else None
        self.output_names = [name for name, __ in planned.plan.output_columns()]
        self.results: list[list[tuple]] = []
        self.tuples_processed = 0

    # ------------------------------------------------------------------
    # per-tuple path
    # ------------------------------------------------------------------
    def push(self, alias: str, row: tuple) -> None:
        """Accept one arriving tuple and advance the query if possible."""
        self._sides[alias].pending.append(row)
        self._advance()

    def _advance(self) -> None:
        """Admit pending tuples up to window boundaries; emit due windows."""
        while True:
            for side in self._sides.values():
                limit = side.admission_limit()
                while side.admitted < limit and side.pending:
                    self._admit(side, side.pending.popleft())
            if not all(side.due() for side in self._sides.values()):
                return
            self.results.append(self._emit())
            for side in self._sides.values():
                side.emitted += 1
                if not side.window.is_landmark:
                    self._expire(side)

    def _admit(self, side: _SideState, row: tuple) -> None:
        """The volcano per-tuple path: filter, probe, accumulate."""
        side.admitted += 1
        self.tuples_processed += 1
        alias = side.alias
        rows = {alias: row}
        qualifies = side.filter_fn is None or bool(side.filter_fn(rows))
        if not self._is_join:
            entry = self._single_add(rows) if qualifies else None
            if not side.window.is_landmark:
                side.buffer.append(entry)
            elif self._aggregate is None and entry is not None:
                side.buffer.append(entry)  # landmark select-only keeps output
        else:
            entry = row if qualifies else None
            if qualifies:
                self._join_probe(alias, row)
                key = side.key_fn(rows)
                side.hash_table.setdefault(key, deque()).append(row)
            side.buffer.append(entry)

    def _single_add(self, rows: dict) -> Optional[tuple]:
        if self._aggregate is not None:
            key = tuple(fn(rows) for fn in self._key_fns)
            values = [fn(rows) for fn in self._arg_fns]
            self._accs.add(key, values)
            return (key, tuple(values))
        return tuple(fn(rows) for fn in self._item_fns)

    def _join_probe(self, alias: str, row: tuple) -> None:
        other_alias = (
            self._right_alias if alias == self._left_alias else self._left_alias
        )
        other = self._sides[other_alias]
        side = self._sides[alias]
        key = side.key_fn({alias: row})
        matches = other.hash_table.get(key)
        if not matches:
            return
        for other_row in matches:
            if alias == self._left_alias:
                self._pair(row, other_row, retract=False)
            else:
                self._pair(other_row, row, retract=False)

    def _pair(self, left_row: tuple, right_row: tuple, retract: bool) -> None:
        rows = {self._left_alias: left_row, self._right_alias: right_row}
        if self._residual_fn is not None and not bool(self._residual_fn(rows)):
            return
        if self._aggregate is not None:
            key = tuple(fn(rows) for fn in self._key_fns)
            values = [fn(rows) for fn in self._arg_fns]
            if retract:
                self._accs.retract(key, values)
            else:
                self._accs.add(key, values)
        else:
            projected = tuple(fn(rows) for fn in self._item_fns)
            self._pair_counter[projected] += -1 if retract else 1
            if self._pair_counter[projected] == 0:
                del self._pair_counter[projected]

    # ------------------------------------------------------------------
    # emission & expiry
    # ------------------------------------------------------------------
    def _expire(self, side: _SideState) -> None:
        for __ in range(side.window.step):
            entry = side.buffer.popleft()
            if entry is None:
                continue
            if self._is_join:
                self._join_expire(side, entry)
            elif self._aggregate is not None:
                key, values = entry
                self._accs.retract(key, list(values))
            # select-only single stream: dropping from the buffer IS expiry

    def _join_expire(self, side: _SideState, row: tuple) -> None:
        key = side.key_fn({side.alias: row})
        bucket = side.hash_table[key]
        bucket.popleft()  # FIFO expiry matches arrival order
        if not bucket:
            del side.hash_table[key]
        other_alias = (
            self._right_alias
            if side.alias == self._left_alias
            else self._left_alias
        )
        other = self._sides[other_alias]
        matches = other.hash_table.get(key)
        if not matches:
            return
        for other_row in matches:
            if side.alias == self._left_alias:
                self._pair(row, other_row, retract=True)
            else:
                self._pair(other_row, row, retract=True)

    def _emit(self) -> list[tuple]:
        if self._aggregate is not None:
            rows = []
            for key, values in self._accs.snapshot():
                rows.append(tuple(key) + tuple(values))
            if not rows and not self._aggregate.keys and all(
                func == "count" for func in self._funcs
            ):
                rows = [tuple(0 for __ in self._funcs)]
            if self._having_fn is not None:
                rows = [row for row in rows if self._having_fn(row)]
            assert self._project_fns is not None
            rows = [tuple(fn(row) for fn in self._project_fns) for row in rows]
        elif self._is_join:
            rows = [row for row, n in self._pair_counter.items() for __ in range(n)]
            rows.sort()
        else:
            side = next(iter(self._sides.values()))
            rows = [entry for entry in side.buffer if entry is not None]
        if self._shape.distinct:
            rows = sorted(set(rows))
        if self._order_keys is not None:
            for index, descending in reversed(self._order_keys):
                rows.sort(key=lambda row: row[index], reverse=descending)
        if self._limit is not None:
            rows = rows[: self._limit]
        return rows


class SystemX:
    """The specialized engine: streams, queries, per-tuple ingestion."""

    def __init__(self, catalog: Optional[Catalog] = None) -> None:
        self.catalog = catalog if catalog is not None else Catalog()
        self._queries: list[SystemXQuery] = []
        self._routes: dict[str, list[tuple[SystemXQuery, str]]] = {}
        self._counter = 0

    def create_stream(self, name: str, schema) -> None:
        """Declare a stream (same Schema type as the kernel catalog)."""
        self.catalog.create_stream(name, schema)
        self._routes.setdefault(name, [])

    def submit(self, sql: str, name: Optional[str] = None) -> SystemXQuery:
        """Register a continuous query built from the shared SQL subset."""
        self._counter += 1
        planned = optimize(plan_query(sql, self.catalog))
        query = SystemXQuery(planned, name or f"xq{self._counter}")
        self._queries.append(query)
        for stream in query._shape.streams:
            self._routes.setdefault(stream.scan.relation, []).append(
                (query, stream.alias)
            )
        return query

    def push(self, stream: str, row: Sequence) -> None:
        """Ingest one tuple — each registered query processes it in turn."""
        row = tuple(row)
        for query, alias in self._routes.get(stream, []):
            query.push(alias, row)

    def push_many(self, stream: str, rows) -> None:
        routes = self._routes.get(stream, [])
        for raw in rows:
            row = tuple(raw)
            for query, alias in routes:
                query.push(alias, row)

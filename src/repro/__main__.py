"""``python -m repro`` — launch the DataCell console."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

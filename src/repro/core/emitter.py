"""Emitters — the egress edge of the DataCell architecture (Figure 1).

An emitter is a result sink: the scheduler hands it every
:class:`~repro.core.factory.ResultBatch` a factory produces.  Four
implementations cover the delivery spectrum:

* :class:`CollectingEmitter` — thread-safe in-memory retention (what
  :meth:`ContinuousQuery.results` reads); optionally ring-bounded via
  ``keep_last``;
* :class:`CallbackEmitter` — forwards each batch to client code (the
  example applications' "clients");
* :class:`CsvEmitter` — appends result rows to a CSV file, the egress
  twin of the CSV ingestion path;
* :class:`RetryingEmitter` — a robustness wrapper around any of the
  above (or any external sink): a sink exception is retried with
  exponential backoff, and once retries are exhausted the batch lands in
  a *dead-letter* collector instead of propagating into the scheduler —
  so a flaky downstream never kills the factory that produced the
  result.  Retry and dead-letter counts surface through the profiler
  counter channel (``emit_retries`` / ``dead_letter_batches``).

A sink is just a callable ``(factory_name, batch) -> None``; the scheduler
treats a raised exception as a firing failure, which is exactly why
external deliveries should go through :class:`RetryingEmitter`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.core.factory import ResultBatch
from repro.kernel.execution.profiler import (
    COUNTER_DEAD_LETTERS,
    COUNTER_EMIT_RETRIES,
    Profiler,
)


class CollectingEmitter:
    """Thread-safe in-memory result collector."""

    def __init__(self, keep_last: Optional[int] = None) -> None:
        self._lock = threading.Lock()
        self._batches: list[ResultBatch] = []  # guarded-by: _lock
        self._keep_last = keep_last
        self.total_batches = 0  # guarded-by: _lock
        self.total_rows = 0  # guarded-by: _lock

    def __call__(self, factory_name: str, batch: ResultBatch) -> None:
        with self._lock:
            self.total_batches += 1
            self.total_rows += len(batch)
            self._batches.append(batch)
            if self._keep_last is not None and len(self._batches) > self._keep_last:
                del self._batches[: len(self._batches) - self._keep_last]

    def batches(self) -> list[ResultBatch]:
        with self._lock:
            return list(self._batches)

    def last(self) -> Optional[ResultBatch]:
        with self._lock:
            return self._batches[-1] if self._batches else None

    def clear(self) -> None:
        with self._lock:
            self._batches.clear()

    def snapshot_state(self) -> dict:
        """Serializable image for checkpointing (see repro.core.durability)."""
        with self._lock:
            return {
                "total_batches": self.total_batches,
                "total_rows": self.total_rows,
                "batches": [
                    {
                        "names": list(batch.names),
                        "columns": dict(batch.columns),
                        "window_index": batch.window_index,
                        "response_seconds": batch.response_seconds,
                        "breakdown": dict(batch.breakdown),
                    }
                    for batch in self._batches
                ],
            }

    def restore_state(self, state: dict) -> None:
        with self._lock:
            self.total_batches = state["total_batches"]
            self.total_rows = state["total_rows"]
            self._batches = [
                ResultBatch(
                    names=list(entry["names"]),
                    columns=entry["columns"],
                    window_index=entry["window_index"],
                    response_seconds=entry["response_seconds"],
                    breakdown=entry["breakdown"],
                )
                for entry in state["batches"]
            ]


class CallbackEmitter:
    """Forwards each batch to a user callback."""

    def __init__(self, callback: Callable[[ResultBatch], None]) -> None:
        self._callback = callback

    def __call__(self, factory_name: str, batch: ResultBatch) -> None:
        self._callback(batch)


class CsvEmitter:
    """Appends every result row to a CSV file.

    The symmetric counterpart of the CSV ingestion path: result windows
    stream out to a file a downstream client can tail.  Each row is
    prefixed with the window index so clients can segment windows.
    Thread-safe; remember to :meth:`close` (or use as a context manager).
    """

    def __init__(self, path, write_header: bool = True) -> None:
        self._lock = threading.Lock()
        self._file = open(path, "w")
        self._write_header = write_header
        self._header_written = False  # guarded-by: _lock
        self.rows_written = 0  # guarded-by: _lock

    def __call__(self, factory_name: str, batch: ResultBatch) -> None:
        with self._lock:
            if self._write_header and not self._header_written:
                self._file.write(",".join(["window"] + batch.names) + "\n")
                self._header_written = True
            for row in batch.rows():
                self._file.write(
                    ",".join([str(batch.window_index)] + [str(v) for v in row])
                )
                self._file.write("\n")
                self.rows_written += 1
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            self._file.close()

    def __enter__(self) -> "CsvEmitter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RetryingEmitter:
    """Shields the scheduler from a failing downstream sink.

    Wraps any result sink; each batch is attempted ``1 + max_retries``
    times with exponential backoff (``backoff``, doubling per attempt).
    When every attempt fails the batch is routed to the ``dead_letter``
    sink (default: an internal :class:`CollectingEmitter`, readable via
    :meth:`dead_letters`) together with the last exception in
    ``last_error`` — and crucially the exception does **not** propagate,
    so the factory's firing succeeds and the stream keeps flowing.

    ``profiler`` (optional) receives ``emit_retries`` and
    ``dead_letter_batches`` counts; the plain attributes ``retries`` and
    ``dead_lettered`` track the same numbers for profiler-less use.
    """

    def __init__(
        self,
        sink: Callable[[str, ResultBatch], None],
        max_retries: int = 3,
        backoff: float = 0.005,
        dead_letter: Optional[Callable[[str, ResultBatch], None]] = None,
        profiler: Optional[Profiler] = None,
    ) -> None:
        self._sink = sink
        self.max_retries = max_retries
        self.backoff = backoff
        self._dead_letter = (
            dead_letter if dead_letter is not None else CollectingEmitter()
        )
        self._profiler = profiler
        self._lock = threading.Lock()
        self.retries = 0  # guarded-by: _lock
        self.dead_lettered = 0  # guarded-by: _lock
        self.last_error: Optional[BaseException] = None  # guarded-by: _lock

    def __call__(self, factory_name: str, batch: ResultBatch) -> None:
        delay = self.backoff
        error: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            try:
                self._sink(factory_name, batch)
                return
            except Exception as exc:
                error = exc
                if attempt < self.max_retries:
                    with self._lock:
                        self.retries += 1
                    if self._profiler is not None:
                        self._profiler.count(COUNTER_EMIT_RETRIES)
                    time.sleep(delay)
                    delay *= 2
        with self._lock:
            self.dead_lettered += 1
            self.last_error = error
        if self._profiler is not None:
            self._profiler.count(COUNTER_DEAD_LETTERS)
        self._dead_letter(factory_name, batch)

    def dead_letters(self) -> list[ResultBatch]:
        """Batches that exhausted their retries (when the default
        dead-letter collector is in use)."""
        if isinstance(self._dead_letter, CollectingEmitter):
            return self._dead_letter.batches()
        raise TypeError("custom dead-letter sink: read it directly")

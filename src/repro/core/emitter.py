"""Emitters — the egress edge of the DataCell architecture (Figure 1).

An emitter is a result sink: the scheduler hands it every
:class:`~repro.core.factory.ResultBatch` a factory produces.  The default
collecting emitter retains batches for inspection; a callback emitter
forwards them to client code (the example applications' "clients").
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.core.factory import ResultBatch


class CollectingEmitter:
    """Thread-safe in-memory result collector."""

    def __init__(self, keep_last: Optional[int] = None) -> None:
        self._lock = threading.Lock()
        self._batches: list[ResultBatch] = []
        self._keep_last = keep_last
        self.total_batches = 0
        self.total_rows = 0

    def __call__(self, factory_name: str, batch: ResultBatch) -> None:
        with self._lock:
            self.total_batches += 1
            self.total_rows += len(batch)
            self._batches.append(batch)
            if self._keep_last is not None and len(self._batches) > self._keep_last:
                del self._batches[: len(self._batches) - self._keep_last]

    def batches(self) -> list[ResultBatch]:
        with self._lock:
            return list(self._batches)

    def last(self) -> Optional[ResultBatch]:
        with self._lock:
            return self._batches[-1] if self._batches else None

    def clear(self) -> None:
        with self._lock:
            self._batches.clear()


class CallbackEmitter:
    """Forwards each batch to a user callback."""

    def __init__(self, callback: Callable[[ResultBatch], None]) -> None:
        self._callback = callback

    def __call__(self, factory_name: str, batch: ResultBatch) -> None:
        self._callback(batch)


class CsvEmitter:
    """Appends every result row to a CSV file.

    The symmetric counterpart of the CSV ingestion path: result windows
    stream out to a file a downstream client can tail.  Each row is
    prefixed with the window index so clients can segment windows.
    Thread-safe; remember to :meth:`close` (or use as a context manager).
    """

    def __init__(self, path, write_header: bool = True) -> None:
        self._lock = threading.Lock()
        self._file = open(path, "w")
        self._write_header = write_header
        self._header_written = False
        self.rows_written = 0

    def __call__(self, factory_name: str, batch: ResultBatch) -> None:
        with self._lock:
            if self._write_header and not self._header_written:
                self._file.write(",".join(["window"] + batch.names) + "\n")
                self._header_written = True
            for row in batch.rows():
                self._file.write(
                    ",".join([str(batch.window_index)] + [str(v) for v in row])
                )
                self._file.write("\n")
                self.rows_written += 1
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            self._file.close()

    def __enter__(self) -> "CsvEmitter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Factories — resumable continuous-query executors.

A factory encloses a rewritten (or re-evaluation) query plan and produces
one result batch per window slide, exactly like the paper's co-routines:
it consumes basic windows from its input baskets, caches/reuses partial
results, and runs the merge machinery (paper Algorithm 2, generalized).

Two implementations share the interface:

* :class:`IncrementalFactory` — the paper's contribution (split /
  replicate / merge / transition, per-pair join replication, landmark
  compaction, optional m-chunk processing);
* :class:`ReevalFactory` lives in :mod:`repro.core.reevaluate` — the
  DataCellR baseline that recomputes the full window every slide.

Factories are driven synchronously by the scheduler (or benchmarks):
``ready()`` is the Petri-net firing condition, ``step()`` one transition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.basket import Basket
from repro.core.landmark import SpillingStore
from repro.core.partials import Bundle, FragmentCache, PairStore, PartialStore, ShareKey
from repro.core.rewriter.incremental import IncrementalPlan, packed, prep_slot
from repro.errors import SchedulerError, UnsupportedQueryError
from repro.kernel.algebra.setops import concat
from repro.kernel.bat import BAT
from repro.kernel.execution.backends import make_backend
from repro.kernel.execution.profiler import Profiler
from repro.kernel.execution.program import TAG_MERGE
from repro.kernel.storage import Table
from repro.sql.physical import scan_slot


@dataclass
class ResultBatch:
    """One window's result: named, aligned output columns."""

    names: list[str]
    columns: dict[str, BAT]
    window_index: int
    response_seconds: float
    breakdown: dict[str, float] = field(default_factory=dict)

    def rows(self) -> list[tuple]:
        """The result as Python row tuples (tests, emitters)."""
        if not self.names:
            return []
        cols = [self.columns[name].to_list() for name in self.names]
        return list(zip(*cols))

    def column(self, name: str) -> list:
        return self.columns[name].to_list()

    def __len__(self) -> int:
        if not self.names:
            return 0
        return len(self.columns[self.names[0]])


class _TimeSlicer:
    """Tracks time-based basic-window boundaries for one stream."""

    def __init__(self, step_us: int) -> None:
        self.step_us = step_us
        self.origin: Optional[int] = None
        self.consumed_windows = 0

    def observe(self, basket: Basket) -> None:
        if self.origin is None and len(basket):
            self.origin = int(basket.timestamps().tail[0])

    def boundary(self, index: int) -> int:
        assert self.origin is not None
        return self.origin + (index + 1) * self.step_us

    @property
    def next_boundary(self) -> Optional[int]:
        if self.origin is None:
            return None
        return self.boundary(self.consumed_windows)


class FactoryBase:
    """Common interface of continuous-query executors."""

    name: str

    def ready(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def step(self, profiler: Optional[Profiler] = None) -> Optional[ResultBatch]:
        raise NotImplementedError  # pragma: no cover - interface

    def consumed_total(self) -> int:
        """Monotonic count of stream tuples this factory has consumed.

        The scheduler differences it around a firing to report tuples
        consumed per span; the base offset is irrelevant, only deltas.
        """
        return 0

    def baskets(self) -> tuple[Basket, ...]:
        """The input baskets feeding this factory (observability hooks)."""
        return ()

    #: Time-based basic-window slicers by stream alias; both factory
    #: implementations populate this in their constructors.
    _slicers: dict[str, _TimeSlicer] = {}

    def anchor_time(self, origin: int) -> None:
        """Pin every time-based slicer's window origin.

        Normally a slicer anchors itself at the first tuple that lands in
        its basket.  Under partitioned execution each partition sees only
        a subset of the stream, so per-basket anchoring would misalign
        window boundaries across partitions; the coordinator broadcasts
        one shared origin (0 for the virtual count axis, the stream's
        first arrival timestamp otherwise) before any data arrives.
        Idempotent: an already-anchored slicer keeps its origin.
        """
        for slicer in self._slicers.values():
            if slicer.origin is None:
                slicer.origin = origin


class IncrementalFactory(FactoryBase):
    """Executes an :class:`IncrementalPlan` over baskets.

    The transition phase of the paper (shifting ``res1 = res2 ...``) is
    realized by sequence-numbered partial stores; expiry *is* the shift.
    """

    def __init__(
        self,
        plan: IncrementalPlan,
        baskets: dict[str, Basket],
        tables: Optional[dict[str, Table]] = None,
        name: str = "factory",
        backend: str = "interpreted",
    ) -> None:
        self.name = name
        self.plan = plan
        self._baskets = baskets
        self._tables = tables or {}
        self._interp = make_backend(backend)
        self._initialized = False
        self.window_index = 0
        # Cross-query fragment sharing (single-stream queries only): the
        # engine wires a shared cache + key; ``_consumed`` tracks this
        # factory's position on the stream's global arrival axis so basic
        # windows can be addressed by (start offset, tuple count).
        self._fragment_cache: Optional[FragmentCache] = None
        self._share_key: Optional[ShareKey] = None
        self._consumed: dict[str, int] = {alias: 0 for alias in plan.stream_aliases}
        self._slicers: dict[str, _TimeSlicer] = {}
        for alias, window in plan.windows.items():
            if alias not in baskets:
                raise SchedulerError(f"no basket bound for stream {alias!r}")
            if window.time_based:
                self._slicers[alias] = _TimeSlicer(window.step)
        if plan.is_join:
            capacities = {
                alias: plan.windows[alias].basic_windows
                for alias in plan.stream_aliases
            }
            self._prep_stores = {
                alias: PartialStore(capacities[alias]) for alias in plan.stream_aliases
            }
            left, right = self._pair_aliases()
            self._pairs = PairStore(
                capacities.get(left, 0), capacities.get(right, 0)
            )
            self._table_bundle: Optional[Bundle] = None
        else:
            alias = plan.stream_aliases[0]
            self._store = PartialStore(plan.windows[alias].basic_windows)

    # ------------------------------------------------------------------
    # readiness (Petri-net firing condition)
    # ------------------------------------------------------------------
    def consumed_total(self) -> int:
        return sum(self._consumed.values())

    def baskets(self) -> tuple[Basket, ...]:
        return tuple(self._baskets.values())

    def ready(self) -> bool:
        return all(self._stream_ready(alias) for alias in self.plan.stream_aliases)

    def _stream_ready(self, alias: str) -> bool:
        window = self.plan.windows[alias]
        basket = self._baskets[alias]
        if window.time_based:
            slicer = self._slicers[alias]
            slicer.observe(basket)
            watermark = basket.max_timestamp()
            if watermark is None or slicer.origin is None:
                return False
            if not self._initialized and not window.is_landmark:
                return watermark >= slicer.origin + window.size
            boundary = slicer.next_boundary
            return boundary is not None and watermark >= boundary
        needed = self._needed_tuples(alias)
        return len(basket) >= needed

    def _needed_tuples(self, alias: str) -> int:
        window = self.plan.windows[alias]
        if window.is_landmark or self._initialized:
            return window.step
        return window.size  # first full window

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, profiler: Optional[Profiler] = None) -> Optional[ResultBatch]:
        """Consume one slide's worth of input and emit the window result."""
        if not self.ready():
            return None
        profiler = profiler if profiler is not None else Profiler()
        start = time.perf_counter()
        if self.plan.is_join:
            self._step_join(profiler)
        else:
            self._step_single(profiler)
        batch = self._merge_and_finalize(profiler)
        batch.response_seconds = time.perf_counter() - start
        batch.breakdown = profiler.tags()
        self.window_index += 1
        batch.window_index = self.window_index
        self._initialized = True
        return batch

    # -- fragment sharing ---------------------------------------------------
    def enable_fragment_sharing(
        self, cache: FragmentCache, key: ShareKey, base_offset: int = 0
    ) -> None:
        """Share per-basic-window fragment bundles through ``cache``.

        ``base_offset`` is the stream's global tuple count at the moment
        this factory's basket was bound, so spans line up with factories
        registered earlier.  Single-stream plans only.
        """
        if self.plan.is_join:
            raise UnsupportedQueryError("fragment sharing needs a single stream")
        alias = self.plan.stream_aliases[0]
        self._fragment_cache = cache
        self._share_key = key
        self._consumed[alias] = base_offset

    def disable_fragment_sharing(self) -> None:
        """Stop consulting the shared cache (e.g. a receptor now feeds
        this factory's basket directly, so spans no longer describe the
        same data across queries)."""
        self._fragment_cache = None
        self._share_key = None

    @property
    def shares_fragments(self) -> bool:
        return self._fragment_cache is not None

    # -- single stream ------------------------------------------------------
    def _step_single(self, profiler: Profiler) -> None:
        alias = self.plan.stream_aliases[0]
        for start, cols in self._take_basic_windows(alias):
            bundle = self._fragment_bundle(alias, start, cols, profiler)
            self._store.add(bundle)

    def _fragment_bundle(
        self, alias: str, start: int, cols: dict[str, BAT], profiler: Profiler
    ) -> Bundle:
        """One basic window's bundle, shared across queries when enabled."""
        if self._fragment_cache is None:
            return self._run_fragment(alias, cols, profiler)
        count = len(next(iter(cols.values()))) if cols else 0
        return self._fragment_cache.get_or_compute(
            self._share_key,
            (start, count),
            lambda: self._run_fragment(alias, cols, profiler),
            profiler,
        )

    def _take_basic_windows(self, alias: str) -> list[tuple[int, dict[str, BAT]]]:
        """Slice (and consume) the basic windows owed for this step.

        Returns ``(global start offset, columns)`` per basic window; the
        offset addresses the slice on the stream's arrival axis (for the
        shared fragment cache).
        """
        basket = self._baskets[alias]
        columns = self.plan.scan_columns[alias]
        slices: list[tuple[int, dict[str, BAT]]] = []
        counts = self._owed_counts(alias)
        with basket.locked():
            for count in counts:
                # Materialize each slice: delete_head compacts the basket's
                # buffers in place, which would corrupt zero-copy views.
                slices.append(
                    (
                        self._consumed[alias],
                        {
                            scan_slot(alias, col): BAT(
                                np.array(bat.tail, copy=True), bat.atom, bat.hseq
                            )
                            for col, bat in basket.head_slice(count, columns).items()
                        },
                    )
                )
                basket.delete_head(count)
                self._consumed[alias] += count
        return slices

    def _owed_counts(self, alias: str) -> list[int]:
        """Tuple counts of the basic windows to consume this step."""
        window = self.plan.windows[alias]
        basket = self._baskets[alias]
        if window.time_based:
            slicer = self._slicers[alias]
            counts = []
            owed = 1
            if not self._initialized and not window.is_landmark:
                owed = window.basic_windows
            consumed = 0  # count_before counts from the basket head
            for __ in range(owed):
                boundary = slicer.boundary(slicer.consumed_windows)
                total = basket.count_before(boundary)
                counts.append(total - consumed)
                consumed = total
                slicer.consumed_windows += 1
            return counts
        if window.is_landmark or self._initialized:
            return [window.step]
        return [window.step] * window.basic_windows

    def _run_fragment(
        self, alias: str, cols: dict[str, BAT], profiler: Profiler
    ) -> Bundle:
        assert self.plan.fragment is not None
        outputs = self._interp.run(self.plan.fragment, cols, profiler)
        return {
            flow.name: outputs[slot]
            for flow, slot in zip(self.plan.flows, self.plan.fragment.outputs)
        }

    # -- joins ------------------------------------------------------
    def _pair_aliases(self) -> tuple[str, str]:
        """(left, right) aliases of the pair fragment's inputs."""
        aliases = list(self.plan.stream_aliases)
        if self.plan.table_alias is not None:
            aliases.append(self.plan.table_alias)
        return aliases[0], aliases[1]

    def _step_join(self, profiler: Profiler) -> None:
        left_alias, right_alias = self._pair_aliases()
        new_bundles: dict[str, list[int]] = {}
        for alias in self.plan.stream_aliases:
            store = self._prep_stores[alias]
            seqs = []
            for __, cols in self._take_basic_windows(alias):
                bundle = self._run_prep(alias, cols, profiler)
                seqs.append(store.add(bundle))
            new_bundles[alias] = seqs

        if self.plan.table_alias is not None and self._table_bundle is None:
            self._table_bundle = self._run_table_prep(profiler)

        pairs = self._new_pairs(left_alias, right_alias, new_bundles)
        for left_seq, right_seq in pairs:
            left_bundle = self._side_bundle(left_alias, left_seq)
            right_bundle = self._side_bundle(right_alias, right_seq)
            bundle = self._run_pair(left_alias, left_bundle, right_alias, right_bundle, profiler)
            self._pairs.add(left_seq, right_seq, bundle)
        self._expire_pairs(left_alias, right_alias)

    def _side_bundle(self, alias: str, seq: int) -> Bundle:
        if alias == self.plan.table_alias:
            assert self._table_bundle is not None
            return self._table_bundle
        return self._prep_stores[alias].bundle(seq)

    def _new_pairs(
        self,
        left_alias: str,
        right_alias: str,
        new_bundles: dict[str, list[int]],
    ) -> list[tuple[int, int]]:
        """Pairs whose result is not cached yet (newest × live, both ways)."""
        pairs: list[tuple[int, int]] = []
        new_left = set(new_bundles.get(left_alias, []))
        new_right = set(new_bundles.get(right_alias, []))
        left_seqs = self._side_seqs(left_alias)
        right_seqs = self._side_seqs(right_alias)
        for lseq in left_seqs:
            for rseq in right_seqs:
                if lseq in new_left or rseq in new_right:
                    pairs.append((lseq, rseq))
        return pairs

    def _side_seqs(self, alias: str) -> list[int]:
        if alias == self.plan.table_alias:
            return [0]
        return self._prep_stores[alias].live_seqs()

    def _expire_pairs(self, left_alias: str, right_alias: str) -> None:
        def newest(alias: str) -> int:
            if alias == self.plan.table_alias:
                return 0
            seq = self._prep_stores[alias].newest_seq
            return seq if seq is not None else 0

        self._pairs.expire(newest(left_alias), newest(right_alias))

    def _run_prep(
        self, alias: str, cols: dict[str, BAT], profiler: Profiler
    ) -> Bundle:
        spec = self.plan.preps[alias]
        outputs = self._interp.run(spec.program, cols, profiler)
        return {
            column: outputs[slot]
            for column, slot in zip(spec.columns, spec.program.outputs)
        }

    def _run_table_prep(self, profiler: Profiler) -> Bundle:
        alias = self.plan.table_alias
        assert alias is not None
        table = self._tables[alias]
        spec = self.plan.preps[alias]
        cols = {
            scan_slot(alias, col): table.column(col)
            for col in self.plan.scan_columns[alias]
        }
        outputs = self._interp.run(spec.program, cols, profiler)
        return {
            column: outputs[slot]
            for column, slot in zip(spec.columns, spec.program.outputs)
        }

    def _run_pair(
        self,
        left_alias: str,
        left_bundle: Bundle,
        right_alias: str,
        right_bundle: Bundle,
        profiler: Profiler,
    ) -> Bundle:
        assert self.plan.pair_fragment is not None
        inputs: dict[str, BAT] = {}
        for column, bat in left_bundle.items():
            inputs[prep_slot(left_alias, column)] = bat
        for column, bat in right_bundle.items():
            inputs[prep_slot(right_alias, column)] = bat
        outputs = self._interp.run(self.plan.pair_fragment, inputs, profiler)
        return {
            flow.name: outputs[slot]
            for flow, slot in zip(self.plan.flows, self.plan.pair_fragment.outputs)
        }

    # -- merge ------------------------------------------------------
    def _live_bundles(self) -> list[Bundle]:
        if self.plan.is_join:
            return [bundle for __, bundle in self._pairs.live()]
        return [bundle for __, bundle in self._store.live()]

    def _pack_flows(self, bundles: list[Bundle], profiler: Profiler) -> dict[str, BAT]:
        """Concatenate each flow's partials across live bundles."""
        packed_cols: dict[str, BAT] = {}
        for flow in self.plan.flows:
            start = time.perf_counter()
            packed_cols[packed(flow.name)] = concat(
                [bundle[flow.name] for bundle in bundles]
            )
            profiler.record(TAG_MERGE, "mat.pack", time.perf_counter() - start)
        return packed_cols

    def _merge_and_finalize(self, profiler: Profiler) -> ResultBatch:
        bundles = self._live_bundles()
        if not bundles:
            raise SchedulerError("no live partials to merge")
        packed_cols = self._pack_flows(bundles, profiler)
        combined = self._interp.run(self.plan.combine, packed_cols, profiler)
        bundle = {flow.name: combined[flow.name] for flow in self.plan.flows}
        if self._compactable and not self._spilling:
            # A spilling store manages its own folding (hot-suffix
            # compaction + cold runs); collapsing to the combined bundle
            # here would pull every spilled byte back into memory.
            self._compact_landmark(bundle)
        outputs = self._interp.run(self.plan.finalize, bundle, profiler)
        columns = {
            name: outputs[slot]
            for name, slot in zip(self.plan.output_names, self.plan.finalize.outputs)
        }
        return ResultBatch(
            names=list(self.plan.output_names),
            columns=columns,
            window_index=self.window_index,
            response_seconds=0.0,
        )

    @property
    def _is_landmark(self) -> bool:
        return any(w.is_landmark for w in self.plan.windows.values())

    @property
    def _spilling(self) -> bool:
        return not self.plan.is_join and isinstance(self._store, SpillingStore)

    # -- bounded-memory landmark state (cold-history spill) -------------
    def enable_landmark_spill(
        self,
        spill_dir: str,
        budget_bytes: int,
        fault_hook=None,
        profiler: Optional[Profiler] = None,
    ) -> None:
        """Swap the unbounded landmark store for a bounded spilling one.

        Single-stream all-landmark plans only: joins keep per-pair
        partials whose expiry the spill store does not model.  Must be
        enabled before the factory consumes any input.
        """
        if self.plan.is_join or not self._compactable:
            raise UnsupportedQueryError(
                "landmark spilling needs a single-stream landmark window"
            )
        if len(self._store):
            raise SchedulerError(
                "cannot enable landmark spilling on a non-empty store"
            )
        self._store = SpillingStore(
            spill_dir,
            budget_bytes,
            fold=self._fold_bundles,
            fault_hook=fault_hook,
            profiler=profiler,
        )

    def _fold_bundles(self, bundles: list[Bundle]) -> Bundle:
        """Fold a bundle prefix through the combine program.

        Sound for any prefix: combine is an associative n-ary merge by
        construction — it runs over a varying number of live bundles
        every firing, and landmark compaction already feeds its output
        back as a later input — so pre-merging cold history preserves
        the final merged result bit-for-bit.
        """
        profiler = Profiler()
        packed_cols = self._pack_flows(bundles, profiler)
        combined = self._interp.run(self.plan.combine, packed_cols, profiler)
        return {flow.name: combined[flow.name] for flow in self.plan.flows}

    def set_fault_hook(self, hook) -> None:
        """Install (or clear) the fault-injection hook on the spill store."""
        if self._spilling:
            self._store.fault_hook = hook

    def landmark_spill_stats(self) -> Optional[dict]:
        """Spill gauges when this factory runs a spilling landmark store."""
        if self._spilling:
            return self._store.stats()
        return None

    def prune_spill(self) -> None:
        """Drop spill files not referenced by the current run list.

        Called once after a restore: a crash may leave behind run files
        written after the snapshot (they are regenerated deterministically
        under the same names during journal-driven replay, so anything
        unreferenced by then is garbage) and ``.tmp`` leftovers.
        """
        if self._spilling:
            self._store._prune_unreferenced()

    @property
    def _compactable(self) -> bool:
        """Landmark compaction collapses all partials into one cumulative
        bundle, which is only sound when *no* stream input ever expires —
        a landmark ⋈ sliding join must keep per-pair partials so the
        sliding side's expiry can drop stale pairs (found by `repro
        fuzz`: the compacted bundle froze pairs built from basic windows
        that later slid out of focus)."""
        return all(w.is_landmark for w in self.plan.windows.values())

    def _compact_landmark(self, bundle: Bundle) -> None:
        """Replace all cached partials with the cumulative combined bundle."""
        if self.plan.is_join:
            left_alias, right_alias = self._pair_aliases()
            newest_left = (
                0
                if left_alias == self.plan.table_alias
                else (self._prep_stores[left_alias].newest_seq or 0)
            )
            newest_right = (
                0
                if right_alias == self.plan.table_alias
                else (self._prep_stores[right_alias].newest_seq or 0)
            )
            self._pairs.replace_all(dict(bundle), (newest_left, newest_right))
        else:
            self._store.replace_all(dict(bundle))

    # ------------------------------------------------------------------
    # durability (checkpoint/restore)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable execution state (see :mod:`repro.core.durability`).

        Everything a freshly-submitted twin of this query needs to
        continue mid-stream: the window counter, per-alias consumed
        offsets, time-slicer anchors, and the partial stores.  The cached
        table bundle is *not* captured — it is recomputed lazily from the
        restored base tables on the first post-restore join step.
        """
        state: dict = {
            "window_index": self.window_index,
            "initialized": self._initialized,
            "consumed": dict(self._consumed),
            "slicers": {
                alias: [slicer.origin, slicer.consumed_windows]
                for alias, slicer in self._slicers.items()
            },
        }
        if self.plan.is_join:
            state["prep_stores"] = {
                alias: store.snapshot_state()
                for alias, store in self._prep_stores.items()
            }
            state["pairs"] = self._pairs.snapshot_state()
        else:
            state["store"] = self._store.snapshot_state()
        return state

    def restore_state(self, state: dict) -> None:
        """Adopt a snapshot's execution state (inverse of the above)."""
        self.window_index = state["window_index"]
        self._initialized = state["initialized"]
        self._consumed = {
            alias: int(offset) for alias, offset in state["consumed"].items()
        }
        for alias, (origin, consumed_windows) in state["slicers"].items():
            slicer = self._slicers[alias]
            slicer.origin = origin
            slicer.consumed_windows = consumed_windows
        if self.plan.is_join:
            for alias, store in self._prep_stores.items():
                store.restore_state(state["prep_stores"][alias])
            self._pairs.restore_state(state["pairs"])
            self._table_bundle = None
        else:
            self._store.restore_state(state["store"])

    # ------------------------------------------------------------------
    # landmark reset (paper §3 "Landmark Window Queries": tuples expire
    # "at most very infrequently, and then all past tuples expire by
    # resetting the global landmark")
    # ------------------------------------------------------------------
    def reset_landmark(self) -> None:
        """Move the landmark to now: discard all accumulated partials.

        The next result covers only tuples arriving after the reset.  Only
        valid for queries whose *every* window is landmark: on a mixed
        landmark ⋈ sliding join the reset would also discard the sliding
        side's partials — windows that have not expired and must keep
        contributing — so that shape is rejected instead of silently
        corrupting the sliding state.
        """
        if not self._is_landmark:
            raise UnsupportedQueryError("reset_landmark needs a landmark window")
        if not self._compactable:
            raise UnsupportedQueryError(
                "reset_landmark on a landmark/sliding join would discard the "
                "sliding side's live partials; resubmit the query instead"
            )
        if self.plan.is_join:
            for alias, store in self._prep_stores.items():
                capacity = self.plan.windows[alias].basic_windows
                self._prep_stores[alias] = PartialStore(capacity)
            left, right = self._pair_aliases()
            self._pairs = PairStore(
                self.plan.windows[left].basic_windows if left in self.plan.windows else 0,
                self.plan.windows[right].basic_windows if right in self.plan.windows else 0,
            )
        elif self._spilling:
            self._store.reset()  # drops hot state and spilled runs alike
        else:
            alias = self.plan.stream_aliases[0]
            self._store = PartialStore(self.plan.windows[alias].basic_windows)
        for alias, slicer in self._slicers.items():
            # Re-anchor time slicing at the next arrival after the reset.
            remaining = self._baskets[alias]
            slicer.origin = None
            slicer.consumed_windows = 0
            slicer.observe(remaining)

    # ------------------------------------------------------------------
    # m-chunk optimization (paper §3 "Optimized Incremental Plans")
    # ------------------------------------------------------------------
    def step_chunked(
        self, m: int, profiler: Optional[Profiler] = None
    ) -> Optional[ResultBatch]:
        """One slide processing the newest basic window in ``m`` chunks.

        Chunks 0..m-2 model work done *while tuples stream in*; only the
        last chunk plus all merging counts toward the reported response
        time — exactly the latency the paper's Figure 8 measures.  The
        chunk results are themselves merged with the *combine* program
        (bundle closure), then handled like a normal basic-window partial.

        Only single-stream count-based sliding queries support chunking.
        """
        if self.plan.is_join:
            raise UnsupportedQueryError("m-chunk processing needs a single stream")
        alias = self.plan.stream_aliases[0]
        window = self.plan.windows[alias]
        if window.time_based or window.is_landmark:
            raise UnsupportedQueryError(
                "m-chunk processing needs a count-based sliding window"
            )
        if m < 1:
            raise UnsupportedQueryError("m must be >= 1")
        if not self.ready():
            return None
        if not self._initialized:
            return self.step(profiler)  # preface: plain initial window
        profiler = profiler if profiler is not None else Profiler()
        basket = self._baskets[alias]
        columns = self.plan.scan_columns[alias]
        step_size = window.step
        m = min(m, step_size)
        chunk = step_size // m
        sizes = [chunk] * m
        sizes[-1] += step_size - chunk * m
        chunk_bundles: list[Bundle] = []
        pre_profiler = Profiler()
        # Chunk slices are not basic-window aligned, so the shared fragment
        # cache is bypassed — but the consumed offset still advances so a
        # later plain step() addresses its spans correctly.
        with basket.locked():
            for size in sizes[:-1]:
                cols = {
                    scan_slot(alias, col): bat
                    for col, bat in basket.head_slice(size, columns).items()
                }
                chunk_bundles.append(self._run_fragment(alias, cols, pre_profiler))
                basket.delete_head(size)
                self._consumed[alias] += size
            # ---- response-time window starts with the last chunk ----
            start = time.perf_counter()
            cols = {
                scan_slot(alias, col): bat
                for col, bat in basket.head_slice(sizes[-1], columns).items()
            }
            chunk_bundles.append(self._run_fragment(alias, cols, profiler))
            basket.delete_head(sizes[-1])
            self._consumed[alias] += sizes[-1]
        if m > 1:
            packed_cols = self._pack_flows(chunk_bundles, profiler)
            combined = self._interp.run(self.plan.combine, packed_cols, profiler)
            bw_bundle = {flow.name: combined[flow.name] for flow in self.plan.flows}
        else:
            bw_bundle = chunk_bundles[0]
        self._store.add(bw_bundle)
        batch = self._merge_and_finalize(profiler)
        batch.response_seconds = time.perf_counter() - start
        batch.breakdown = profiler.tags()
        self.window_index += 1
        batch.window_index = self.window_index
        return batch

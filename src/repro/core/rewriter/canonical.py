"""Canonical fingerprints of per-basic-window fragment programs.

Two continuous queries can share one fragment computation per basic window
iff their fragments are the *same function of the same stream columns* —
regardless of the slot names the per-query compilers happened to generate
(prefixes, instruction counters, scan aliases all differ between
otherwise-identical queries).

:func:`fragment_fingerprint` therefore alpha-renames a fragment into a
canonical form before hashing:

* input slots are renamed to the *stream column* they bind
  (``s1__x2`` → ``in:x2``) — the alias disappears, the column stays;
* every slot defined by an instruction is renamed ``v0, v1, ...`` in
  definition order (programs are straight-line single-assignment, a
  discipline checked by :mod:`repro.analysis.dataflow`, so definition
  order is canonical);
* literals are kept verbatim (repr + type, so ``1`` ≠ ``1.0`` ≠ ``"1"``);
* declared outputs are listed in order under their canonical names.

The SHA-256 of that text is the fingerprint.  Alpha-equivalent fragments
hash equal; fragments differing in any constant, opcode, column binding or
output arity hash apart.
"""

from __future__ import annotations

import hashlib
from typing import Mapping

from repro.kernel.execution.program import Lit, Program, Ref


def canonical_text(program: Program, input_names: Mapping[str, str]) -> str:
    """The canonical (alpha-renamed) listing of ``program``.

    ``input_names`` maps each program input slot to its stable external
    name (for fragments: the stream column the factory binds to the slot).
    Raises ``KeyError`` if an input slot has no stable name and
    ``ValueError`` if the program reads an undefined slot (i.e. it would
    not pass the dataflow checks).
    """
    rename: dict[str, str] = {}
    for slot in program.inputs:
        rename[slot] = f"in:{input_names[slot]}"
    lines = [
        "inputs " + " ".join(rename[slot] for slot in program.inputs),
    ]
    fresh = 0
    for instr in program.instructions:
        args = []
        for operand in instr.args:
            if isinstance(operand, Ref):
                if operand.name not in rename:
                    raise ValueError(
                        f"{instr.opcode} reads undefined slot {operand.name!r}"
                    )
                args.append(rename[operand.name])
            else:
                assert isinstance(operand, Lit)
                args.append(f"lit:{type(operand.value).__name__}:{operand.value!r}")
        outs = []
        for out in instr.outs:
            if out in rename:
                raise ValueError(f"slot {out!r} assigned twice; not canonicalizable")
            rename[out] = f"v{fresh}"
            fresh += 1
            outs.append(rename[out])
        lines.append(f"{' '.join(outs)} := {instr.opcode}({', '.join(args)})")
    outputs = []
    for out in program.outputs:
        if out not in rename:
            raise ValueError(f"program output {out!r} is never defined")
        outputs.append(rename[out])
    lines.append("outputs " + " ".join(outputs))
    return "\n".join(lines)


def fragment_fingerprint(program: Program, input_names: Mapping[str, str]) -> str:
    """Stable hash of a fragment program modulo slot naming."""
    text = canonical_text(program, input_names)
    return hashlib.sha256(text.encode()).hexdigest()

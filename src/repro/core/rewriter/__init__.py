"""The DataCell incremental plan rewriter (the paper's contribution)."""

from repro.core.rewriter.analysis import PlanShape, analyze
from repro.core.rewriter.flows import AggPlanEntry, Flow, plan_aggregate_flows
from repro.core.rewriter.incremental import (
    IncrementalPlan,
    PrepSpec,
    packed,
    prep_slot,
    rewrite,
)

__all__ = [
    "AggPlanEntry",
    "Flow",
    "IncrementalPlan",
    "PlanShape",
    "PrepSpec",
    "analyze",
    "packed",
    "plan_aggregate_flows",
    "prep_slot",
    "rewrite",
]

"""Construction of incremental plans (the paper's plan rewriter, §3).

Given an optimized plan, :func:`rewrite` produces an :class:`IncrementalPlan`
holding up to four small programs:

* *fragment* (single-stream) or *preps* + *pair fragment* (join queries) —
  the replicated part, run once per new basic window / per new basic-window
  pair, producing a *bundle* of flow columns (``main`` cost tag);
* *combine* — merges packed flow partials back into one bundle
  (concatenation + compensation; ``merge`` tag).  Crucially, combine is
  *closed over bundles*: its output is again a valid partial bundle, which
  is what makes landmark compaction and the m-chunk optimization reuse it;
* *finalize* — turns a combined bundle into the window result (AVG division,
  HAVING, projection, DISTINCT/ORDER BY/LIMIT; ``merge`` tag).

The factory (:mod:`repro.core.factory`) owns the runtime side: slicing
basic windows out of baskets, caching bundles in partial stores, packing
live partials and running combine+finalize each slide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.rewriter.analysis import PlanShape, analyze
from repro.core.rewriter.flows import (
    AggPlanEntry,
    Flow,
    GLOBAL_COMBINE,
    GLOBAL_FRAGMENT,
    GROUPED_COMBINE,
    GROUPED_FRAGMENT,
    plan_aggregate_flows,
)
from repro.core.windows import WindowSpec
from repro.errors import UnsupportedQueryError
from repro.kernel.atoms import Atom
from repro.kernel.execution.program import Program, Ref, TAG_MERGE
from repro.sql.ast import ColumnRef, walk
from repro.sql.logical import LScan
from repro.sql.optimizer.rules import eliminate_dead_code
from repro.sql.physical import BaseRows, ColRows, PlanCompiler, Rows
from repro.sql.planner import PlannedQuery


def packed(flow_name: str) -> str:
    """Input-slot name of a flow's packed partials in the combine program."""
    return f"packed_{flow_name}"


def prep_slot(alias: str, column: str) -> str:
    """Slot name of a prepped (filtered) column in the pair fragment."""
    return f"prep_{alias}__{column}"


@dataclass
class PrepSpec:
    """Per-stream preprocessing of a join query: filter + column narrowing.

    The prep runs once per new basic window; its outputs are cached until
    the basic window expires (the paper: selection results "need to be kept
    and joined with newly arriving data until the respective basic windows
    expire").
    """

    alias: str
    program: Program
    columns: list[str]  # column names, in program-output order


@dataclass
class IncrementalPlan:
    """A rewritten continuous query plan, ready to be run by a factory."""

    # metadata
    output_names: list[str]
    output_atoms: list[Atom]
    flows: list[Flow]
    grouped: bool
    # stream geometry
    stream_aliases: list[str]
    stream_relations: dict[str, str]
    windows: dict[str, WindowSpec]
    scan_columns: dict[str, list[str]]  # alias -> basket columns the plan reads
    table_alias: Optional[str] = None
    table_relation: Optional[str] = None
    # single-stream shape
    fragment: Optional[Program] = None
    # join shape
    preps: dict[str, PrepSpec] = field(default_factory=dict)
    pair_fragment: Optional[Program] = None
    # shared tail
    combine: Program = field(default_factory=Program)
    finalize: Program = field(default_factory=Program)

    @property
    def is_join(self) -> bool:
        return self.pair_fragment is not None

    def describe(self) -> str:
        """Readable dump of all programs (EXPLAIN CONTINUOUS)."""
        parts = []
        if self.fragment is not None:
            parts.append("== fragment (per basic window) ==\n" + self.fragment.pretty())
        for alias, prep in self.preps.items():
            parts.append(f"== prep[{alias}] (per basic window) ==\n" + prep.program.pretty())
        if self.pair_fragment is not None:
            parts.append(
                "== pair fragment (per basic-window pair) ==\n"
                + self.pair_fragment.pretty()
            )
        parts.append("== combine (per slide) ==\n" + self.combine.pretty())
        parts.append("== finalize (per slide) ==\n" + self.finalize.pretty())
        return "\n\n".join(parts)


# ----------------------------------------------------------------------
# fragment construction helpers
# ----------------------------------------------------------------------
def _ensure_owned(compiler: PlanCompiler, slot: str) -> str:
    """Copy a slot if it aliases a program input.

    Bundles outlive the basket snapshots they were computed from (baskets
    compact in place on expiry), so any flow that would be a zero-copy view
    of an input column is materialized.
    """
    if slot in compiler.program.inputs:
        return compiler.emit("bat.materialize", [Ref(slot)], "own")
    return slot


def _emit_partial_flows(
    compiler: PlanCompiler,
    rows: Rows,
    shape: PlanShape,
    entries: list[AggPlanEntry],
) -> dict[str, str]:
    """Emit the partial computation for one basic window (or pair).

    Returns flow name → slot.  This is the part of the original plan that
    replicates (paper: "simple concatenation" operators run here in full;
    aggregations run in their partial form).
    """
    out: dict[str, str] = {}
    aggregate = shape.aggregate
    if aggregate is None:
        # Select-only query: the whole projection is map-like, replicate it.
        crows = compiler.compile_project(shape.project, rows)
        for name, slot in crows.slots.items():
            out[name] = _ensure_owned(compiler, slot)
        return out
    if aggregate.keys:
        key_slots = [
            compiler.expr_slot(key, rows, atom)
            for key, atom in zip(aggregate.keys, aggregate.key_atoms)
        ]
        gids, extents, ngroups = compiler.emit_multi(
            "group.group", [Ref(s) for s in key_slots], ["gids", "ext", "ng"]
        )
        for index, key_slot in enumerate(key_slots):
            out[f"key_{index}"] = compiler.emit(
                "algebra.projection", [Ref(extents), Ref(key_slot)], f"key{index}"
            )
        for entry in entries:
            for flow in entry.flows:
                opcode = GROUPED_FRAGMENT[flow.kind]
                arg = compiler.agg_arg_slot(entry.spec, rows, gids)
                out[flow.name] = compiler.emit(
                    opcode, [Ref(arg), Ref(gids), Ref(ngroups)], flow.name
                )
        return out
    for entry in entries:
        for flow in entry.flows:
            opcode = GLOBAL_FRAGMENT[flow.kind]
            arg = compiler.agg_arg_slot(entry.spec, rows, None)
            out[flow.name] = compiler.emit(opcode, [Ref(arg)], flow.name)
    return out


def _referenced_columns(shape: PlanShape, binding) -> dict[str, list[str]]:
    """Columns of each relation referenced above the per-stream filters."""
    exprs = []
    if shape.join is not None:
        exprs += [shape.join.left_key, shape.join.right_key]
    if shape.residual is not None:
        exprs.append(shape.residual)
    if shape.aggregate is not None:
        exprs += list(shape.aggregate.keys)
        exprs += [a.arg for a in shape.aggregate.aggs if a.arg is not None]
    else:
        exprs += [expr for expr, __ in shape.project.items]
    needed: dict[str, list[str]] = {}
    for expr in exprs:
        for ref in walk(expr):
            if isinstance(ref, ColumnRef):
                try:
                    bound = binding.resolve(ref)
                except Exception:
                    continue  # synthetic post-aggregation names
                cols = needed.setdefault(bound.alias, [])
                if bound.column not in cols:
                    cols.append(bound.column)
    return needed


# ----------------------------------------------------------------------
# combine / finalize
# ----------------------------------------------------------------------
def _build_combine(flows: list[Flow], grouped: bool) -> Program:
    program = Program(
        inputs=tuple(packed(f.name) for f in flows),
        outputs=tuple(f.name for f in flows),
    )
    if grouped:
        gkeys = [f for f in flows if f.kind == "gkey"]
        program.emit(
            "group.group",
            [Ref(packed(k.name)) for k in gkeys],
            ["__gids", "__ext", "__ng"],
            tag=TAG_MERGE,
        )
        for key in gkeys:
            program.emit(
                "algebra.projection",
                [Ref("__ext"), Ref(packed(key.name))],
                [key.name],
                tag=TAG_MERGE,
            )
        for flow in flows:
            if flow.kind == "gkey":
                continue
            program.emit(
                GROUPED_COMBINE[flow.kind],
                [Ref(packed(flow.name)), Ref("__gids"), Ref("__ng")],
                [flow.name],
                tag=TAG_MERGE,
            )
    elif any(f.kind in GLOBAL_COMBINE for f in flows):
        for flow in flows:
            program.emit(
                GLOBAL_COMBINE[flow.kind],
                [Ref(packed(flow.name))],
                [flow.name],
                tag=TAG_MERGE,
            )
    else:  # pure concatenation (select-only queries, Figure 3a)
        for flow in flows:
            program.emit(
                "bat.id", [Ref(packed(flow.name))], [flow.name], tag=TAG_MERGE
            )
    program.validate()
    return program


def _build_finalize(
    shape: PlanShape,
    planned: PlannedQuery,
    flows: list[Flow],
    entries: list[AggPlanEntry],
) -> tuple[Program, list[str], list[Atom]]:
    compiler = PlanCompiler(planned.binding, tag=TAG_MERGE, prefix="z")
    compiler.program.inputs = tuple(f.name for f in flows)
    aggregate = shape.aggregate
    if aggregate is None:
        crows = ColRows({f.name: f.name for f in flows})
    else:
        flow_slots = {f.name: f.name for f in flows}
        if not aggregate.keys and flows:
            # Global aggregates: enforce the all-or-nothing result row.
            aligned = compiler.emit_multi(
                "aggr.align",
                [Ref(f.name) for f in flows],
                [f"{f.name}_al" for f in flows],
            )
            flow_slots = dict(zip((f.name for f in flows), aligned))
        slots: dict[str, str] = {}
        for index in range(len(aggregate.keys)):
            slots[f"key_{index}"] = flow_slots[f"key_{index}"]
        for entry in entries:
            action = entry.finalize
            if action[0] == "flow":
                slots[entry.spec.out] = flow_slots[action[1]]
            else:  # ("div", sum_flow, count_flow) — AVG
                slots[entry.spec.out] = compiler.emit(
                    "calc.div",
                    [Ref(flow_slots[action[1]]), Ref(flow_slots[action[2]])],
                    entry.spec.out,
                )
        crows = ColRows(slots)
        if shape.having is not None:
            crows = compiler.compile_filter(shape.having, crows)
        crows = compiler.compile_project(shape.project, crows)
    if shape.distinct:
        crows = compiler.compile_distinct(crows)
    if shape.order is not None:
        crows = compiler.compile_order(shape.order, crows)
    if shape.limit is not None:
        crows = compiler.compile_limit(shape.limit, crows)
    names = [name for name, __ in planned.plan.output_columns()]
    atoms = [atom for __, atom in planned.plan.output_columns()]
    compiler.program.outputs = tuple(crows.slots[name] for name in names)
    compiler.program.validate()
    # Re-map outputs so the factory can address them by logical name.
    return compiler.program, names, atoms


# ----------------------------------------------------------------------
# the rewriter entry point
# ----------------------------------------------------------------------
def rewrite(planned: PlannedQuery) -> IncrementalPlan:
    """Rewrite an optimized plan into an incremental one.

    Raises :class:`UnsupportedQueryError` for queries outside the
    rewritable class (the caller can still fall back to re-evaluation).
    """
    shape = analyze(planned)

    grouped = bool(shape.aggregate and shape.aggregate.keys)
    entries: list[AggPlanEntry] = []
    flows: list[Flow] = []
    if shape.aggregate is not None:
        agg_flows, entries = plan_aggregate_flows(shape.aggregate.aggs, grouped)
        if grouped:
            flows += [Flow(f"key_{i}", "gkey") for i in range(len(shape.aggregate.keys))]
        flows += agg_flows
    else:
        flows = [Flow(name, "pack") for __, name in shape.project.items]

    plan = IncrementalPlan(
        output_names=[],
        output_atoms=[],
        flows=flows,
        grouped=grouped,
        stream_aliases=[s.alias for s in shape.streams],
        stream_relations={s.alias: s.scan.relation for s in shape.streams},
        windows={s.alias: s.window for s in shape.streams},
        scan_columns={},
    )
    if shape.table is not None:
        plan.table_alias = shape.table.alias
        plan.table_relation = shape.table.scan.relation

    if shape.is_join:
        _build_join_fragments(plan, shape, planned, entries)
    else:
        _build_single_fragment(plan, shape, planned, entries)

    plan.combine = _build_combine(flows, grouped)
    plan.finalize, plan.output_names, plan.output_atoms = _build_finalize(
        shape, planned, flows, entries
    )
    # Cleanup pass: the per-column compilers can leave slots no flow reads
    # (pruned expressions, unused join sides); the factory addresses every
    # surviving slot through program outputs, so liveness roots are exact.
    programs = [plan.fragment, plan.pair_fragment, plan.combine, plan.finalize]
    programs += [prep.program for prep in plan.preps.values()]
    for program in programs:
        if program is not None:
            eliminate_dead_code(program)
    return plan


def _scan_columns(scan: LScan) -> list[str]:
    columns = [name for name, __ in scan.output_columns()]
    if not columns:
        columns = [scan.schema[0][0]]
    return columns


def _build_single_fragment(
    plan: IncrementalPlan,
    shape: PlanShape,
    planned: PlannedQuery,
    entries: list[AggPlanEntry],
) -> None:
    stream = shape.streams[0]
    compiler = PlanCompiler(planned.binding, prefix="f")
    rows = compiler.rows_for_scan(stream.scan)
    if stream.predicate is not None:
        rows = compiler.compile_filter(stream.predicate, rows)
    flow_slots = _emit_partial_flows(compiler, rows, shape, entries)
    compiler.program.outputs = tuple(flow_slots[f.name] for f in plan.flows)
    compiler.program.validate()
    plan.fragment = compiler.program
    plan.scan_columns[stream.alias] = _scan_columns(stream.scan)


def _build_join_fragments(
    plan: IncrementalPlan,
    shape: PlanShape,
    planned: PlannedQuery,
    entries: list[AggPlanEntry],
) -> None:
    assert shape.join is not None
    binding = planned.binding
    needed = _referenced_columns(shape, binding)

    sides = list(shape.streams) + ([shape.table] if shape.table else [])
    base_rows: dict[str, BaseRows] = {}
    for side in sides:
        alias = side.alias
        columns = needed.get(alias, [])
        if not columns:  # always carry something to size the join input
            columns = [_scan_columns(side.scan)[0]]
        compiler = PlanCompiler(binding, prefix=f"p_{alias}")
        rows = compiler.rows_for_scan(side.scan)
        if side.predicate is not None:
            rows = compiler.compile_filter(side.predicate, rows)
        out_slots = []
        for column in columns:
            slot = compiler.column(rows, ColumnRef(alias, column))
            out_slots.append(_ensure_owned(compiler, slot))
        compiler.program.outputs = tuple(out_slots)
        compiler.program.validate()
        plan.preps[alias] = PrepSpec(alias, compiler.program, list(columns))
        plan.scan_columns[alias] = _scan_columns(side.scan)

    pair = PlanCompiler(binding, prefix="j")
    for side in sides:
        alias = side.alias
        slots = {}
        for column in plan.preps[alias].columns:
            slot = prep_slot(alias, column)
            pair.declare_input(slot)
            slots[column] = slot
        base_rows[alias] = BaseRows(alias, slots)

    left_alias = _leaf_alias(shape.join.left)
    right_alias = _leaf_alias(shape.join.right)
    rows: Rows = pair.compile_join(
        shape.join, base_rows[left_alias], base_rows[right_alias]
    )
    if shape.residual is not None:
        rows = pair.compile_filter(shape.residual, rows)
    flow_slots = _emit_partial_flows(pair, rows, shape, entries)
    pair.program.outputs = tuple(flow_slots[f.name] for f in plan.flows)
    pair.program.validate()
    plan.pair_fragment = pair.program


def _leaf_alias(node) -> str:
    from repro.sql.logical import LFilter

    while isinstance(node, LFilter):
        node = node.child
    if not isinstance(node, LScan):  # pragma: no cover - analyze() checked
        raise UnsupportedQueryError("join input is not a base relation")
    return node.alias

"""Decomposition of optimized plans into the incremental rewrite shape.

The rewriter consumes the canonical plan produced by the planner/optimizer
and splits it at the deepest point where replication per basic window stays
valid (paper §3: "split the plan as deep as possible").  For the supported
query class that point is immediately *below* the first non-distributable
operator:

* the final merge of a (grouped or global) aggregation, or
* for select-only queries, the DISTINCT/ORDER BY/LIMIT block (map-like
  projection itself replicates freely).

The analysis yields a :class:`PlanShape` naming the pieces; program
construction happens in :mod:`repro.core.rewriter.incremental`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.windows import WindowSpec
from repro.errors import UnsupportedQueryError
from repro.sql.ast import Expr
from repro.sql.logical import (
    LAggregate,
    LDistinct,
    LFilter,
    LJoin,
    LLimit,
    LOrder,
    LProject,
    LScan,
    LogicalNode,
)
from repro.sql.planner import PlannedQuery


@dataclass
class StreamInput:
    """One stream leaf of the plan with its window and pushed-down filter."""

    scan: LScan
    predicate: Optional[Expr]
    window: WindowSpec

    @property
    def alias(self) -> str:
        return self.scan.alias


@dataclass
class TableInput:
    """A static (non-stream) leaf in a hybrid stream⋈table query."""

    scan: LScan
    predicate: Optional[Expr]

    @property
    def alias(self) -> str:
        return self.scan.alias


@dataclass
class PlanShape:
    """The decomposed canonical plan."""

    streams: list[StreamInput]
    table: Optional[TableInput]
    join: Optional[LJoin]
    residual: Optional[Expr]  # post-join, pre-aggregation filter
    aggregate: Optional[LAggregate]
    having: Optional[Expr]
    project: LProject
    distinct: bool
    order: Optional[LOrder]
    limit: Optional[LLimit]

    @property
    def is_join(self) -> bool:
        return self.join is not None


def _strip_filter(node: LogicalNode) -> tuple[LogicalNode, Optional[Expr]]:
    if isinstance(node, LFilter):
        return node.child, node.predicate
    return node, None


def analyze(planned: PlannedQuery) -> PlanShape:
    """Decompose ``planned`` or raise :class:`UnsupportedQueryError`."""
    node = planned.plan

    limit = None
    if isinstance(node, LLimit):
        limit = node
        node = node.child
    order = None
    if isinstance(node, LOrder):
        order = node
        node = node.child
    distinct = False
    if isinstance(node, LDistinct):
        distinct = True
        node = node.child
    if not isinstance(node, LProject):
        raise UnsupportedQueryError(
            f"unexpected plan root {type(node).__name__} (expected Project)"
        )
    project = node
    node = project.child

    having = None
    aggregate = None
    if isinstance(node, LFilter) and isinstance(node.child, LAggregate):
        having = node.predicate
        node = node.child
    if isinstance(node, LAggregate):
        aggregate = node
        node = node.child

    node, residual = _strip_filter(node)

    streams: list[StreamInput] = []
    table: Optional[TableInput] = None
    join: Optional[LJoin] = None
    if isinstance(node, LJoin):
        join = node
        for side in (node.left, node.right):
            leaf, predicate = _strip_filter(side)
            if not isinstance(leaf, LScan):
                raise UnsupportedQueryError("join inputs must be base relations")
            if leaf.is_stream:
                streams.append(
                    StreamInput(leaf, predicate, _window_of(leaf))
                )
            else:
                if table is not None:
                    raise UnsupportedQueryError(
                        "continuous queries need at least one stream input"
                    )
                table = TableInput(leaf, predicate)
    else:
        leaf, predicate = _strip_filter(node)
        if not isinstance(leaf, LScan):
            raise UnsupportedQueryError(
                f"unsupported plan bottom {type(leaf).__name__}"
            )
        if residual is not None:
            # a single-relation residual is just another filter conjunct
            from repro.sql.ast import BinOp

            predicate = (
                residual if predicate is None else BinOp("and", predicate, residual)
            )
            residual = None
        if not leaf.is_stream:
            raise UnsupportedQueryError(
                "continuous queries require a stream in FROM"
            )
        streams.append(StreamInput(leaf, predicate, _window_of(leaf)))

    if not streams:
        raise UnsupportedQueryError("continuous queries require a stream input")
    if join is not None and len(streams) + (1 if table else 0) != 2:
        raise UnsupportedQueryError("joins must have exactly two inputs")

    return PlanShape(
        streams=streams,
        table=table,
        join=join,
        residual=residual,
        aggregate=aggregate,
        having=having,
        project=project,
        distinct=distinct,
        order=order,
        limit=limit,
    )


def _window_of(scan: LScan) -> WindowSpec:
    if scan.window is None:
        raise UnsupportedQueryError(
            f"stream {scan.relation!r} needs a window clause "
            "(e.g. [RANGE 1000 SLIDE 100])"
        )
    return WindowSpec.from_clause(scan.window)

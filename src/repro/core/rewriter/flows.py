"""Flow classification — the paper's operator taxonomy (Figure 3).

A *flow* is one cached intermediate column threaded from the per-basic-
window fragments through the merge into the finalize step.  Each flow
carries a *kind* that fixes how partials combine:

========== =============================== ==========================
kind        fragment emits (per bw/pair)    combine over packed parts
========== =============================== ==========================
``pack``    a result column as-is           concatenation only
``gkey``    group-key values                re-group (with all gkeys)
``gsum``    per-group partial sums          ``subsum``
``gcount``  per-group partial counts        ``subsum``  (count → sum!)
``gmin``    per-group partial minima        ``submin``
``gmax``    per-group partial maxima        ``submax``
``sum``     1-row global partial sum        ``sum``
``count``   1-row global partial count      ``sum``     (count → sum!)
``min``     1-row global partial min        ``min``
``max``     1-row global partial max        ``max``
========== =============================== ==========================

AVG is the paper's *expanding replication* case: it contributes a sum flow
and a count flow and is finalized as their quotient — never combined
directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnsupportedQueryError
from repro.sql.logical import AggSpec

#: combine opcode per grouped flow kind
GROUPED_COMBINE = {
    "gsum": "aggr.subsum",
    "gcount": "aggr.subsum",
    "gmin": "aggr.submin",
    "gmax": "aggr.submax",
}

#: combine opcode per global flow kind
GLOBAL_COMBINE = {
    "sum": "aggr.sum",
    "count": "aggr.sum",
    "min": "aggr.min",
    "max": "aggr.max",
}

#: fragment opcode per grouped flow kind
GROUPED_FRAGMENT = {
    "gsum": "aggr.subsum",
    "gcount": "aggr.subcount",
    "gmin": "aggr.submin",
    "gmax": "aggr.submax",
}

#: fragment opcode per global flow kind
GLOBAL_FRAGMENT = {
    "sum": "aggr.sum",
    "count": "aggr.count",
    "min": "aggr.min",
    "max": "aggr.max",
}


@dataclass(frozen=True)
class Flow:
    """One intermediate column tracked across basic windows."""

    name: str
    kind: str


@dataclass(frozen=True)
class AggPlanEntry:
    """How one SQL aggregate maps onto flows and its finalize action.

    ``finalize`` is either ``("flow", flow_name)`` for directly-combinable
    aggregates or ``("div", sum_flow, count_flow)`` for AVG (expanding
    replication).
    """

    spec: AggSpec
    flows: tuple[Flow, ...]
    finalize: tuple


def plan_aggregate_flows(
    aggs: list[AggSpec], grouped: bool
) -> tuple[list[Flow], list[AggPlanEntry]]:
    """Expand aggregate specs into flows per the operator taxonomy."""
    flows: list[Flow] = []
    entries: list[AggPlanEntry] = []
    for spec in aggs:
        if spec.func in ("sum", "count", "min", "max"):
            kind = ("g" if grouped else "") + spec.func
            flow = Flow(spec.out, kind)
            flows.append(flow)
            entries.append(AggPlanEntry(spec, (flow,), ("flow", flow.name)))
        elif spec.func == "avg":
            sum_flow = Flow(f"{spec.out}__sum", "gsum" if grouped else "sum")
            cnt_flow = Flow(f"{spec.out}__cnt", "gcount" if grouped else "count")
            flows += [sum_flow, cnt_flow]
            entries.append(
                AggPlanEntry(
                    spec, (sum_flow, cnt_flow), ("div", sum_flow.name, cnt_flow.name)
                )
            )
        else:  # pragma: no cover - binder rejects unknown aggregates
            raise UnsupportedQueryError(f"cannot rewrite aggregate {spec.func!r}")
    return flows, entries

"""Self-adaptive m-chunk controller (paper §3, "Optimized Incremental
Plans", evaluated in Figure 8).

The controller tunes ``m`` — the number of sub-chunks the newest basic
window is processed in — by monitoring response times: starting at
``m = 1`` it grows ``m`` (doubling by default) every ``steps_per_level``
slides; once a level's mean response time is worse than the best seen, it
resets to the best level and freezes (the paper: "we stop increasing m and
reset it to the value that resulted in the minimal response time").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Optional


@dataclass
class AdaptiveChunker:
    """Response-time-driven search over ``m``."""

    steps_per_level: int = 5
    growth_factor: int = 2
    max_m: Optional[int] = None
    tolerance: float = 1.0  # level is "worse" if mean > tolerance * best

    _m: int = 1
    _samples: list[float] = field(default_factory=list)
    _history: list[tuple[int, float]] = field(default_factory=list)
    _frozen: bool = False

    @property
    def current_m(self) -> int:
        """The chunk count to use for the next slide."""
        return self._m

    @property
    def frozen(self) -> bool:
        """True once the search has converged."""
        return self._frozen

    @property
    def history(self) -> list[tuple[int, float]]:
        """Completed (m, mean response time) levels, in visit order."""
        return list(self._history)

    def observe(self, response_seconds: float) -> None:
        """Record one slide's response time; may advance or freeze ``m``."""
        if self._frozen:
            return
        self._samples.append(response_seconds)
        if len(self._samples) < self.steps_per_level:
            return
        level_mean = mean(self._samples)
        self._samples = []
        self._history.append((self._m, level_mean))
        best_m, best_mean = min(self._history, key=lambda entry: entry[1])
        if level_mean > best_mean * self.tolerance and self._m != best_m:
            # Degradation: resort to the best m seen so far (paper's reset).
            self._m = best_m
            self._frozen = True
            return
        next_m = self._m * self.growth_factor
        if self.max_m is not None and next_m > self.max_m:
            self._m = best_m
            self._frozen = True
            return
        self._m = next_m

"""Durability: the input journal, consistent snapshots, and recovery.

The DataCell engine keeps all stream state in memory (paper Figure 1);
this module makes a restart survivable (ROADMAP item 2).  The design is
the classic snapshot + log-replay pair used by DBSP-style incremental
engines (PAPERS.md):

* **Journal** — an append-only command log under ``<data_dir>/segments/``.
  Every state-changing engine call (``create_stream``, ``submit``,
  ``feed``, ``advance_time``, receptor basket appends, ...) appends one
  CRC-framed record carrying a monotonically increasing sequence number.
  Records are fsynced before the in-memory effect is applied (write-ahead
  under :attr:`DurabilityManager.lock`), so a crash at any instant loses
  at most in-memory effects the log can reproduce.

* **Snapshot** — a periodic consistent image of the whole engine: basket
  contents, factory partial stores and window slicers, emitter buffers,
  scheduler span-seq counters, fragment-cache entries, and the shard
  coordinator's routing state.  Written atomically (temp file + fsync +
  rename) and committed by rewriting ``MANIFEST.json`` the same way; the
  manifest points at the live snapshot and the journal *horizon* — the
  last record sequence the snapshot covers.

* **Recovery** — :meth:`repro.core.engine.DataCellEngine.restore` loads
  the manifest's snapshot, replays every journal record past the horizon
  through the normal ingest path, and resumes journaling on a fresh
  segment.  Replayed firings regenerate exactly the windows the snapshot
  had not yet emitted (factory ``window_index`` and scheduler step
  counters are part of the snapshot), so recovery is exactly-once from
  the emitter's point of view; a dedup sink drops any window at or below
  the snapshot watermark as defense in depth.

Frame format (shared by segments and snapshots)::

    MAGIC "RDC1" | u64 payload length | u32 crc32(payload) | payload
    payload = u32 header length | header JSON (utf-8) | blob bytes...

Fixed-width atoms serialize via ``ndarray.tobytes``; strings are
length-prefixed utf-8 with ``0xFFFFFFFF`` marking NULL.  A truncated
tail or corrupted CRC ends the readable prefix of a segment — recovery
resumes from the last valid record (tested property, not best effort).

Lock order: ``DurabilityManager.lock`` is the engine's outermost lock —
it is held around journal-write + state-mutation pairs and across the
whole checkpoint (which then quiesces the scheduler), so a snapshot can
never observe a state the journal horizon does not describe.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

import numpy as np

from repro.errors import ReproError
from repro.kernel.atoms import Atom, atom_of_dtype, numpy_dtype
from repro.kernel.bat import BAT
from repro.kernel.execution.profiler import (
    COUNTER_CHECKPOINT_BYTES,
    COUNTER_CHECKPOINTS,
    COUNTER_JOURNAL_BYTES,
    COUNTER_JOURNAL_RECORDS,
    Profiler,
)


class DurabilityError(ReproError):
    """A data directory the engine cannot recover from as asked."""


MAGIC = b"RDC1"
_FIXED = struct.Struct("<4sQI")  # magic, payload length, crc32
_U32 = struct.Struct("<I")
_NULL_STR = 0xFFFFFFFF

#: Upper bound on one frame's payload; anything larger in a segment
#: header is treated as corruption, not an allocation request.
MAX_PAYLOAD = 1 << 40

MANIFEST_NAME = "MANIFEST.json"
SEGMENT_DIR = "segments"
SNAPSHOT_DIR = "snapshots"

#: Fault-injection hook points (see :mod:`repro.testing.faults`).  The
#: hook runs *after* the named partial effect is durable, so a crash
#: raised there leaves exactly the on-disk state the point describes.
HOOK_APPEND_BEFORE = "segment.append.before"
HOOK_APPEND_TORN = "segment.append.torn"
HOOK_APPEND_AFTER = "segment.append.after"
HOOK_CHECKPOINT_BEGIN = "checkpoint.begin"
HOOK_SNAPSHOT_WRITTEN = "checkpoint.snapshot_written"
HOOK_MANIFEST_WRITTEN = "checkpoint.manifest_written"
HOOK_CHECKPOINT_END = "checkpoint.end"

FaultHook = Callable[[str], None]


# ----------------------------------------------------------------------
# column codec
# ----------------------------------------------------------------------
def encode_array(values: np.ndarray, atom: Atom) -> bytes:
    """One typed column as bytes (length-prefixed utf-8 for strings)."""
    if atom is Atom.STR:
        parts: list[bytes] = []
        for value in values:
            if value is None:
                parts.append(_U32.pack(_NULL_STR))
            else:
                raw = str(value).encode("utf-8")
                parts.append(_U32.pack(len(raw)))
                parts.append(raw)
        return b"".join(parts)
    return np.ascontiguousarray(values, dtype=numpy_dtype(atom)).tobytes()


def decode_array(blob: bytes, atom: Atom, count: int) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    if atom is Atom.STR:
        out = np.empty(count, dtype=object)
        offset = 0
        for i in range(count):
            (length,) = _U32.unpack_from(blob, offset)
            offset += _U32.size
            if length == _NULL_STR:
                out[i] = None
            else:
                out[i] = blob[offset : offset + length].decode("utf-8")
                offset += length
        return out
    dtype = numpy_dtype(atom)
    expected = count * dtype.itemsize
    if len(blob) != expected:
        raise DurabilityError(
            f"column blob holds {len(blob)} bytes, expected {expected}"
        )
    # Copy: frombuffer views are read-only and would pin the frame bytes.
    return np.frombuffer(blob, dtype=dtype).copy()


def typed_values(values, atom: Atom) -> np.ndarray:
    """One offered column as the typed array its atom dictates.

    Used on the journaling path to normalize arbitrary sequences (lists,
    numpy arrays, generators already materialized) before framing.
    """
    if atom is Atom.STR:
        materialized = list(values)
        out = np.empty(len(materialized), dtype=object)
        for i, value in enumerate(materialized):
            out[i] = None if value is None else str(value)
        return out
    return np.asarray(values, dtype=numpy_dtype(atom))


def pack_state(value) -> tuple[object, list[bytes]]:
    """A state tree as (JSON-able skeleton, column blobs).

    Leaves may be BATs (``{"__bat__": ...}`` placeholders), numpy arrays
    (``{"__arr__": ...}``), numpy scalars, or plain JSON scalars.  Dicts
    must be string-keyed — integer-keyed stores serialize as pair lists.
    """
    blobs: list[bytes] = []

    def walk(node):
        if isinstance(node, BAT):
            index = len(blobs)
            blobs.append(encode_array(node.tail, node.atom))
            return {
                "__bat__": [index, node.atom.value, int(node.hseq), len(node.tail)]
            }
        if isinstance(node, np.ndarray):
            atom = atom_of_dtype(node.dtype)
            index = len(blobs)
            blobs.append(encode_array(node, atom))
            return {"__arr__": [index, atom.value, len(node)]}
        if isinstance(node, dict):
            out = {}
            for key, item in node.items():
                if not isinstance(key, str):
                    raise DurabilityError(
                        f"state dict key {key!r} is not a string"
                    )
                if key in ("__bat__", "__arr__"):
                    raise DurabilityError(f"reserved state key {key!r}")
                out[key] = walk(item)
            return out
        if isinstance(node, (list, tuple)):
            return [walk(item) for item in node]
        if isinstance(node, (np.integer, np.bool_)):
            return int(node)
        if isinstance(node, np.floating):
            return float(node)
        if node is None or isinstance(node, (bool, int, float, str)):
            return node
        raise DurabilityError(f"unserializable state leaf {type(node).__name__}")

    return walk(value), blobs


def unpack_state(skeleton, blobs: list[bytes]):
    """Inverse of :func:`pack_state`; BAT/array leaves are rebuilt."""

    def walk(node):
        if isinstance(node, dict):
            if "__bat__" in node:
                index, atom_value, hseq, count = node["__bat__"]
                atom = Atom(atom_value)
                return BAT(decode_array(blobs[index], atom, count), atom, hseq)
            if "__arr__" in node:
                index, atom_value, count = node["__arr__"]
                atom = Atom(atom_value)
                return decode_array(blobs[index], atom, count)
            return {key: walk(item) for key, item in node.items()}
        if isinstance(node, list):
            return [walk(item) for item in node]
        return node

    return walk(skeleton)


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def encode_frame(header: dict, blobs: list[bytes]) -> bytes:
    """One CRC-framed record: header JSON + concatenated column blobs."""
    header = dict(header)
    header["__blobs__"] = [len(blob) for blob in blobs]
    header_raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    payload = b"".join([_U32.pack(len(header_raw)), header_raw, *blobs])
    return _FIXED.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> tuple[dict, list[bytes]]:
    (header_len,) = _U32.unpack_from(payload, 0)
    start = _U32.size
    header = json.loads(payload[start : start + header_len].decode("utf-8"))
    offset = start + header_len
    blobs: list[bytes] = []
    for length in header.pop("__blobs__", []):
        blobs.append(payload[offset : offset + length])
        offset += length
    return header, blobs


def iter_frames(path: str) -> Iterator[tuple[dict, list[bytes]]]:
    """Valid frames of one file, stopping at the first torn or corrupt one.

    A truncated tail (crash mid-append) or a CRC mismatch ends the
    iteration cleanly — everything before the damage is still served, so
    recovery resumes from the last valid record.
    """
    try:
        data = open(path, "rb").read()
    except FileNotFoundError:
        return
    offset = 0
    while offset + _FIXED.size <= len(data):
        magic, length, crc = _FIXED.unpack_from(data, offset)
        if magic != MAGIC or length > MAX_PAYLOAD:
            return
        start = offset + _FIXED.size
        end = start + length
        if end > len(data):
            return  # torn tail
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return  # corrupted record
        try:
            yield decode_payload(payload)
        except (ValueError, KeyError, struct.error):
            return
        offset = end


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` durably: temp file in the same dir + fsync + rename."""
    directory = os.path.dirname(path) or "."
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(directory)


# ----------------------------------------------------------------------
# segments
# ----------------------------------------------------------------------
def segment_name(index: int) -> str:
    return f"segment-{index:08d}.log"


def snapshot_name(snapshot_id: int) -> str:
    return f"snapshot-{snapshot_id:08d}.bin"


class SegmentWriter:
    """Appends framed records to one journal segment, fsyncing each."""

    def __init__(self, path: str, fault_hook: Optional[FaultHook] = None) -> None:
        self.path = path
        self._fh = open(path, "ab")
        self.bytes_written = os.path.getsize(path)
        self.fault_hook = fault_hook

    def append(self, header: dict, blobs: list[bytes]) -> int:
        """Durably append one record; returns its encoded size."""
        hook = self.fault_hook
        frame = encode_frame(header, blobs)
        if hook is not None:
            hook(HOOK_APPEND_BEFORE)
            # Split the write so a torn-append crash point leaves a half
            # frame *on disk* — the exact state a power cut produces.
            half = max(1, len(frame) // 2)
            self._fh.write(frame[:half])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            hook(HOOK_APPEND_TORN)
            self._fh.write(frame[half:])
        else:
            self._fh.write(frame)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.bytes_written += len(frame)
        if hook is not None:
            hook(HOOK_APPEND_AFTER)
        return len(frame)

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - defensive
            pass


def list_segments(data_dir: str) -> list[tuple[int, str]]:
    """(index, path) of every segment file, ascending."""
    directory = os.path.join(data_dir, SEGMENT_DIR)
    out: list[tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return out
    for name in names:
        if name.startswith("segment-") and name.endswith(".log"):
            try:
                index = int(name[len("segment-") : -len(".log")])
            except ValueError:
                continue
            out.append((index, os.path.join(directory, name)))
    out.sort()
    return out


def iter_journal(data_dir: str, after_seq: int = 0) -> Iterator[tuple[dict, list[bytes]]]:
    """Journal records with ``seq > after_seq``, across all segments.

    Segments are read in index order; within each, iteration stops at the
    first invalid frame (the written prefix is always a valid replay).
    """
    for __, path in list_segments(data_dir):
        for header, blobs in iter_frames(path):
            if header.get("seq", 0) > after_seq:
                yield header, blobs


# ----------------------------------------------------------------------
# manifest + snapshots
# ----------------------------------------------------------------------
def read_manifest(data_dir: str) -> Optional[dict]:
    """The committed manifest, or None for a fresh/never-checkpointed dir."""
    path = os.path.join(data_dir, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        raise DurabilityError(f"unreadable manifest {path}: {exc}") from exc
    if manifest.get("version") != 1:
        raise DurabilityError(
            f"unsupported manifest version {manifest.get('version')!r}"
        )
    return manifest


def read_snapshot(path: str):
    """The state tree of one committed snapshot file."""
    frames = list(iter_frames(path))
    if len(frames) != 1:
        raise DurabilityError(f"snapshot {path} is torn or corrupt")
    header, blobs = frames[0]
    return unpack_state(header["state"], blobs)


def has_data(data_dir: str) -> bool:
    """True if the directory holds a manifest or any journal segment."""
    if read_manifest(data_dir) is not None:
        return True
    return bool(list_segments(data_dir))


# ----------------------------------------------------------------------
# the manager
# ----------------------------------------------------------------------
class DurabilityManager:
    """Owns a data directory: journal sequencing, checkpoints, recovery.

    The manager's lock is the engine's *outermost* lock (DESIGN.md §12):
    state-changing engine calls hold it around journal-append plus the
    in-memory mutation, and :meth:`write_checkpoint` holds it across
    snapshot + manifest commit, which is what makes the pair
    ``(horizon, snapshot)`` consistent.
    """

    def __init__(
        self,
        data_dir: str,
        profiler: Optional[Profiler] = None,
    ) -> None:
        self.data_dir = data_dir
        os.makedirs(os.path.join(data_dir, SEGMENT_DIR), exist_ok=True)
        os.makedirs(os.path.join(data_dir, SNAPSHOT_DIR), exist_ok=True)
        self._remove_stale_tmp()
        self.lock = threading.RLock()
        #: Test seam: called at every HOOK_* point (may raise to simulate
        #: a crash at exactly that durability state).
        self.fault_hook: Optional[FaultHook] = None
        self._profiler = profiler
        self._seq = 0  # guarded-by: lock — last assigned record seq
        self._segment_index = 0  # guarded-by: lock
        self._snapshot_id = 0  # guarded-by: lock
        self._writer: Optional[SegmentWriter] = None  # guarded-by: lock
        self._replaying = False  # guarded-by: lock
        self._suppress = 0  # guarded-by: lock — feed fan-out depth
        self._closed = False  # guarded-by: lock
        self.last_checkpoint: dict = {}  # guarded-by: lock

    # -- bookkeeping ----------------------------------------------------
    def _remove_stale_tmp(self) -> None:
        """Drop temp files a crashed writer left behind (never committed)."""
        for root in (
            self.data_dir,
            os.path.join(self.data_dir, SEGMENT_DIR),
            os.path.join(self.data_dir, SNAPSHOT_DIR),
        ):
            try:
                names = os.listdir(root)
            except FileNotFoundError:
                continue
            for name in names:
                if name.endswith(".tmp"):
                    try:
                        os.unlink(os.path.join(root, name))
                    except OSError:  # pragma: no cover - defensive
                        pass

    def attach_profiler(self, profiler: Profiler) -> None:
        """Late profiler binding (the restore path constructs the engine
        after the manager)."""
        self._profiler = profiler

    @property
    def seq(self) -> int:
        with self.lock:
            return self._seq

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.data_dir, SEGMENT_DIR, segment_name(index))

    def _snapshot_path(self, snapshot_id: int) -> str:
        return os.path.join(self.data_dir, SNAPSHOT_DIR, snapshot_name(snapshot_id))

    def _ensure_writer(self) -> SegmentWriter:  # guarded-by: lock
        if self._writer is None:
            self._writer = SegmentWriter(
                self._segment_path(self._segment_index),
                fault_hook=self._call_hook if self.fault_hook else None,
            )
        return self._writer

    def _call_hook(self, point: str) -> None:
        hook = self.fault_hook
        if hook is not None:
            hook(point)

    def _count(self, name: str, value: int = 1) -> None:
        if self._profiler is not None:
            self._profiler.count(name, value)

    # -- journaling -----------------------------------------------------
    @contextmanager
    def replaying(self):
        """Suppress journaling while the journal itself drives the engine."""
        with self.lock:
            self._replaying = True
        try:
            yield
        finally:
            with self.lock:
                self._replaying = False

    @contextmanager
    def suppressed(self):
        """Suppress nested (per-basket) journaling inside a journaled call."""
        with self.lock:
            self._suppress += 1
            try:
                yield
            finally:
                self._suppress -= 1

    @property
    def active(self) -> bool:
        with self.lock:
            return not (self._replaying or self._suppress or self._closed)

    def journal(self, kind: str, payload) -> Optional[int]:
        """Durably append one command record; returns its seq (or None
        when journaling is suppressed/replaying/closed)."""
        with self.lock:
            if self._replaying or self._suppress or self._closed:
                return None
            skeleton, blobs = pack_state(payload)
            self._seq += 1
            header = {"kind": kind, "seq": self._seq, "state": skeleton}
            size = self._ensure_writer().append(header, blobs)
            self._count(COUNTER_JOURNAL_RECORDS)
            self._count(COUNTER_JOURNAL_BYTES, size)
            return self._seq

    def journal_bytes(self) -> int:
        """Bytes written to the current (post-horizon) segment."""
        with self.lock:
            if self._writer is None:
                return 0
            return self._writer.bytes_written

    def stats(self) -> dict:
        """Gauges for :meth:`DataCellEngine.durability_stats` / metrics."""
        with self.lock:
            journal_bytes = (
                self._writer.bytes_written if self._writer is not None else 0
            )
            return {
                "data_dir": self.data_dir,
                "seq": self._seq,
                "snapshot_id": self._snapshot_id,
                "journal_bytes": journal_bytes,
                "last_checkpoint": dict(self.last_checkpoint),
            }

    # -- checkpointing --------------------------------------------------
    def write_checkpoint(self, state: dict) -> dict:
        """Commit one consistent snapshot; returns checkpoint stats.

        The caller gathers ``state`` while holding :attr:`lock` (and with
        the scheduler quiesced), so the snapshot matches :attr:`seq`
        exactly.  Commit order: snapshot file durable → journal rotated →
        manifest rename (the commit point) → covered segments and stale
        snapshots deleted.  A crash before the manifest rename leaves the
        previous checkpoint fully intact.
        """
        start = time.perf_counter()
        with self.lock:
            self._call_hook(HOOK_CHECKPOINT_BEGIN)
            horizon = self._seq
            self._snapshot_id += 1
            snapshot_id = self._snapshot_id
            skeleton, blobs = pack_state(state)
            frame = encode_frame(
                {"kind": "snapshot", "snapshot_id": snapshot_id,
                 "horizon": horizon, "state": skeleton},
                blobs,
            )
            atomic_write(self._snapshot_path(snapshot_id), frame)
            self._call_hook(HOOK_SNAPSHOT_WRITTEN)
            # Rotate: records after the horizon start a fresh segment, so
            # every older segment is fully covered by this snapshot.
            if self._writer is not None:
                self._writer.close()
                self._writer = None
            self._segment_index += 1
            manifest = {
                "version": 1,
                "snapshot": snapshot_name(snapshot_id),
                "snapshot_id": snapshot_id,
                "horizon": horizon,
                "segment_index": self._segment_index,
            }
            atomic_write(
                os.path.join(self.data_dir, MANIFEST_NAME),
                json.dumps(manifest, indent=2).encode("utf-8"),
            )
            self._call_hook(HOOK_MANIFEST_WRITTEN)
            self._collect_garbage(snapshot_id)
            seconds = time.perf_counter() - start
            stats = {
                "snapshot_id": snapshot_id,
                "horizon": horizon,
                "bytes": len(frame),
                "seconds": seconds,
            }
            self.last_checkpoint = stats
            self._count(COUNTER_CHECKPOINTS)
            self._count(COUNTER_CHECKPOINT_BYTES, len(frame))
            self._call_hook(HOOK_CHECKPOINT_END)
            return dict(stats)

    def _collect_garbage(self, live_snapshot_id: int) -> None:  # guarded-by: lock
        """Delete segments below the rotation point and stale snapshots."""
        for index, path in list_segments(self.data_dir):
            if index < self._segment_index:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - defensive
                    pass
        snapshot_root = os.path.join(self.data_dir, SNAPSHOT_DIR)
        for name in os.listdir(snapshot_root):
            if name.startswith("snapshot-") and name != snapshot_name(
                live_snapshot_id
            ):
                try:
                    os.unlink(os.path.join(snapshot_root, name))
                except OSError:  # pragma: no cover - defensive
                    pass

    # -- recovery -------------------------------------------------------
    def load(self) -> tuple[Optional[dict], int]:
        """(snapshot state or None, horizon) committed in this data dir."""
        manifest = read_manifest(self.data_dir)
        if manifest is None:
            return None, 0
        with self.lock:
            self._snapshot_id = manifest["snapshot_id"]
            self._segment_index = manifest["segment_index"]
        snapshot = read_snapshot(
            os.path.join(self.data_dir, SNAPSHOT_DIR, manifest["snapshot"])
        )
        return snapshot, manifest["horizon"]

    def replay_records(self, horizon: int) -> Iterator[tuple[int, str, object]]:
        """(seq, kind, payload) of every journal record past ``horizon``."""
        for header, blobs in iter_journal(self.data_dir, after_seq=horizon):
            yield (
                header["seq"],
                header["kind"],
                unpack_state(header.get("state"), blobs),
            )

    def resume(self, seq: int) -> None:
        """Arm journaling after a restore: continue at ``seq``, on a fresh
        segment (never append after a possibly-torn tail)."""
        with self.lock:
            self._seq = max(self._seq, seq)
            existing = list_segments(self.data_dir)
            if existing:
                self._segment_index = max(
                    self._segment_index, existing[-1][0] + 1
                )
            self._writer = None

    def close(self) -> None:
        with self.lock:
            self._closed = True
            if self._writer is not None:
                self._writer.close()
                self._writer = None

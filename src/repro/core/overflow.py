"""Overflow policies — what a bounded basket does when producers win.

The paper's baskets are unbounded: DataCell assumes the scheduler keeps up
with arrival rates, so a basket only ever shrinks when a factory consumes
from its head.  At fleet scale that assumption fails — a slow query, a
stalled worker, or a burst can let producers outrun factories without
bound.  Giving a :class:`~repro.core.basket.Basket` a ``capacity`` turns
that failure mode into a *policy decision*, taken batch-at-a-time on the
append path:

* :class:`Block` — backpressure: the producer waits (bounded by a
  timeout) until consumers free enough room.  Lossless; couples producer
  latency to consumer progress.
* :class:`ShedOldest` — admit the new batch, evict the oldest parked
  tuples.  Keeps results *fresh*: the basket always holds the newest
  ``capacity`` arrivals, so windows skip forward over the shed gap.
* :class:`ShedNewest` — admit only what fits, drop the tail of the batch.
  Keeps results *contiguous*: no gap inside the retained prefix, but the
  stream falls behind real time.
* :class:`Sample` — probabilistic thinning of overflowing batches with a
  seeded (deterministic) RNG; a load-shedding middle ground that keeps a
  statistically representative subset.
* :class:`Fail` — raise :class:`~repro.errors.BasketOverflowError`
  immediately; the loud default when a capacity is set without a policy.

A policy instance is *per basket* (``Sample`` carries RNG state), so the
engine stores a template per stream and :meth:`~OverflowPolicy.clone`\\ s
it for every query basket.  Policies that drop tuples set
``sheds = True``; the engine disables cross-query fragment sharing for
factories over such streams, because shedding breaks the global
arrival-offset alignment the shared cache keys on (DESIGN.md §7).

Mechanics live in the basket (it owns the lock, the eviction machinery,
and the not-full condition); a policy only *decides*: given the free room
and an incoming batch size, it returns an :class:`Admission` describing
which incoming tuples to keep and how many parked tuples to evict.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.errors import BasketOverflowError, ReproError

#: Indices into an incoming batch: a slice (contiguous prefix/suffix) or a
#: sorted integer index array (Sample's thinning).
Keep = Union[slice, np.ndarray]


@dataclass(frozen=True)
class Admission:
    """One policy decision for one incoming batch.

    ``keep`` selects the admitted tuples of the incoming batch (arrival
    order preserved), ``evict_oldest`` parked tuples are dropped from the
    basket head first, and ``shed`` is the total number of tuples lost
    (evicted + not admitted) — what the profiler's ``overflow_shed``
    counter accumulates.
    """

    keep: Keep
    evict_oldest: int = 0
    shed: int = 0


class OverflowPolicy:
    """Decides how a bounded basket handles a batch that does not fit."""

    #: True when the policy can drop tuples (disables fragment sharing).
    sheds: bool = False
    #: True when the basket should wait on its not-full condition instead
    #: of asking for an :class:`Admission`.
    blocking: bool = False

    def admit(self, room: int, incoming: int, capacity: int) -> Admission:
        """Decision for a batch of ``incoming`` tuples with ``room`` free.

        Only called when ``incoming > room``; a batch that fits is always
        admitted whole without consulting the policy.  ``capacity`` is the
        basket bound (so ``capacity - room`` tuples are currently parked).
        """
        raise NotImplementedError  # pragma: no cover - interface

    def clone(self) -> "OverflowPolicy":
        """A fresh instance with the same configuration.

        Stateful policies (``Sample``'s RNG) must not share state across
        baskets; the engine clones the per-stream template for every
        query basket it creates.
        """
        return copy.deepcopy(self)

    def describe(self) -> str:
        return type(self).__name__.lower()


class Fail(OverflowPolicy):
    """Reject overflowing batches outright (nothing is appended)."""

    def admit(self, room: int, incoming: int, capacity: int) -> Admission:
        raise BasketOverflowError(
            f"batch of {incoming} exceeds free room {room}",
            requested=incoming,
            room=room,
        )

    def describe(self) -> str:
        return "fail"


class Block(OverflowPolicy):
    """Backpressure: wait until the whole batch fits.

    ``timeout`` bounds the wait in seconds (``None`` waits forever —
    only sensible when a consumer is guaranteed to drain the basket).
    On timeout the basket raises :class:`BasketOverflowError` and appends
    nothing, so the producer can retry or shed at its own layer.  A batch
    larger than the basket capacity can never fit and fails immediately.
    """

    blocking = True

    def __init__(self, timeout: Optional[float] = None) -> None:
        if timeout is not None and timeout < 0:
            raise ReproError(f"Block timeout must be >= 0, got {timeout}")
        self.timeout = timeout

    def describe(self) -> str:
        return "block" if self.timeout is None else f"block:{self.timeout:g}"


class ShedOldest(OverflowPolicy):
    """Evict parked tuples from the head to make room for new arrivals.

    The basket always retains the *newest* ``capacity`` tuples of
    (parked + incoming); everything older is shed.  Windows skip forward
    over the gap — see DESIGN.md §7 for why this stays sound under the
    incremental merge.
    """

    sheds = True

    def admit(self, room: int, incoming: int, capacity: int) -> Admission:
        parked = capacity - room
        if incoming >= capacity:
            # The batch alone overfills the basket: keep only its newest
            # `capacity` tuples and evict everything parked.
            dropped_incoming = incoming - capacity
            return Admission(
                keep=slice(dropped_incoming, None),
                evict_oldest=parked,
                shed=parked + dropped_incoming,
            )
        evict = incoming - room  # < parked, since incoming < capacity
        return Admission(keep=slice(None), evict_oldest=evict, shed=evict)

    def describe(self) -> str:
        return "shed-oldest"


class ShedNewest(OverflowPolicy):
    """Admit the prefix that fits; drop the rest of the batch."""

    sheds = True

    def admit(self, room: int, incoming: int, capacity: int) -> Admission:
        admitted = max(0, room)
        return Admission(keep=slice(0, admitted), shed=incoming - admitted)

    def describe(self) -> str:
        return "shed-newest"


class Sample(OverflowPolicy):
    """Thin overflowing batches to a seeded random subset.

    Each tuple of an overflowing batch is admitted independently with
    probability ``rate``; if the thinned batch still exceeds the free
    room its newest excess is dropped, so capacity stays a hard bound.
    Deterministic for a fixed ``seed`` and call sequence (the fault
    harness and tests rely on this).
    """

    sheds = True

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ReproError(f"Sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def admit(self, room: int, incoming: int, capacity: int) -> Admission:
        mask = self._rng.random(incoming) < self.rate
        keep = np.flatnonzero(mask)
        if len(keep) > room:
            keep = keep[: max(0, room)]
        return Admission(keep=keep, shed=incoming - len(keep))

    def clone(self) -> "Sample":
        return Sample(self.rate, self.seed)

    def describe(self) -> str:
        return f"sample:{self.rate:g}"


def parse_overflow_spec(spec: str) -> OverflowPolicy:
    """Parse a console/CLI policy spec into a policy instance.

    Accepted forms (case-insensitive)::

        fail
        block            block:0.5          (timeout seconds)
        shed-oldest      shed_oldest
        shed-newest      shed_newest
        sample:0.25      sample:0.25:7      (rate [, seed])
    """
    parts = spec.strip().lower().split(":")
    name, args = parts[0].replace("_", "-"), parts[1:]
    try:
        if name == "fail" and not args:
            return Fail()
        if name == "block":
            return Block(float(args[0])) if args else Block()
        if name == "shed-oldest" and not args:
            return ShedOldest()
        if name == "shed-newest" and not args:
            return ShedNewest()
        if name == "sample" and args:
            rate = float(args[0])
            seed = int(args[1]) if len(args) > 1 else 0
            return Sample(rate, seed)
    except ValueError:
        pass
    raise ReproError(
        f"bad overflow policy {spec!r} (want fail, block[:timeout], "
        f"shed-oldest, shed-newest, or sample:rate[:seed])"
    )


def policy_spec(policy: Optional[OverflowPolicy]) -> Optional[str]:
    """A spec string :func:`parse_overflow_spec` reconstructs the policy
    from — the durable form used by checkpoint snapshots and journals.

    Unlike :meth:`OverflowPolicy.describe` (a display label), this keeps
    ``Sample``'s seed so a restored policy replays the same decisions.
    """
    if policy is None:
        return None
    if isinstance(policy, Sample):
        return f"sample:{policy.rate:g}:{policy.seed}"
    return policy.describe()

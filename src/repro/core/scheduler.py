"""The DataCell scheduler — a Petri-net execution model (paper §2).

Factories are transitions; baskets are places; a factory *fires* when its
``ready()`` condition holds (enough tuples in every input basket).  The
scheduler repeatedly scans for enabled factories and steps them, routing
each produced :class:`ResultBatch` to the query's emitters.

Two driving modes:

* synchronous — benchmarks and tests call :meth:`run_until_idle` after
  feeding data, so response times are measured without thread noise;
* background — examples start :meth:`start` / :meth:`stop` to process
  arrivals from receptor threads continuously.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.factory import FactoryBase, ResultBatch
from repro.errors import SchedulerError
from repro.kernel.execution.profiler import Profiler

ResultSink = Callable[[str, ResultBatch], None]


@dataclass
class _Registration:
    factory: FactoryBase
    sinks: list[ResultSink] = field(default_factory=list)
    steps: int = 0


class Scheduler:
    """Fires ready factories and dispatches their results."""

    def __init__(self, max_steps_per_scan: int = 1_000_000) -> None:
        self._registrations: dict[str, _Registration] = {}
        self._lock = threading.RLock()
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._max_steps_per_scan = max_steps_per_scan
        self.profiler = Profiler()

    # -- registration ------------------------------------------------------
    def register(self, factory: FactoryBase, *sinks: ResultSink) -> None:
        with self._lock:
            if factory.name in self._registrations:
                raise SchedulerError(f"factory {factory.name!r} already registered")
            self._registrations[factory.name] = _Registration(factory, list(sinks))

    def unregister(self, name: str) -> None:
        with self._lock:
            self._registrations.pop(name, None)

    def add_sink(self, name: str, sink: ResultSink) -> None:
        with self._lock:
            self._registrations[name].sinks.append(sink)

    def factories(self) -> list[str]:
        with self._lock:
            return list(self._registrations)

    # -- synchronous driving ------------------------------------------------
    def run_once(self) -> int:
        """One scan: step every currently-ready factory once.

        Returns the number of firings.
        """
        fired = 0
        with self._lock:
            registrations = list(self._registrations.values())
        for registration in registrations:
            factory = registration.factory
            if factory.ready():
                batch = factory.step(self.profiler)
                if batch is not None:
                    fired += 1
                    registration.steps += 1
                    self._dispatch(factory.name, registration, batch)
        return fired

    def run_until_idle(self) -> int:
        """Scan until no factory is ready; returns total firings."""
        total = 0
        for __ in range(self._max_steps_per_scan):
            fired = self.run_once()
            if fired == 0:
                return total
            total += fired
        raise SchedulerError("run_until_idle exceeded the step budget")

    def _dispatch(self, name: str, registration: _Registration, batch: ResultBatch) -> None:
        for sink in registration.sinks:
            sink(name, batch)

    # -- background driving ------------------------------------------------
    def start(self, poll_interval: float = 0.001) -> None:
        """Run the scheduler loop in a daemon thread."""
        if self._thread is not None:
            raise SchedulerError("scheduler already running")
        self._stop_event.clear()

        def loop() -> None:
            while not self._stop_event.is_set():
                if self.run_once() == 0:
                    time.sleep(poll_interval)

        self._thread = threading.Thread(target=loop, name="datacell-scheduler", daemon=True)
        self._thread.start()

    def stop(self, drain: bool = True) -> None:
        """Stop the background loop (optionally draining ready work first)."""
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join()
        self._thread = None
        if drain:
            self.run_until_idle()

"""The DataCell scheduler — a Petri-net execution model (paper §2).

Factories are transitions; baskets are places; a factory *fires* when its
``ready()`` condition holds (enough tuples in every input basket).  The
scheduler repeatedly scans for enabled factories and steps them, routing
each produced :class:`ResultBatch` to the query's emitters.

Two driving modes:

* synchronous — benchmarks and tests call :meth:`run_until_idle` after
  feeding data, so response times are measured without thread noise;
* background — examples start :meth:`start` / :meth:`stop` to process
  arrivals from receptor threads continuously.

Both modes can additionally run **parallel**: with ``workers=N`` (N > 1) a
scan fires all ready factories concurrently on a shared thread pool — the
Petri net enables many transitions at once, and the numpy kernels release
the GIL while baskets carry their own locks.  Every factory owns a
*firing lock* so it never steps twice concurrently, no matter how many
threads drive the scheduler; ``workers=1`` keeps the exact sequential
firing order of the original scheduler.  In-flight work is bounded: a scan
submits at most one firing per factory and joins them all before
returning.

Lock order (see DESIGN.md §6): firing lock → basket lock → fragment-cache
locks.  A firing never touches another factory's firing lock, so the
order is acyclic.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.factory import FactoryBase, ResultBatch
from repro.errors import SchedulerError
from repro.kernel.execution.profiler import (
    COUNTER_FIRINGS,
    COUNTER_ROWS_EMITTED,
    COUNTER_TUPLES_CONSUMED,
    COUNTER_WORKER_ERRORS,
    Profiler,
)
from repro.obs.core import Observability
from repro.obs.spans import FiringSpan

ResultSink = Callable[[str, ResultBatch], None]


def chain_errors(errors: list[BaseException]) -> BaseException:
    """Link concurrent failures into one raisable chain.

    The first error is primary; every later one is attached at the end of
    its ``__context__`` chain, so ``raise chain_errors(errors)`` surfaces
    *all* of them in the traceback ("During handling of the above
    exception, ...") instead of silently dropping all but the first.
    """
    primary = errors[0]
    for extra in errors[1:]:
        cursor: BaseException = primary
        while cursor.__context__ is not None and cursor.__context__ is not extra:
            cursor = cursor.__context__
        if cursor.__context__ is None and cursor is not extra:
            cursor.__context__ = extra
    return primary


@dataclass
class _Registration:
    factory: FactoryBase
    sinks: list[ResultSink] = field(default_factory=list)
    steps: int = 0  # guarded-by: firing_lock
    # Held around ready()+step()+dispatch so a factory never fires twice
    # concurrently — not from two pool workers, and not from a test thread
    # calling run_once() while the background loop is scanning.
    firing_lock: threading.Lock = field(default_factory=threading.Lock)
    # Per-factory accumulation of firing profilers (timings + counters).
    profiler: Profiler = field(default_factory=Profiler)
    # perf_counter at the end of the last firing while the factory stayed
    # ready (observability only): the next firing's ready-wait baseline.
    ready_since: Optional[float] = None  # guarded-by: firing_lock


class Scheduler:
    """Fires ready factories and dispatches their results.

    ``workers`` sets the firing parallelism: 1 (default) is the
    deterministic sequential mode; N > 1 fires ready factories
    concurrently on a ``ThreadPoolExecutor`` of N threads.
    """

    def __init__(
        self,
        max_steps_per_scan: int = 1_000_000,
        workers: int = 1,
        obs: Optional[Observability] = None,
    ) -> None:
        if workers < 1:
            raise SchedulerError(f"workers must be >= 1, got {workers}")
        self._registrations: dict[str, _Registration] = {}  # guarded-by: _lock
        self._lock = threading.RLock()
        self._thread: Optional[threading.Thread] = None  # guarded-by: _lock
        self._stop_event = threading.Event()
        self._max_steps_per_scan = max_steps_per_scan
        self._workers = workers
        self._executor: Optional[ThreadPoolExecutor] = None  # guarded-by: _lock
        self._worker_error: Optional[BaseException] = None  # guarded-by: _lock
        self._ever_started = False  # guarded-by: _lock
        self.profiler = Profiler()
        #: Tracing sinks (spans, latency histograms); None = tracing off,
        #: in which case the firing path pays a single ``is None`` test.
        self.obs = obs

    @property
    def workers(self) -> int:
        return self._workers

    # -- registration ------------------------------------------------------
    def register(self, factory: FactoryBase, *sinks: ResultSink) -> None:
        with self._lock:
            if factory.name in self._registrations:
                raise SchedulerError(f"factory {factory.name!r} already registered")
            self._registrations[factory.name] = _Registration(factory, list(sinks))

    def unregister(self, name: str) -> None:
        with self._lock:
            self._registrations.pop(name, None)

    def add_sink(self, name: str, sink: ResultSink) -> None:
        with self._lock:
            self._registrations[name].sinks.append(sink)

    def factories(self) -> list[str]:
        with self._lock:
            return list(self._registrations)

    def factory_stats(self) -> dict[str, dict[str, dict]]:
        """Per-factory structured profiler snapshots.

        Each value is :meth:`Profiler.snapshot`'s shape: ``{"tags",
        "opcodes", "calls", "counters"}``.  Counters include ``firings``
        and, when fragment sharing is active, ``fragment_cache_hits`` /
        ``fragment_cache_misses``; with observability on they also carry
        ``tuples_consumed`` / ``rows_emitted``.
        """
        with self._lock:
            registrations = dict(self._registrations)
        return {
            name: registration.profiler.snapshot()
            for name, registration in registrations.items()
        }

    # -- synchronous driving ------------------------------------------------
    def run_once(self) -> int:
        """One scan: step every currently-ready factory once.

        Returns the number of firings.  With ``workers > 1`` the firings
        of one scan run concurrently; a factory that is already firing on
        another thread is skipped (its owner will pick the work up).

        Failures: the scan always joins every submitted firing first.
        When several factories fail concurrently, all of their exceptions
        are raised as one chain (:func:`chain_errors`) and counted in the
        ``worker_errors`` profiler counter — one count per failed firing.
        """
        with self._lock:
            registrations = list(self._registrations.values())
        if self._workers == 1 or len(registrations) <= 1:
            try:
                return sum(self._fire(registration) for registration in registrations)
            except Exception:
                self.profiler.count(COUNTER_WORKER_ERRORS)
                raise
        executor = self._ensure_executor()
        futures = [
            executor.submit(self._fire, registration)
            for registration in registrations
        ]
        fired = 0
        errors: list[BaseException] = []
        for future in futures:
            try:
                fired += future.result()
            except Exception as exc:  # join the whole scan before raising
                errors.append(exc)
        if errors:
            # Surface *every* concurrent worker failure: the first error
            # is primary, the rest ride along on its __context__ chain
            # (previously only errors[0] survived the scan).
            self.profiler.count(COUNTER_WORKER_ERRORS, len(errors))
            raise chain_errors(errors)
        return fired

    def _fire(self, registration: _Registration) -> int:
        """Fire one factory once if it is ready; returns 0 or 1.

        With observability enabled the firing is wrapped in a
        :class:`~repro.obs.spans.FiringSpan`: factory name, firing seq,
        tuples consumed/emitted, ready-wait time, and the per-tag cost
        breakdown, recorded into the span ring.  The ingest→emit latency
        loop is closed here too: each basket's newest fully-consumed
        arrival stamp is subtracted from the dispatch time.
        """
        if not registration.firing_lock.acquire(blocking=False):
            return 0  # already firing on another thread
        try:
            factory = registration.factory
            obs = self.obs
            if obs is None:
                if not factory.ready():
                    return 0
                profiler = Profiler()
                batch = factory.step(profiler)
                if batch is None:
                    return 0
                profiler.count(COUNTER_FIRINGS)
                registration.steps += 1
                registration.profiler.merge_from(profiler)
                self.profiler.merge_from(profiler)
                self._dispatch(factory.name, registration, batch)
                return 1
            return self._fire_traced(registration, obs)
        finally:
            registration.firing_lock.release()

    def _fire_traced(self, registration: _Registration, obs: Observability) -> int:  # guarded-by: registration.firing_lock
        """The observability-enabled twin of the plain firing path."""
        factory = registration.factory
        if not factory.ready():
            registration.ready_since = None
            return 0
        start = time.perf_counter()
        ready_wait = (
            start - registration.ready_since
            if registration.ready_since is not None
            else 0.0
        )
        profiler = Profiler()
        profiler.set_observer(obs.observe_opcode)
        consumed_before = factory.consumed_total()
        batch = factory.step(profiler)
        if batch is None:
            registration.ready_since = None
            return 0
        consumed = factory.consumed_total() - consumed_before
        profiler.count(COUNTER_FIRINGS)
        profiler.count(COUNTER_TUPLES_CONSUMED, consumed)
        profiler.count(COUNTER_ROWS_EMITTED, len(batch))
        registration.steps += 1
        registration.profiler.merge_from(profiler)
        self.profiler.merge_from(profiler)
        self._dispatch(factory.name, registration, batch)
        end = time.perf_counter()
        for basket in factory.baskets():
            arrival = basket.take_consumed_arrival()
            if arrival is not None:
                obs.latency.observe(end - arrival)
        obs.firing_duration.observe(end - start)
        obs.spans.record(
            FiringSpan(
                factory=factory.name,
                seq=registration.steps,
                wall=time.time(),
                duration=end - start,
                consumed=consumed,
                emitted=len(batch),
                ready_wait=ready_wait,
                tags=profiler.tags(),
            )
        )
        # Baseline for the next firing's ready-wait: if the factory is
        # still enabled, the wait it accrues starts now.
        registration.ready_since = end
        return 1

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._workers, thread_name_prefix="datacell-worker"
                )
            return self._executor

    def run_until_idle(self) -> int:
        """Scan until no factory is ready; returns total firings.

        Re-raises any exception captured by the background loop first, so
        failures in threaded runs surface instead of being lost.
        """
        self._raise_worker_error()
        total = 0
        for __ in range(self._max_steps_per_scan):
            fired = self.run_once()
            if fired == 0:
                return total
            total += fired
        raise SchedulerError("run_until_idle exceeded the step budget")

    def _dispatch(self, name: str, registration: _Registration, batch: ResultBatch) -> None:
        for sink in registration.sinks:
            sink(name, batch)

    # -- background driving ------------------------------------------------
    def start(self, poll_interval: float = 0.001) -> None:
        """Run the scheduler loop in a daemon thread."""

        def loop() -> None:
            while not self._stop_event.is_set():
                try:
                    fired = self.run_once()
                except Exception as exc:
                    with self._lock:
                        self._worker_error = exc
                    return
                if fired == 0:
                    time.sleep(poll_interval)

        thread = threading.Thread(target=loop, name="datacell-scheduler", daemon=True)
        with self._lock:
            if self._thread is not None:
                raise SchedulerError("scheduler already running")
            self._ever_started = True
            self._stop_event.clear()
            self._thread = thread
        # Outside the lock: the loop's first scan takes _lock itself.
        thread.start()

    def stop(self, drain: bool = True) -> None:
        """Stop the background loop (optionally draining ready work first).

        If the loop died on an exception, that exception is re-raised here
        (and draining is skipped — the engine is in an undefined state).

        ``drain=True`` runs :meth:`drain` after the loop has joined — and
        also on a scheduler that was never started (the synchronous
        driving mode) — so that post-stop state is *final*: every ready
        factory has fired, baskets hold only tuples that genuinely never
        formed a window, and the overflow counters (shed / blocked, see
        docs/OPERATIONS.md) are exact rather than racing a half-finished
        scan.  Draining also frees room in bounded baskets, waking
        producers parked on the ``Block`` policy.  A repeated ``stop()``
        after the loop is gone is a no-op (it neither drains again nor
        resurfaces an already-raised worker error).

        On the error path no draining happens — but producers parked on
        ``Block`` are still woken: every registered factory's baskets get
        :meth:`~repro.core.basket.Basket.abort_waiters`, so the parked
        threads raise :class:`~repro.errors.BasketOverflowError` instead
        of sleeping forever on a scheduler that will never free room.
        """
        self._stop_event.set()
        with self._lock:
            thread, self._thread = self._thread, None
            ever_started = self._ever_started
        # Join outside the lock: the loop's scans take _lock themselves,
        # so joining under it would deadlock.
        joined = False
        if thread is not None:
            thread.join()
            joined = True
        try:
            self._raise_worker_error()
        except Exception as exc:
            self._abort_parked(f"scheduler stopped after worker error: {exc!r}")
            raise
        if drain and (joined or not ever_started):
            self.drain()

    def _abort_parked(self, reason: str) -> None:
        """Wake every producer parked on a registered factory's baskets."""
        with self._lock:
            registrations = list(self._registrations.values())
        for registration in registrations:
            for basket in registration.factory.baskets():
                basket.abort_waiters(reason)

    def drain(self) -> int:
        """Fire until quiescence so shed/parked accounting is exact.

        Returns the number of firings.  Equivalent to
        :meth:`run_until_idle`; the separate name exists so call sites can
        say *why* they are scanning (finalizing counters at shutdown).
        """
        return self.run_until_idle()

    # -- durability --------------------------------------------------------
    @contextmanager
    def quiesced(self):
        """Hold every firing lock for a consistent checkpoint snapshot.

        Blocks until in-flight firings finish, then keeps all factories
        parked while the caller gathers state.  Safe against the firing
        path because a firing never takes ``Scheduler._lock`` (run_once
        copies the registration list *before* firing), so holding
        ``_lock`` here while blocking on firing locks cannot deadlock —
        the order is Scheduler._lock → firing locks, same as ever.
        """
        with self._lock:
            registrations = list(self._registrations.values())
            acquired: list[threading.Lock] = []
            try:
                for registration in registrations:
                    registration.firing_lock.acquire()
                    acquired.append(registration.firing_lock)
                yield
            finally:
                for lock in reversed(acquired):
                    lock.release()

    def steps_snapshot(self) -> dict[str, int]:
        """Per-factory firing counts; call inside :meth:`quiesced` (the
        caller already holds every firing lock, which guards ``steps``)."""
        with self._lock:
            registrations = dict(self._registrations)
        return {
            name: self._read_steps(registration)
            for name, registration in registrations.items()
        }

    def _read_steps(self, registration) -> int:  # guarded-by: registration.firing_lock
        return registration.steps

    def restore_steps(self, name: str, steps: int) -> None:
        """Adopt a snapshot's firing count for one factory (restore path)."""
        with self._lock:
            registration = self._registrations[name]
        with registration.firing_lock:
            registration.steps = steps

    def wrap_sinks(self, name: str, wrapper: Callable[[ResultSink], ResultSink]) -> None:
        """Replace each of a factory's sinks with ``wrapper(sink)``.

        The restore path uses this to interpose the duplicate-emission
        filter in front of every emitter after a recovery.
        """
        with self._lock:
            registration = self._registrations[name]
            registration.sinks = [wrapper(sink) for sink in registration.sinks]

    def _raise_worker_error(self) -> None:
        with self._lock:
            error, self._worker_error = self._worker_error, None
        if error is not None:
            raise error

    def close(self) -> None:
        """Release the worker pool (no-op for sequential schedulers)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

"""DataCellR — the complete re-evaluation baseline (paper §3, Algorithm 1).

Every time the window slides, the *entire* focus window is recomputed with
the unmodified DBMS plan.  This is exactly how a plain DBMS would support
continuous queries (plus scheduling); the paper uses it as the solid
baseline that the incremental DataCell is measured against.

The factory retains the live window's tuples in per-column builders (the
basket itself only buffers *arriving* tuples and is drained each step, the
same contract :class:`~repro.core.factory.IncrementalFactory` has).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.basket import Basket
from repro.core.factory import FactoryBase, ResultBatch, _TimeSlicer
from repro.core.windows import TS_COLUMN, WindowSpec
from repro.errors import SchedulerError, UnsupportedQueryError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT, BATBuilder
from repro.kernel.execution.backends import make_backend
from repro.kernel.execution.profiler import Profiler
from repro.kernel.storage import Table
from repro.sql.logical import find_scans
from repro.sql.physical import CompiledQuery, compile_full
from repro.sql.planner import PlannedQuery


class _WindowBuffer:
    """Retains the current focus window of one stream, column-wise."""

    def __init__(self, columns: list[tuple[str, Atom]], window: WindowSpec) -> None:
        self.window = window
        self._builders = {name: BATBuilder(atom) for name, atom in columns}
        self._ts = BATBuilder(Atom.TIMESTAMP) if window.time_based else None

    def __len__(self) -> int:
        return len(next(iter(self._builders.values())))

    def append(self, cols: dict[str, np.ndarray], ts: Optional[np.ndarray]) -> None:
        for name, builder in self._builders.items():
            builder.extend(cols[name])
        if self._ts is not None:
            assert ts is not None
            self._ts.extend(ts)

    def trim(self, boundary: Optional[int] = None) -> None:
        """Expire tuples that slid out of the focus window.

        For time-based windows ``boundary`` is the exclusive upper bound of
        the newest consumed basic window; the window covers
        ``[boundary - size, boundary)``.
        """
        if self.window.is_landmark:
            return
        if self.window.time_based:
            assert self._ts is not None and boundary is not None
            ts = self._ts.snapshot().tail
            if len(ts) == 0:
                return
            low = boundary - self.window.size
            drop = int(np.searchsorted(ts, low, side="left"))
            if drop > 0:
                for builder in self._builders.values():
                    builder.drop_head(drop)
                self._ts.drop_head(drop)
            return
        excess = len(self) - self.window.size
        if excess > 0:
            for builder in self._builders.values():
                builder.drop_head(excess)

    def snapshot(self) -> dict[str, BAT]:
        return {name: builder.snapshot() for name, builder in self._builders.items()}

    def snapshot_state(self) -> dict:
        """Serializable image of the retained window tuples."""
        state: dict = {
            "columns": {
                name: BAT(
                    np.array(builder.snapshot().tail, copy=True),
                    builder.atom,
                    builder.hseq,
                )
                for name, builder in self._builders.items()
            }
        }
        if self._ts is not None:
            state["ts"] = BAT(
                np.array(self._ts.snapshot().tail, copy=True),
                self._ts.atom,
                self._ts.hseq,
            )
        return state

    def restore_state(self, state: dict) -> None:
        for name, bat in state["columns"].items():
            builder = BATBuilder(bat.atom, hseq=bat.hseq)
            builder.extend(bat.tail)
            self._builders[name] = builder
        if self._ts is not None:
            ts = state["ts"]
            rebuilt = BATBuilder(ts.atom, hseq=ts.hseq)
            rebuilt.extend(ts.tail)
            self._ts = rebuilt


class ReevalFactory(FactoryBase):
    """Full re-evaluation of the window on every slide (DataCellR)."""

    def __init__(
        self,
        planned: PlannedQuery,
        baskets: dict[str, Basket],
        tables: Optional[dict[str, Table]] = None,
        name: str = "factory-r",
        backend: str = "interpreted",
    ) -> None:
        self.name = name
        self.planned = planned
        self.compiled: CompiledQuery = compile_full(planned)
        self._baskets = baskets
        self._tables = tables or {}
        self._interp = make_backend(backend)
        self._initialized = False
        self.window_index = 0
        self.windows: dict[str, WindowSpec] = {}
        self._buffers: dict[str, _WindowBuffer] = {}
        self._table_aliases: list[str] = []
        self._slicers: dict[str, _TimeSlicer] = {}
        self._consumed_total = 0
        for scan in find_scans(planned.plan):
            if not scan.is_stream:
                if scan.alias not in self._tables:
                    raise SchedulerError(f"no table bound for {scan.alias!r}")
                self._table_aliases.append(scan.alias)
                continue
            if scan.window is None:
                raise UnsupportedQueryError(
                    f"stream {scan.relation!r} needs a window clause"
                )
            window = WindowSpec.from_clause(scan.window)
            self.windows[scan.alias] = window
            columns = [
                (name, atom)
                for name, atom in scan.schema
                if scan.alias in self.compiled.scan_inputs
                and name in self.compiled.scan_inputs[scan.alias]
            ]
            self._buffers[scan.alias] = _WindowBuffer(columns, window)
            if window.time_based:
                self._slicers[scan.alias] = _TimeSlicer(window.step)

    # -- readiness ------------------------------------------------------
    def consumed_total(self) -> int:
        return self._consumed_total

    def baskets(self) -> tuple[Basket, ...]:
        return tuple(self._baskets.values())

    def ready(self) -> bool:
        return all(self._stream_ready(alias) for alias in self.windows)

    def _stream_ready(self, alias: str) -> bool:
        window = self.windows[alias]
        basket = self._baskets[alias]
        if window.time_based:
            slicer = self._slicers[alias]
            slicer.observe(basket)
            watermark = basket.max_timestamp()
            if watermark is None or slicer.origin is None:
                return False
            if not self._initialized and not window.is_landmark:
                return watermark >= slicer.origin + window.size
            boundary = slicer.next_boundary
            return boundary is not None and watermark >= boundary
        needed = (
            window.step
            if (window.is_landmark or self._initialized)
            else window.size
        )
        return len(basket) >= needed

    # -- durability ----------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable image for checkpointing (see repro.core.durability)."""
        return {
            "window_index": self.window_index,
            "initialized": self._initialized,
            "consumed_total": self._consumed_total,
            "slicers": {
                alias: [slicer.origin, slicer.consumed_windows]
                for alias, slicer in self._slicers.items()
            },
            "buffers": {
                alias: buffer.snapshot_state()
                for alias, buffer in self._buffers.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        self.window_index = state["window_index"]
        self._initialized = state["initialized"]
        self._consumed_total = state["consumed_total"]
        for alias, (origin, consumed) in state["slicers"].items():
            slicer = self._slicers[alias]
            slicer.origin = origin
            slicer.consumed_windows = consumed
        for alias, buffer_state in state["buffers"].items():
            self._buffers[alias].restore_state(buffer_state)

    # -- stepping ------------------------------------------------------
    def step(self, profiler: Optional[Profiler] = None) -> Optional[ResultBatch]:
        if not self.ready():
            return None
        profiler = profiler if profiler is not None else Profiler()
        start = time.perf_counter()
        inputs: dict[str, BAT] = {}
        for alias, window in self.windows.items():
            self._ingest(alias, window)
            snapshot = self._buffers[alias].snapshot()
            for column, slot in self.compiled.scan_inputs.get(alias, {}).items():
                inputs[slot] = snapshot[column]
        for alias in self._table_aliases:
            table = self._tables[alias]
            for column, slot in self.compiled.scan_inputs.get(alias, {}).items():
                inputs[slot] = table.column(column)
        outputs = self._interp.run(self.compiled.program, inputs, profiler)
        # Materialize every output column: a pass-through projection makes
        # the interpreter return the *input* BAT itself, which is a
        # zero-copy view into this factory's window buffer — the next
        # step's trim() compacts that buffer in place and would corrupt
        # the batch after it was emitted (found by `repro fuzz`).
        columns = {
            name: BAT(
                np.array(outputs[slot].tail, copy=True),
                outputs[slot].atom,
                outputs[slot].hseq,
            )
            for name, slot in zip(
                self.compiled.output_names, self.compiled.output_slots
            )
        }
        self.window_index += 1
        self._initialized = True
        return ResultBatch(
            names=list(self.compiled.output_names),
            columns=columns,
            window_index=self.window_index,
            response_seconds=time.perf_counter() - start,
            breakdown=profiler.tags(),
        )

    def _ingest(self, alias: str, window: WindowSpec) -> None:
        """Move this step's arrivals from the basket into the window buffer."""
        basket = self._baskets[alias]
        buffer = self._buffers[alias]
        columns = list(self.compiled.scan_inputs.get(alias, {}).keys())
        boundary: Optional[int] = None
        with basket.locked():
            if window.time_based:
                slicer = self._slicers[alias]
                owed = (
                    1
                    if (self._initialized or window.is_landmark)
                    else window.basic_windows
                )
                take = 0
                for __ in range(owed):
                    boundary = slicer.boundary(slicer.consumed_windows)
                    take = basket.count_before(boundary)
                    slicer.consumed_windows += 1
            else:
                take = (
                    window.step
                    if (self._initialized or window.is_landmark)
                    else window.size
                )
            cols = basket.head_slice(take, columns)
            arrays = {name: np.array(bat.tail, copy=True) for name, bat in cols.items()}
            ts = None
            if window.time_based:
                ts = np.array(
                    basket.head_slice(take, [TS_COLUMN])[TS_COLUMN].tail, copy=True
                )
            basket.delete_head(take)
        self._consumed_total += take
        buffer.append(arrays, ts)
        buffer.trim(boundary)

"""DataCell core: baskets, factories, scheduler, and the incremental
rewriter — a stream engine on top of the DBMS kernel."""

from repro.core.basket import Basket
from repro.core.chunking import AdaptiveChunker
from repro.core.emitter import (
    CallbackEmitter,
    CollectingEmitter,
    CsvEmitter,
    RetryingEmitter,
)
from repro.core.engine import ContinuousQuery, DataCellEngine
from repro.core.factory import IncrementalFactory, ResultBatch
from repro.core.overflow import (
    Block,
    Fail,
    OverflowPolicy,
    Sample,
    ShedNewest,
    ShedOldest,
    parse_overflow_spec,
)
from repro.core.receptor import Receptor
from repro.core.reevaluate import ReevalFactory
from repro.core.rewriter import IncrementalPlan, rewrite
from repro.core.scheduler import Scheduler
from repro.core.windows import TS_COLUMN, WindowSpec

__all__ = [
    "AdaptiveChunker",
    "Basket",
    "Block",
    "CallbackEmitter",
    "CollectingEmitter",
    "ContinuousQuery",
    "CsvEmitter",
    "DataCellEngine",
    "Fail",
    "IncrementalFactory",
    "IncrementalPlan",
    "OverflowPolicy",
    "Receptor",
    "ReevalFactory",
    "ResultBatch",
    "RetryingEmitter",
    "Sample",
    "Scheduler",
    "ShedNewest",
    "ShedOldest",
    "TS_COLUMN",
    "WindowSpec",
    "parse_overflow_spec",
    "rewrite",
]

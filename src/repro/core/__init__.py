"""DataCell core: baskets, factories, scheduler, and the incremental
rewriter — a stream engine on top of the DBMS kernel."""

from repro.core.basket import Basket
from repro.core.chunking import AdaptiveChunker
from repro.core.emitter import CallbackEmitter, CollectingEmitter, CsvEmitter
from repro.core.engine import ContinuousQuery, DataCellEngine
from repro.core.factory import IncrementalFactory, ResultBatch
from repro.core.receptor import Receptor
from repro.core.reevaluate import ReevalFactory
from repro.core.rewriter import IncrementalPlan, rewrite
from repro.core.scheduler import Scheduler
from repro.core.windows import TS_COLUMN, WindowSpec

__all__ = [
    "AdaptiveChunker",
    "Basket",
    "CallbackEmitter",
    "CollectingEmitter",
    "ContinuousQuery",
    "CsvEmitter",
    "DataCellEngine",
    "IncrementalFactory",
    "IncrementalPlan",
    "Receptor",
    "ReevalFactory",
    "ResultBatch",
    "Scheduler",
    "TS_COLUMN",
    "WindowSpec",
    "rewrite",
]

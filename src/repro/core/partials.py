"""Stores for cached intermediate results ("partials").

The paper's transition phase (Algorithm 2, lines 20-21: ``res1 = res2, ...``)
shifts intermediates one position as the window slides.  We realize the same
bookkeeping with sequence numbers: every basic window gets a monotonically
increasing ``seq``; a sliding window of ``n`` basic windows keeps exactly
the bundles with ``seq > newest - n``.  Join queries additionally keep one
bundle per *pair* of basic windows, expiring a pair when either side does.

A *bundle* is a dict ``flow name → BAT`` — the cached output of one
per-basic-window (or per-pair) plan fragment.

:class:`FragmentCache` extends the same idea *across* queries: factories
whose per-basic-window fragments are alpha-equivalent over the same stream
compute each basic window's bundle once and share the result (BATs are
immutable, so sharing is zero-copy).  Cache entries are addressed by
global arrival offsets, which is why sharing requires every sharer's
basket to have seen exactly the same tuples — streams with a shedding
overflow policy, queries fed through a private receptor, and streams
whose fan-out diverged on an overflow error are all opted out by the
engine (DESIGN.md §7).

Overload interaction: admission control happens at the basket, strictly
before a factory slices basic windows, so a shed tuple never reaches a
partial — stores only ever hold bundles computed from admitted tuples,
and expiry needs no special casing under load shedding.

Thread-safety: ``PartialStore`` is confined to its owning factory (the
scheduler's firing lock serializes steps); ``FragmentCache`` is shared
engine-wide and does its own locking — a cache-level lock for the index
plus a per-span lock so concurrent misses compute a bundle once (lock
order in DESIGN.md §6).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional

from repro.errors import SchedulerError
from repro.kernel.bat import BAT
from repro.kernel.execution.profiler import (
    COUNTER_CACHE_HITS,
    COUNTER_CACHE_MISSES,
    Profiler,
)

Bundle = dict[str, BAT]


@dataclass
class PartialStore:
    """Ring of per-basic-window bundles for one (stream's) flow set.

    ``capacity`` is the number of live basic windows ``n``; 0 means
    unbounded (landmark mode keeps a single *cumulative* bundle instead,
    see :meth:`replace_all`).
    """

    capacity: int
    _bundles: "OrderedDict[int, Bundle]" = field(default_factory=OrderedDict)
    _next_seq: int = 0

    def add(self, bundle: Bundle) -> int:
        """Store the newest bundle; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        self._bundles[seq] = bundle
        if self.capacity:
            low = seq - self.capacity
            while self._bundles and next(iter(self._bundles)) <= low:
                self._bundles.popitem(last=False)
        return seq

    def live(self) -> list[tuple[int, Bundle]]:
        """Live bundles, oldest first."""
        return list(self._bundles.items())

    def live_seqs(self) -> list[int]:
        return list(self._bundles)

    def bundle(self, seq: int) -> Bundle:
        try:
            return self._bundles[seq]
        except KeyError:
            raise SchedulerError(f"partial for basic window {seq} expired") from None

    def replace_all(self, bundle: Bundle) -> None:
        """Collapse the store to one cumulative bundle (landmark compaction).

        The combined bundle keeps the seq of the newest constituent so
        subsequent adds stay ordered.
        """
        if not self._bundles:
            raise SchedulerError("cannot compact an empty partial store")
        newest = next(reversed(self._bundles))
        self._bundles.clear()
        self._bundles[newest] = bundle

    @property
    def newest_seq(self) -> Optional[int]:
        if not self._bundles:
            return None
        return next(reversed(self._bundles))

    def __len__(self) -> int:
        return len(self._bundles)

    def snapshot_state(self) -> dict:
        """Serializable image: seq counter + live bundles, oldest first."""
        return {
            "next_seq": self._next_seq,
            "bundles": [[seq, dict(bundle)] for seq, bundle in self._bundles.items()],
        }

    def restore_state(self, state: dict) -> None:
        self._next_seq = state["next_seq"]
        self._bundles = OrderedDict(
            (int(seq), bundle) for seq, bundle in state["bundles"]
        )


@dataclass
class PairStore:
    """Per-(left seq, right seq) bundles for two-stream join queries.

    A pair expires as soon as either constituent basic window slides out of
    its stream's focus window — mirroring the paper's rule that selection
    intermediates "need to be kept and joined with newly arriving data until
    the respective basic windows expire".
    """

    left_capacity: int
    right_capacity: int
    _bundles: dict[tuple[int, int], Bundle] = field(default_factory=dict)

    def add(self, left_seq: int, right_seq: int, bundle: Bundle) -> None:
        self._bundles[(left_seq, right_seq)] = bundle

    def expire(self, newest_left: int, newest_right: int) -> None:
        """Drop pairs whose left or right basic window has expired."""
        low_left = newest_left - self.left_capacity if self.left_capacity else None
        low_right = newest_right - self.right_capacity if self.right_capacity else None
        dead = [
            key
            for key in self._bundles
            if (low_left is not None and key[0] <= low_left)
            or (low_right is not None and key[1] <= low_right)
        ]
        for key in dead:
            del self._bundles[key]

    def live(self) -> list[tuple[tuple[int, int], Bundle]]:
        """Live pair bundles, ordered by (left seq, right seq)."""
        return sorted(self._bundles.items())

    def replace_all(self, bundle: Bundle, key: tuple[int, int]) -> None:
        """Collapse to one cumulative bundle (landmark joins)."""
        self._bundles.clear()
        self._bundles[key] = bundle

    def __len__(self) -> int:
        return len(self._bundles)

    def snapshot_state(self) -> dict:
        """Serializable image of the live pair bundles."""
        return {
            "bundles": [
                [left, right, dict(bundle)]
                for (left, right), bundle in self.live()
            ]
        }

    def restore_state(self, state: dict) -> None:
        self._bundles = {
            (int(left), int(right)): bundle
            for left, right, bundle in state["bundles"]
        }


# ----------------------------------------------------------------------
# cross-query fragment sharing
# ----------------------------------------------------------------------
#: Identifies a shareable fragment computation: queries collide when they
#: read the same stream, slice it with the same basic-window step, and
#: their fragment programs canonicalize to the same fingerprint (see
#: :mod:`repro.core.rewriter.canonical`).
ShareKey = Hashable

#: One basic window's coordinates on a stream's global arrival axis:
#: ``(start offset, tuple count)``.  Exact-range keying makes sharing safe
#: even between queries registered at different times — ranges that do not
#: line up simply never collide.
Span = tuple[int, int]


@dataclass
class _FragmentGroup:
    """Entries and bookkeeping of one share key."""

    capacity: int
    bundles: "OrderedDict[Span, Bundle]" = field(default_factory=OrderedDict)
    # Per-span compute locks: the first factory to miss computes, factories
    # arriving for the same span meanwhile block and then reuse the result.
    pending: dict[Span, threading.Lock] = field(default_factory=dict)


class FragmentCache:
    """Cross-query cache of per-basic-window fragment bundles.

    Lives in the engine; the scheduler's worker threads query it
    concurrently.  Expiry mirrors :class:`PartialStore`'s seq discipline:
    spans are produced in nondecreasing start order, so each group keeps
    its most recent ``capacity`` entries by insertion order (``capacity``
    is the largest live-basic-window count among the sharing queries — a
    lagging factory that misses an evicted span just recomputes it).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._groups: dict[ShareKey, _FragmentGroup] = {}  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    def register(self, key: ShareKey, capacity: int) -> None:
        """Declare interest in a share key, widening its ring if needed."""
        if capacity < 1:
            raise SchedulerError(f"fragment cache capacity must be >= 1, got {capacity}")
        with self._lock:
            group = self._groups.get(key)
            if group is None:
                self._groups[key] = _FragmentGroup(capacity)
            else:
                group.capacity = max(group.capacity, capacity)

    def get_or_compute(
        self,
        key: ShareKey,
        span: Span,
        compute: Callable[[], Bundle],
        profiler: Optional[Profiler] = None,
    ) -> Bundle:
        """The bundle for ``span``, computing (once) on a miss.

        Bundles are immutable by convention (dict of immutable BATs), so
        the returned object is shared between all callers.
        """
        with self._lock:
            try:
                group = self._groups[key]
            except KeyError:
                raise SchedulerError(f"share key {key!r} was never registered") from None
            bundle = group.bundles.get(span)
            if bundle is not None:
                return self._hit(span, bundle, profiler)
            span_lock = group.pending.setdefault(span, threading.Lock())
        with span_lock:
            # Re-check: another thread may have computed while we waited.
            with self._lock:
                bundle = group.bundles.get(span)
                if bundle is not None:
                    return self._hit(span, bundle, profiler)
            bundle = compute()
            with self._lock:
                group.bundles[span] = bundle
                group.pending.pop(span, None)
                while len(group.bundles) > group.capacity:
                    group.bundles.popitem(last=False)
                self.misses += 1
            if profiler is not None:
                profiler.count(COUNTER_CACHE_MISSES)
            return bundle

    def _hit(self, span: Span, bundle: Bundle, profiler: Optional[Profiler]) -> Bundle:  # guarded-by: self._lock
        self.hits += 1
        if profiler is not None:
            profiler.count(COUNTER_CACHE_HITS)
        return bundle

    def stats(self) -> dict[str, float]:
        """Totals for benchmark reporting."""
        with self._lock:
            entries = sum(len(g.bundles) for g in self._groups.values())
            lookups = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "entries": entries,
                "groups": len(self._groups),
            }

    def clear(self) -> None:
        with self._lock:
            for group in self._groups.values():
                group.bundles.clear()
            self.hits = 0
            self.misses = 0

    def snapshot_state(self) -> dict:
        """Serializable image of every group's entries and the counters.

        Share keys are ``(relation, step, time_based, fingerprint)``
        tuples of JSON scalars, so they round-trip as lists; spans
        likewise.  Pending per-span locks are transient and not captured.
        """
        with self._lock:
            groups = []
            for key, group in self._groups.items():
                groups.append(
                    {
                        "key": list(key),
                        "capacity": group.capacity,
                        "bundles": [
                            [list(span), dict(bundle)]
                            for span, bundle in group.bundles.items()
                        ],
                    }
                )
            return {"groups": groups, "hits": self.hits, "misses": self.misses}

    def restore_state(self, state: dict) -> None:
        """Adopt a snapshot's entries (replacing any current contents)."""
        with self._lock:
            self._groups.clear()
            for entry in state["groups"]:
                group = _FragmentGroup(entry["capacity"])
                for span, bundle in entry["bundles"]:
                    group.bundles[tuple(span)] = bundle
                self._groups[tuple(entry["key"])] = group
            self.hits = state["hits"]
            self.misses = state["misses"]

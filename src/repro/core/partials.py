"""Stores for cached intermediate results ("partials").

The paper's transition phase (Algorithm 2, lines 20-21: ``res1 = res2, ...``)
shifts intermediates one position as the window slides.  We realize the same
bookkeeping with sequence numbers: every basic window gets a monotonically
increasing ``seq``; a sliding window of ``n`` basic windows keeps exactly
the bundles with ``seq > newest - n``.  Join queries additionally keep one
bundle per *pair* of basic windows, expiring a pair when either side does.

A *bundle* is a dict ``flow name → BAT`` — the cached output of one
per-basic-window (or per-pair) plan fragment.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SchedulerError
from repro.kernel.bat import BAT

Bundle = dict[str, BAT]


@dataclass
class PartialStore:
    """Ring of per-basic-window bundles for one (stream's) flow set.

    ``capacity`` is the number of live basic windows ``n``; 0 means
    unbounded (landmark mode keeps a single *cumulative* bundle instead,
    see :meth:`replace_all`).
    """

    capacity: int
    _bundles: "OrderedDict[int, Bundle]" = field(default_factory=OrderedDict)
    _next_seq: int = 0

    def add(self, bundle: Bundle) -> int:
        """Store the newest bundle; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        self._bundles[seq] = bundle
        if self.capacity:
            low = seq - self.capacity
            while self._bundles and next(iter(self._bundles)) <= low:
                self._bundles.popitem(last=False)
        return seq

    def live(self) -> list[tuple[int, Bundle]]:
        """Live bundles, oldest first."""
        return list(self._bundles.items())

    def live_seqs(self) -> list[int]:
        return list(self._bundles)

    def bundle(self, seq: int) -> Bundle:
        try:
            return self._bundles[seq]
        except KeyError:
            raise SchedulerError(f"partial for basic window {seq} expired") from None

    def replace_all(self, bundle: Bundle) -> None:
        """Collapse the store to one cumulative bundle (landmark compaction).

        The combined bundle keeps the seq of the newest constituent so
        subsequent adds stay ordered.
        """
        if not self._bundles:
            raise SchedulerError("cannot compact an empty partial store")
        newest = next(reversed(self._bundles))
        self._bundles.clear()
        self._bundles[newest] = bundle

    @property
    def newest_seq(self) -> Optional[int]:
        if not self._bundles:
            return None
        return next(reversed(self._bundles))

    def __len__(self) -> int:
        return len(self._bundles)


@dataclass
class PairStore:
    """Per-(left seq, right seq) bundles for two-stream join queries.

    A pair expires as soon as either constituent basic window slides out of
    its stream's focus window — mirroring the paper's rule that selection
    intermediates "need to be kept and joined with newly arriving data until
    the respective basic windows expire".
    """

    left_capacity: int
    right_capacity: int
    _bundles: dict[tuple[int, int], Bundle] = field(default_factory=dict)

    def add(self, left_seq: int, right_seq: int, bundle: Bundle) -> None:
        self._bundles[(left_seq, right_seq)] = bundle

    def expire(self, newest_left: int, newest_right: int) -> None:
        """Drop pairs whose left or right basic window has expired."""
        low_left = newest_left - self.left_capacity if self.left_capacity else None
        low_right = newest_right - self.right_capacity if self.right_capacity else None
        dead = [
            key
            for key in self._bundles
            if (low_left is not None and key[0] <= low_left)
            or (low_right is not None and key[1] <= low_right)
        ]
        for key in dead:
            del self._bundles[key]

    def live(self) -> list[tuple[tuple[int, int], Bundle]]:
        """Live pair bundles, ordered by (left seq, right seq)."""
        return sorted(self._bundles.items())

    def replace_all(self, bundle: Bundle, key: tuple[int, int]) -> None:
        """Collapse to one cumulative bundle (landmark joins)."""
        self._bundles.clear()
        self._bundles[key] = bundle

    def __len__(self) -> int:
        return len(self._bundles)

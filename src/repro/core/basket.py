"""Baskets — DataCell's lightweight stream tables.

A basket is an append-only, lockable collection of head-aligned column
buffers, one per stream attribute (plus the implicit arrival-timestamp
column for time-based queries).  Receptors append incoming tuples; factories
snapshot column views, consume basic windows, and drop expired tuples from
the head (paper §2: "once a tuple has been seen by all relevant queries it
is dropped from its basket").

Baskets are **unbounded by default** — the paper's model, which assumes the
scheduler keeps up with arrival rates.  Passing ``capacity=`` bounds the
basket and arms an :class:`~repro.core.overflow.OverflowPolicy` (default
:class:`~repro.core.overflow.Fail`) that decides, batch-at-a-time on the
append path, what happens when producers outrun factories: block with
backpressure, shed from either end, sample, or fail loudly.  Shed and
blocked counts are kept on the basket (``shed_total``, ``block_waits``,
``block_timeouts``) and mirrored into an attached
:class:`~repro.kernel.execution.profiler.Profiler` so overload shows up in
the same counter channel as firings and cache hits.  docs/OPERATIONS.md is
the operator-facing guide; DESIGN.md §7 gives the correctness argument for
shedding under the incremental merge.

Thread-safety: every mutating or snapshotting method takes the basket lock;
factories take it once around a whole consume cycle via ``locked()``.  A
producer blocked by the ``Block`` policy waits on a condition tied to that
same lock, so consumers can drain (and wake it) while it sleeps.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.core.overflow import Fail, Keep, OverflowPolicy
from repro.core.windows import TS_COLUMN
from repro.errors import BasketError, BasketOverflowError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT, BATBuilder
from repro.kernel.execution.profiler import (
    COUNTER_BLOCK_TIMEOUTS,
    COUNTER_BLOCK_WAITS,
    COUNTER_SHED,
    Profiler,
)
from repro.kernel.storage import Schema


def _select_rows(rows: list, timestamps, keep: Keep):
    """Apply an admission's ``keep`` selection to a row batch."""
    if isinstance(keep, slice):
        if keep == slice(None):
            return rows, timestamps
        kept_rows = rows[keep]
        kept_ts = None if timestamps is None else list(timestamps)[keep]
    else:
        kept_rows = [rows[i] for i in keep]
        kept_ts = (
            None if timestamps is None else [timestamps[i] for i in keep]
        )
    return kept_rows, kept_ts


def _select_values(values, keep: Keep):
    """Apply ``keep`` to one column (or timestamp) array."""
    if isinstance(keep, slice):
        return values if keep == slice(None) else values[keep]
    return np.asarray(values)[keep]


class Basket:
    """Column-oriented append buffer for one stream.

    ``capacity`` (optional) bounds the number of parked tuples; ``overflow``
    selects the policy applied when an append does not fit (default
    :class:`~repro.core.overflow.Fail`).  With ``capacity=None`` (default)
    the append paths are exactly the unbounded originals.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        with_timestamps: bool = True,
        capacity: Optional[int] = None,
        overflow: Optional[OverflowPolicy] = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self._lock = threading.RLock()
        # guarded-by: _lock
        self._builders: dict[str, BATBuilder] = {
            col: BATBuilder(atom) for col, atom in schema.columns
        }
        self._with_ts = with_timestamps
        if with_timestamps:
            self._builders[TS_COLUMN] = BATBuilder(Atom.TIMESTAMP)
        self._appended_total = 0  # guarded-by: _lock
        self._clock = 0  # fallback logical timestamps; guarded-by: _lock
        self._watermark: int | None = None  # explicit time progress; guarded-by: _lock
        if capacity is not None and capacity < 1:
            raise BasketError(f"capacity must be >= 1, got {capacity}")
        if capacity is None and overflow is not None:
            raise BasketError("an overflow policy needs a capacity")
        self._capacity = capacity
        self._policy: Optional[OverflowPolicy] = (
            (overflow if overflow is not None else Fail())
            if capacity is not None
            else None
        )
        self._not_full = threading.Condition(self._lock)
        self._abort_reason: Optional[str] = None  # guarded-by: _lock
        self._profiler: Optional[Profiler] = None  # guarded-by: _lock
        # Ingest→emit latency tracking (observability): per-batch arrival
        # stamps as (absolute end offset, perf_counter).  Bounded so a
        # directly-driven factory that never pops marks stays O(1) memory.
        self._track_arrivals = False  # guarded-by: _lock
        self._arrival_marks: deque[tuple[int, float]] = deque(maxlen=4096)  # guarded-by: _lock
        self._consumed_abs = 0  # guarded-by: _lock
        #: Tuples dropped by the overflow policy (either end), monotonic.
        self.shed_total = 0  # guarded-by: _lock
        #: Appends that had to wait for room (Block policy), monotonic.
        self.block_waits = 0  # guarded-by: _lock
        #: Blocked appends that gave up at the timeout, monotonic.
        self.block_timeouts = 0  # guarded-by: _lock
        # Input journal (durability): when attached, every direct append
        # is logged *before* admission under the journal's outer lock —
        # see :meth:`attach_journal` for the lock-order argument.
        self._journal = None

    # ------------------------------------------------------------------
    # locking
    # ------------------------------------------------------------------
    def locked(self):
        """Context manager taking the basket lock (re-entrant)."""
        return self._lock

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            first = next(iter(self._builders.values()))
            return len(first)

    @property
    def count(self) -> int:
        """Number of tuples currently parked in the basket."""
        return len(self)

    @property
    def hseq(self) -> int:
        """Oid of the oldest tuple still present."""
        with self._lock:
            return next(iter(self._builders.values())).hseq

    @property
    def appended_total(self) -> int:
        """Total tuples ever appended (monotonic; excludes shed tuples
        that were never admitted, includes admitted-then-evicted ones)."""
        with self._lock:
            return self._appended_total

    # ------------------------------------------------------------------
    # capacity / overflow
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> Optional[int]:
        """Maximum parked tuples (``None`` = unbounded, the default)."""
        return self._capacity

    @property
    def overflow_policy(self) -> Optional[OverflowPolicy]:
        return self._policy

    def attach_profiler(self, profiler: Profiler) -> None:
        """Mirror overflow counters (shed, block waits/timeouts) into
        ``profiler`` — the engine wires the scheduler's global profiler
        here so overload surfaces next to firings and cache stats."""
        with self._lock:
            self._profiler = profiler

    # ------------------------------------------------------------------
    # arrival stamping (ingest→emit latency, observability layer)
    # ------------------------------------------------------------------
    def enable_arrival_tracking(self) -> None:
        """Stamp each admitted batch's arrival time (perf_counter).

        The scheduler closes the loop after a firing via
        :meth:`take_consumed_arrival`; with tracking off (the default) the
        append paths pay a single boolean test.
        """
        with self._lock:
            self._track_arrivals = True

    def _stamp_arrival(self) -> None:  # guarded-by: self._lock
        """Record the arrival of the batch ending at ``_appended_total``."""
        if self._track_arrivals:
            self._arrival_marks.append((self._appended_total, time.perf_counter()))

    def take_consumed_arrival(self) -> Optional[float]:
        """Arrival stamp (perf_counter) of the newest fully-consumed batch.

        Pops every mark whose batch has been entirely consumed (or
        evicted) and returns the most recent one — the arrival time of
        the batch containing the tuple that completed the window.
        Returns ``None`` when no tracked batch finished since the last
        call.
        """
        with self._lock:
            wall: Optional[float] = None
            while self._arrival_marks and self._arrival_marks[0][0] <= self._consumed_abs:
                wall = self._arrival_marks.popleft()[1]
            return wall

    def abort_waiters(self, reason: str) -> None:
        """Wake producers parked on the ``Block`` policy with an error.

        Called when the engine is stopping after a scheduler crash: no
        consumer will ever free room again, so parked producers would
        otherwise sleep until their timeout (or forever, with
        ``Block(timeout=None)``).  Each woken producer raises
        :class:`~repro.errors.BasketOverflowError` carrying ``reason``;
        later blocking appends fail fast the same way.
        """
        with self._lock:
            self._abort_reason = reason
            self._not_full.notify_all()

    def overflow_stats(self) -> dict[str, int]:
        """Point-in-time overload numbers for this basket."""
        with self._lock:
            return {
                "capacity": self._capacity or 0,
                "parked": len(self),
                "shed": self.shed_total,
                "block_waits": self.block_waits,
                "block_timeouts": self.block_timeouts,
            }

    def _count(self, counter: str, amount: int = 1) -> None:  # guarded-by: self._lock
        if self._profiler is not None:
            self._profiler.count(counter, amount)

    def _admit(self, incoming: int) -> Keep:  # guarded-by: self._lock
        """Make room for ``incoming`` tuples; returns the admitted subset.

        Called under the basket lock.  A batch that fits is admitted whole;
        otherwise the policy decides (or, for ``Block``, this waits on the
        not-full condition until consumers free enough room or the timeout
        passes).  Evictions and shed counts happen here, so by the time
        this returns the admitted tuples are guaranteed to fit.
        """
        assert self._capacity is not None and self._policy is not None
        room = self._capacity - len(self)
        if incoming <= room:
            return slice(None)
        if self._policy.blocking:
            return self._wait_for_room(incoming, self._policy.timeout)
        admission = self._policy.admit(room, incoming, self._capacity)
        if admission.evict_oldest:
            for builder in self._builders.values():
                builder.drop_head(admission.evict_oldest)
            if self._track_arrivals:
                self._consumed_abs += admission.evict_oldest
        if admission.shed:
            self.shed_total += admission.shed
            self._count(COUNTER_SHED, admission.shed)
        return admission.keep

    def _wait_for_room(self, incoming: int, timeout: Optional[float]) -> Keep:  # guarded-by: self._lock
        capacity = self._capacity
        assert capacity is not None
        if incoming > capacity:
            raise BasketOverflowError(
                f"batch of {incoming} can never fit capacity {capacity}",
                requested=incoming,
                room=capacity - len(self),
            )
        self.block_waits += 1
        self._count(COUNTER_BLOCK_WAITS)
        deadline = None if timeout is None else time.monotonic() + timeout
        while capacity - len(self) < incoming:
            if self._abort_reason is not None:
                raise BasketOverflowError(
                    f"basket {self.name!r}: {self._abort_reason}",
                    requested=incoming,
                    room=capacity - len(self),
                )
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                self.block_timeouts += 1
                self._count(COUNTER_BLOCK_TIMEOUTS)
                raise BasketOverflowError(
                    f"basket {self.name!r}: timed out after {timeout:g}s "
                    f"waiting for room ({incoming} tuples, "
                    f"{capacity - len(self)} free)",
                    requested=incoming,
                    room=capacity - len(self),
                )
            self._not_full.wait(remaining)
        return slice(None)

    # ------------------------------------------------------------------
    # journaling (durability)
    # ------------------------------------------------------------------
    def attach_journal(self, journal) -> None:
        """Log every direct append (the receptor path) to ``journal``.

        ``journal`` is a :class:`~repro.core.durability.DurabilityManager`;
        its lock is the engine's *outermost* lock, so the append wrappers
        take it strictly before this basket's own lock — the same order
        ``engine.feed`` uses, which is what keeps a checkpoint's
        ``(horizon, state)`` pair consistent against receptor threads.
        The offered batch is journaled pre-admission: replay re-offers it
        through the same policy (whose RNG state the snapshot carries),
        so shedding decisions reproduce deterministically.
        """
        with self._lock:
            self._journal = journal

    def _journal_record(self, columns, timestamps) -> dict:
        """One ``basket`` journal record for an offered batch."""
        from repro.core.durability import typed_values

        typed = {
            name: typed_values(columns[name], self.schema.atom_of(name))
            for name in self.schema.names
        }
        return {
            "basket": self.name,
            "columns": typed,
            "timestamps": (
                None
                if timestamps is None
                else np.asarray(timestamps, dtype=np.int64)
            ),
        }

    # ------------------------------------------------------------------
    # appends (receptor side)
    # ------------------------------------------------------------------
    def append_rows(
        self, rows: Iterable[Sequence], timestamps: Sequence[int] | None = None
    ) -> int:
        """Append tuples in schema order; returns the number admitted.

        On a bounded basket the overflow policy may thin the batch (the
        return value is then smaller than the input), block, or raise
        :class:`~repro.errors.BasketOverflowError`.
        """
        journal = self._journal
        if journal is not None:
            rows = rows if isinstance(rows, list) else list(rows)
            names = self.schema.names
            for row in rows:
                if len(row) != len(names):
                    raise BasketError(
                        f"row arity {len(row)} != schema arity {len(names)}"
                    )
            columns = {
                name: [row[i] for row in rows] for i, name in enumerate(names)
            }
            with journal.lock:
                journal.journal("basket", self._journal_record(columns, timestamps))
                return self._append_rows(rows, timestamps)
        return self._append_rows(rows, timestamps)

    def _append_rows(
        self, rows: Iterable[Sequence], timestamps: Sequence[int] | None
    ) -> int:
        if self._capacity is None:
            with self._lock:
                return self._append_rows_locked(rows, timestamps)
        rows = rows if isinstance(rows, list) else list(rows)
        with self._lock:
            keep = self._admit(len(rows))
            kept_rows, kept_ts = _select_rows(rows, timestamps, keep)
            return self._append_rows_locked(kept_rows, kept_ts)

    def _append_rows_locked(
        self, rows: Iterable[Sequence], timestamps: Sequence[int] | None
    ) -> int:  # guarded-by: self._lock
        names = self.schema.names
        added = 0
        for row in rows:
            if len(row) != len(names):
                raise BasketError(
                    f"row arity {len(row)} != schema arity {len(names)}"
                )
            for name, value in zip(names, row):
                self._builders[name].append(value)
            if self._with_ts:
                if timestamps is not None:
                    self._builders[TS_COLUMN].append(timestamps[added])
                else:
                    self._builders[TS_COLUMN].append(self._clock)
                    self._clock += 1
            added += 1
        self._appended_total += added
        if added:
            self._stamp_arrival()
        return added

    def append_columns(
        self,
        columns: Mapping[str, Sequence | np.ndarray],
        timestamps: Sequence[int] | np.ndarray | None = None,
    ) -> int:
        """Bulk columnar append (the fast receptor path).

        Returns the number of tuples admitted (see :meth:`append_rows` for
        bounded-basket semantics).
        """
        journal = self._journal
        if journal is not None:
            if set(columns) != set(self.schema.names):
                raise BasketError(
                    f"append_columns needs exactly columns "
                    f"{sorted(self.schema.names)}"
                )
            if len({len(values) for values in columns.values()}) != 1:
                raise BasketError("ragged column append")
            with journal.lock:
                journal.journal(
                    "basket", self._journal_record(columns, timestamps)
                )
                return self._append_columns(columns, timestamps)
        return self._append_columns(columns, timestamps)

    def _append_columns(
        self,
        columns: Mapping[str, Sequence | np.ndarray],
        timestamps: Sequence[int] | np.ndarray | None = None,
    ) -> int:
        with self._lock:
            expected = set(self.schema.names)
            if set(columns) != expected:
                raise BasketError(
                    f"append_columns needs exactly columns {sorted(expected)}"
                )
            lengths = {len(values) for values in columns.values()}
            if len(lengths) != 1:
                raise BasketError("ragged column append")
            count = lengths.pop()
            if timestamps is not None and len(timestamps) != count:
                raise BasketError("timestamp column length mismatch")
            if self._capacity is not None:
                keep = self._admit(count)
                if not (isinstance(keep, slice) and keep == slice(None)):
                    columns = {
                        name: _select_values(values, keep)
                        for name, values in columns.items()
                    }
                    if timestamps is not None:
                        timestamps = _select_values(timestamps, keep)
                    count = len(next(iter(columns.values()))) if columns else 0
            for name, values in columns.items():
                self._builders[name].extend(values)
            if self._with_ts:
                if timestamps is not None:
                    self._builders[TS_COLUMN].extend(timestamps)
                else:
                    self._builders[TS_COLUMN].extend(
                        np.arange(self._clock, self._clock + count, dtype=np.int64)
                    )
                    self._clock += count
            self._appended_total += count
            if count:
                self._stamp_arrival()
            return count

    # ------------------------------------------------------------------
    # snapshots (factory side)
    # ------------------------------------------------------------------
    def column(self, name: str) -> BAT:
        """Zero-copy snapshot of one column (valid until the next delete)."""
        with self._lock:
            if name not in self._builders:
                raise BasketError(f"basket {self.name!r} has no column {name!r}")
            return self._builders[name].snapshot()

    def head_slice(self, count: int, columns: Sequence[str]) -> dict[str, BAT]:
        """The oldest ``count`` tuples of the requested columns."""
        with self._lock:
            if count > len(self):
                raise BasketError(
                    f"basket {self.name!r} holds {len(self)} tuples, "
                    f"need {count}"
                )
            return {
                name: self._builders[name].snapshot().slice(0, count)
                for name in columns
            }

    def timestamps(self) -> BAT:
        """Snapshot of the implicit arrival-timestamp column."""
        if not self._with_ts:
            raise BasketError(f"basket {self.name!r} has no timestamps")
        return self.column(TS_COLUMN)

    def count_before(self, ts_bound: int) -> int:
        """Tuples (from the head) with arrival timestamp < ``ts_bound``.

        Timestamps are nondecreasing by arrival, so this is a binary search;
        time-based factories use it to slice basic windows.
        """
        with self._lock:
            ts = self.timestamps()
            return int(np.searchsorted(ts.tail, ts_bound, side="left"))

    def max_timestamp(self) -> int | None:
        """The basket's time watermark.

        The larger of the newest arrival timestamp and any explicitly
        advanced watermark (see :meth:`advance_watermark`).
        """
        with self._lock:
            ts = self.timestamps()
            newest = None if ts.is_empty() else int(ts.tail[-1])
            if self._watermark is None:
                return newest
            if newest is None:
                return self._watermark
            return max(newest, self._watermark)

    def advance_watermark(self, ts: int) -> None:
        """Declare that no tuple with arrival timestamp < ``ts`` will arrive.

        Time-based factories fire when the watermark passes a basic-window
        boundary; advancing it explicitly lets queries close windows during
        stream silence (a punctuation, in stream-processing terms).
        Watermarks only move forward; regressions are ignored.
        """
        with self._lock:
            if self._watermark is None or ts > self._watermark:
                self._watermark = ts

    # ------------------------------------------------------------------
    # deletion (expiry)
    # ------------------------------------------------------------------
    def delete_head(self, count: int) -> None:
        """Drop the ``count`` oldest tuples (they were consumed/expired).

        On a bounded basket this is what frees room: producers parked on
        the ``Block`` policy's not-full condition are woken here.
        """
        with self._lock:
            for builder in self._builders.values():
                builder.drop_head(count)
            if self._track_arrivals:
                self._consumed_abs += count
            if self._capacity is not None and count:
                self._not_full.notify_all()

    # ------------------------------------------------------------------
    # durability (checkpoint/restore)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """A serializable image of the basket (see core.durability).

        Columns are deep-copied BATs (tail + hseq), so the snapshot stays
        valid however the live basket mutates afterwards.  Stateful
        overflow policies contribute their RNG state, keeping shedding
        decisions identical across a checkpoint/restore boundary.
        """
        with self._lock:
            columns = {}
            for name, builder in self._builders.items():
                bat = builder.snapshot()
                columns[name] = BAT(bat.tail.copy(), bat.atom, bat.hseq)
            state = {
                "columns": columns,
                "appended_total": self._appended_total,
                "clock": self._clock,
                "watermark": self._watermark,
                "consumed_abs": self._consumed_abs,
                "shed_total": self.shed_total,
                "block_waits": self.block_waits,
                "block_timeouts": self.block_timeouts,
            }
            rng = getattr(self._policy, "_rng", None)
            if rng is not None:
                state["policy_rng"] = rng.bit_generator.state
            return state

    def restore_state(self, state: dict) -> None:
        """Overwrite contents and counters with a snapshot's image."""
        with self._lock:
            for name, bat in state["columns"].items():
                builder = BATBuilder(bat.atom, hseq=bat.hseq)
                builder.extend(bat.tail)
                self._builders[name] = builder
            self._appended_total = state["appended_total"]
            self._clock = state["clock"]
            self._watermark = state["watermark"]
            self._consumed_abs = state["consumed_abs"]
            self.shed_total = state["shed_total"]
            self.block_waits = state["block_waits"]
            self.block_timeouts = state["block_timeouts"]
            rng = getattr(self._policy, "_rng", None)
            if rng is not None and "policy_rng" in state:
                rng.bit_generator.state = state["policy_rng"]

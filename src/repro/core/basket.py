"""Baskets — DataCell's lightweight stream tables.

A basket is an append-only, lockable collection of head-aligned column
buffers, one per stream attribute (plus the implicit arrival-timestamp
column for time-based queries).  Receptors append incoming tuples; factories
snapshot column views, consume basic windows, and drop expired tuples from
the head (paper §2: "once a tuple has been seen by all relevant queries it
is dropped from its basket").

Thread-safety: every mutating or snapshotting method takes the basket lock;
factories take it once around a whole consume cycle via ``locked()``.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.windows import TS_COLUMN
from repro.errors import BasketError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT, BATBuilder
from repro.kernel.storage import Schema


class Basket:
    """Column-oriented append buffer for one stream."""

    def __init__(self, name: str, schema: Schema, with_timestamps: bool = True) -> None:
        self.name = name
        self.schema = schema
        self._lock = threading.RLock()
        self._builders: dict[str, BATBuilder] = {
            col: BATBuilder(atom) for col, atom in schema.columns
        }
        self._with_ts = with_timestamps
        if with_timestamps:
            self._builders[TS_COLUMN] = BATBuilder(Atom.TIMESTAMP)
        self._appended_total = 0
        self._clock = 0  # fallback logical timestamps
        self._watermark: int | None = None  # explicit time progress

    # ------------------------------------------------------------------
    # locking
    # ------------------------------------------------------------------
    def locked(self):
        """Context manager taking the basket lock (re-entrant)."""
        return self._lock

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            first = next(iter(self._builders.values()))
            return len(first)

    @property
    def count(self) -> int:
        """Number of tuples currently parked in the basket."""
        return len(self)

    @property
    def hseq(self) -> int:
        """Oid of the oldest tuple still present."""
        with self._lock:
            return next(iter(self._builders.values())).hseq

    @property
    def appended_total(self) -> int:
        """Total tuples ever appended (monotonic)."""
        with self._lock:
            return self._appended_total

    # ------------------------------------------------------------------
    # appends (receptor side)
    # ------------------------------------------------------------------
    def append_rows(
        self, rows: Iterable[Sequence], timestamps: Sequence[int] | None = None
    ) -> int:
        """Append tuples in schema order; returns number appended."""
        names = self.schema.names
        with self._lock:
            added = 0
            for row in rows:
                if len(row) != len(names):
                    raise BasketError(
                        f"row arity {len(row)} != schema arity {len(names)}"
                    )
                for name, value in zip(names, row):
                    self._builders[name].append(value)
                if self._with_ts:
                    if timestamps is not None:
                        self._builders[TS_COLUMN].append(timestamps[added])
                    else:
                        self._builders[TS_COLUMN].append(self._clock)
                        self._clock += 1
                added += 1
            self._appended_total += added
            return added

    def append_columns(
        self,
        columns: Mapping[str, Sequence | np.ndarray],
        timestamps: Sequence[int] | np.ndarray | None = None,
    ) -> int:
        """Bulk columnar append (the fast receptor path)."""
        with self._lock:
            expected = set(self.schema.names)
            if set(columns) != expected:
                raise BasketError(
                    f"append_columns needs exactly columns {sorted(expected)}"
                )
            lengths = {len(values) for values in columns.values()}
            if len(lengths) != 1:
                raise BasketError("ragged column append")
            count = lengths.pop()
            for name, values in columns.items():
                self._builders[name].extend(values)
            if self._with_ts:
                if timestamps is not None:
                    if len(timestamps) != count:
                        raise BasketError("timestamp column length mismatch")
                    self._builders[TS_COLUMN].extend(timestamps)
                else:
                    self._builders[TS_COLUMN].extend(
                        np.arange(self._clock, self._clock + count, dtype=np.int64)
                    )
                    self._clock += count
            self._appended_total += count
            return count

    # ------------------------------------------------------------------
    # snapshots (factory side)
    # ------------------------------------------------------------------
    def column(self, name: str) -> BAT:
        """Zero-copy snapshot of one column (valid until the next delete)."""
        with self._lock:
            if name not in self._builders:
                raise BasketError(f"basket {self.name!r} has no column {name!r}")
            return self._builders[name].snapshot()

    def head_slice(self, count: int, columns: Sequence[str]) -> dict[str, BAT]:
        """The oldest ``count`` tuples of the requested columns."""
        with self._lock:
            if count > len(self):
                raise BasketError(
                    f"basket {self.name!r} holds {len(self)} tuples, "
                    f"need {count}"
                )
            return {
                name: self._builders[name].snapshot().slice(0, count)
                for name in columns
            }

    def timestamps(self) -> BAT:
        """Snapshot of the implicit arrival-timestamp column."""
        if not self._with_ts:
            raise BasketError(f"basket {self.name!r} has no timestamps")
        return self.column(TS_COLUMN)

    def count_before(self, ts_bound: int) -> int:
        """Tuples (from the head) with arrival timestamp < ``ts_bound``.

        Timestamps are nondecreasing by arrival, so this is a binary search;
        time-based factories use it to slice basic windows.
        """
        with self._lock:
            ts = self.timestamps()
            return int(np.searchsorted(ts.tail, ts_bound, side="left"))

    def max_timestamp(self) -> int | None:
        """The basket's time watermark.

        The larger of the newest arrival timestamp and any explicitly
        advanced watermark (see :meth:`advance_watermark`).
        """
        with self._lock:
            ts = self.timestamps()
            newest = None if ts.is_empty() else int(ts.tail[-1])
            if self._watermark is None:
                return newest
            if newest is None:
                return self._watermark
            return max(newest, self._watermark)

    def advance_watermark(self, ts: int) -> None:
        """Declare that no tuple with arrival timestamp < ``ts`` will arrive.

        Time-based factories fire when the watermark passes a basic-window
        boundary; advancing it explicitly lets queries close windows during
        stream silence (a punctuation, in stream-processing terms).
        Watermarks only move forward; regressions are ignored.
        """
        with self._lock:
            if self._watermark is None or ts > self._watermark:
                self._watermark = ts

    # ------------------------------------------------------------------
    # deletion (expiry)
    # ------------------------------------------------------------------
    def delete_head(self, count: int) -> None:
        """Drop the ``count`` oldest tuples (they were consumed/expired)."""
        with self._lock:
            for builder in self._builders.values():
                builder.drop_head(count)

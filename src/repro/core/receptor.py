"""Receptors — the ingress edge of the DataCell architecture (Figure 1).

A receptor feeds one stream's basket.  The synchronous methods are what
benchmarks use (bulk columnar appends measured as "loading" cost); the
threaded mode consumes an iterable of rows in the background for the
example applications.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.core.basket import Basket
from repro.errors import StreamError


class Receptor:
    """Feeds tuples into a basket, synchronously or from a thread."""

    def __init__(self, basket: Basket, batch_size: int = 1024) -> None:
        self.basket = basket
        self.batch_size = batch_size
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self.delivered = 0

    # -- synchronous paths -------------------------------------------------
    def push_rows(
        self, rows: Iterable[Sequence], timestamps: Optional[Sequence[int]] = None
    ) -> int:
        count = self.basket.append_rows(rows, timestamps)
        self.delivered += count
        return count

    def push_columns(
        self,
        columns: Mapping[str, Sequence | np.ndarray],
        timestamps: Optional[Sequence[int] | np.ndarray] = None,
    ) -> int:
        count = self.basket.append_columns(columns, timestamps)
        self.delivered += count
        return count

    # -- background path -------------------------------------------------
    def start(
        self,
        source: Iterator[Sequence],
        on_batch: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Consume ``source`` rows into the basket from a daemon thread."""
        if self._thread is not None:
            raise StreamError("receptor already running")
        self._stop_event.clear()

        def loop() -> None:
            batch: list[Sequence] = []
            for row in source:
                if self._stop_event.is_set():
                    break
                batch.append(row)
                if len(batch) >= self.batch_size:
                    self.push_rows(batch)
                    if on_batch is not None:
                        on_batch(len(batch))
                    batch = []
            if batch and not self._stop_event.is_set():
                self.push_rows(batch)
                if on_batch is not None:
                    on_batch(len(batch))

        self._thread = threading.Thread(
            target=loop, name=f"receptor-{self.basket.name}", daemon=True
        )
        self._thread.start()

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the background source to be fully consumed."""
        if self._thread is not None:
            self._thread.join(timeout)
            if not self._thread.is_alive():
                self._thread = None

    def stop(self) -> None:
        self._stop_event.set()
        self.join()

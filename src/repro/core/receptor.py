"""Receptors — the ingress edge of the DataCell architecture (Figure 1).

A receptor feeds one stream's basket.  The synchronous ``push_*`` methods
are what benchmarks use (bulk columnar appends measured as "loading"
cost); the threaded mode (:meth:`Receptor.start`) consumes an iterable of
rows in the background for the example applications.

Overload behaviour: when the basket is bounded (see
:mod:`repro.core.overflow`) an append can raise
:class:`~repro.errors.BasketOverflowError` — the ``Fail`` policy rejecting
a batch, or ``Block`` timing out.  The receptor honours the policy with a
bounded retry/backoff loop (``max_retries`` attempts, exponential backoff
starting at ``backoff`` seconds):

* the synchronous ``push_*`` methods re-raise once retries are exhausted,
  so the caller keeps control of the tuples;
* the background ingest loop cannot re-raise into anyone, so after the
  retries it shuts the batch at the receptor (counted in ``dropped`` and
  the ``ingest_dropped`` profiler counter) and keeps consuming — a stalled
  engine degrades into load shedding instead of an unbounded thread queue.

Every retry, drop, and delivery is surfaced through the receptor's
thread-safe :class:`~repro.kernel.execution.profiler.Profiler` (shared
with the engine's global profiler when built via
:meth:`DataCellEngine.receptor`), alongside the basket's own shed/blocked
counters.  docs/OPERATIONS.md shows how to read them together.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.core.basket import Basket
from repro.errors import BasketOverflowError, StreamError
from repro.kernel.execution.profiler import (
    COUNTER_INGEST_DROPPED,
    COUNTER_INGEST_RETRIES,
    Profiler,
)


class Receptor:
    """Feeds tuples into a basket, synchronously or from a thread.

    ``max_retries``/``backoff`` govern the overflow retry loop (see the
    module docstring); the defaults (no retries) make ``push_*`` surface
    a :class:`BasketOverflowError` on the first failure, which is the
    right behaviour for the ``Fail`` policy tests and for callers that
    implement their own shedding.
    """

    def __init__(
        self,
        basket: Basket,
        batch_size: int = 1024,
        max_retries: int = 0,
        backoff: float = 0.005,
        profiler: Optional[Profiler] = None,
    ) -> None:
        self.basket = basket
        self.batch_size = batch_size
        self.max_retries = max_retries
        self.backoff = backoff
        self.profiler = profiler if profiler is not None else Profiler()
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        #: Tuples admitted into the basket through this receptor.
        self.delivered = 0
        #: Tuples given up by the *background loop* after retries.
        self.dropped = 0

    # -- synchronous paths -------------------------------------------------
    def push_rows(
        self, rows: Iterable[Sequence], timestamps: Optional[Sequence[int]] = None
    ) -> int:
        """Append a row batch; returns the number admitted.

        Retries overflow failures ``max_retries`` times with exponential
        backoff, then re-raises.
        """
        rows = rows if isinstance(rows, list) else list(rows)
        return self._push(self.basket.append_rows, rows, timestamps)

    def push_columns(
        self,
        columns: Mapping[str, Sequence | np.ndarray],
        timestamps: Optional[Sequence[int] | np.ndarray] = None,
    ) -> int:
        """Append a columnar batch; returns the number admitted."""
        return self._push(self.basket.append_columns, columns, timestamps)

    def _push(self, append: Callable, payload, timestamps) -> int:
        attempt = 0
        while True:
            try:
                count = append(payload, timestamps)
            except BasketOverflowError:
                if attempt >= self.max_retries:
                    raise
                attempt += 1
                self.profiler.count(COUNTER_INGEST_RETRIES)
                time.sleep(self.backoff * (2 ** (attempt - 1)))
            else:
                self.delivered += count
                return count

    # -- background path -------------------------------------------------
    def start(
        self,
        source: Iterator[Sequence],
        on_batch: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Consume ``source`` rows into the basket from a daemon thread.

        Batches that still overflow after the retry loop are dropped here
        (counted, never re-raised) so a slow consumer cannot wedge the
        ingest thread forever.
        """
        if self._thread is not None:
            raise StreamError("receptor already running")
        self._stop_event.clear()

        def deliver(batch: list[Sequence]) -> None:
            try:
                admitted = self.push_rows(batch)
            except BasketOverflowError:
                self.dropped += len(batch)
                self.profiler.count(COUNTER_INGEST_DROPPED, len(batch))
                admitted = 0
            if on_batch is not None:
                on_batch(admitted)

        def loop() -> None:
            batch: list[Sequence] = []
            for row in source:
                if self._stop_event.is_set():
                    break
                batch.append(row)
                if len(batch) >= self.batch_size:
                    deliver(batch)
                    batch = []
            if batch and not self._stop_event.is_set():
                deliver(batch)

        self._thread = threading.Thread(
            target=loop, name=f"receptor-{self.basket.name}", daemon=True
        )
        self._thread.start()

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the background source to be fully consumed."""
        if self._thread is not None:
            self._thread.join(timeout)
            if not self._thread.is_alive():
                self._thread = None

    def stop(self) -> None:
        self._stop_event.set()
        self.join()

"""Window specifications for continuous queries.

DataCell supports the paper's window families:

* count-based sliding windows (``|W|`` tuples, sliding by ``|w|``),
* tumbling/hopping windows (slide ≥ size — handled as ``n = 1``),
* landmark windows (fixed start, report every ``|w|`` tuples),
* time-based sliding windows (size/step in microseconds over an arrival
  timestamp).

The incremental machinery only depends on ``n = |W| / |w|`` (the number of
basic windows) and on how the factory slices basket contents into basic
windows, both of which this module centralizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import UnsupportedQueryError
from repro.sql.ast import WindowClause

#: Name of the implicit arrival-timestamp column receptors attach.
TS_COLUMN = "__ts__"


@dataclass(frozen=True)
class WindowSpec:
    """Normalized window parameters for one stream input of a query.

    ``size`` and ``step`` are tuple counts for count-based windows and
    microseconds for time-based ones.  ``size`` is None for landmark
    windows.
    """

    kind: str  # "sliding" | "tumbling" | "landmark"
    size: Optional[int]
    step: int
    time_based: bool = False

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise UnsupportedQueryError("window step must be positive")
        if self.kind in ("sliding", "tumbling"):
            if self.size is None or self.size <= 0:
                raise UnsupportedQueryError("window size must be positive")
            if self.step > self.size:
                # A hopping window with gaps (step > size) skips tuples
                # between windows; the incremental machinery has no notion
                # of a tuple that belongs to *no* basic window, so refuse
                # loudly instead of silently executing altered semantics.
                raise UnsupportedQueryError(
                    f"hopping windows with gaps are not supported: step "
                    f"{self.step} > size {self.size} would skip "
                    f"{self.step - self.size} tuples between windows"
                )
            if self.size % self.step != 0:
                raise UnsupportedQueryError(
                    f"window size {self.size} must be a multiple of the "
                    f"step {self.step} (n = |W|/|w| basic windows)"
                )
        elif self.kind == "landmark":
            if self.size is not None:
                raise UnsupportedQueryError("landmark windows have no size")
        else:
            raise UnsupportedQueryError(f"unknown window kind {self.kind!r}")

    @property
    def basic_windows(self) -> int:
        """``n = |W| / |w|``; 1 for tumbling, 0 (unbounded) for landmark."""
        if self.kind == "landmark":
            return 0
        assert self.size is not None
        return self.size // self.step

    @property
    def is_landmark(self) -> bool:
        return self.kind == "landmark"

    @staticmethod
    def from_clause(clause: WindowClause) -> "WindowSpec":
        return WindowSpec(clause.kind, clause.size, clause.step, clause.time_based)

    @staticmethod
    def sliding(size: int, step: int) -> "WindowSpec":
        """Count-based sliding window helper (tumbling when step == size).

        ``step > size`` describes a hopping window with gaps; this used to
        be silently coerced to a gapless tumbling window (``step := size``),
        changing the query's semantics — now it raises like every other
        unsupported window shape (the ``__post_init__`` validation).
        """
        kind = "tumbling" if step == size else "sliding"
        return WindowSpec(kind, size, step, False)

    @staticmethod
    def tumbling(size: int) -> "WindowSpec":
        return WindowSpec("tumbling", size, size, False)

    @staticmethod
    def landmark(step: int) -> "WindowSpec":
        return WindowSpec("landmark", None, step, False)

    @staticmethod
    def time_sliding(size_us: int, step_us: int) -> "WindowSpec":
        kind = "tumbling" if step_us == size_us else "sliding"
        return WindowSpec(kind, size_us, step_us, True)

"""Bounded-memory landmark store: hot partial suffix + cold spill runs.

Landmark windows (paper §3 "Landmark Window Queries") accumulate state
from the landmark forward and are the engine's one infinite-state shape:
for a non-compacting combine (plain selection, concatenating flows) the
cumulative bundle grows with every arriving tuple.  This module bounds
the *retained* memory of such a query by keeping only a hot in-memory
suffix of landmark partials and spilling cold history to CRC-framed run
files on disk, paged back transparently whenever the factory re-merges
or the landmark is reset.

The spill discipline leans on one algebraic fact the factory already
relies on for landmark compaction: the combine program is an associative
n-ary merge — it runs over a varying number of live bundles each firing,
and compaction feeds its own output back as a later input.  Folding any
*prefix* of the bundle sequence through combine therefore preserves the
final merged result, which is exactly the DBSP view of aggregate state
as mergeable partial batches (PAPERS.md): cold prefixes become sorted,
immutable runs that can be re-merged out of core — or, under partitioned
execution, shipped and merged across workers.

On-disk layout (one directory per spilling query)::

    <spill_dir>/run-00000001.bin   one CRC frame: header {kind, seq,
    <spill_dir>/run-00000002.bin   state} + column blobs (the snapshot
    <spill_dir>/SPILL.json         codec of core/durability.py)

Runs are strictly seq-ordered and non-overlapping; ``SPILL.json`` is the
run manifest, rewritten atomically after every run commit.  Crash safety
mirrors the checkpoint protocol: a run file is fully durable (written to
a temp name, fsynced, renamed) *before* the manifest references it, so
the manifest only ever points at valid runs; orphan runs and temp files
left by a crash are pruned on restore and regenerated deterministically
by journal replay.

Thread-safety: like :class:`~repro.core.partials.PartialStore`, the
store is confined to its owning factory — the scheduler's firing lock
serializes all access.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from typing import Callable, Optional

from repro.core.durability import (
    DurabilityError,
    FaultHook,
    _fsync_dir,
    atomic_write,
    encode_frame,
    iter_frames,
    pack_state,
    unpack_state,
)
from repro.core.partials import Bundle
from repro.errors import SchedulerError
from repro.kernel.execution.profiler import (
    COUNTER_LANDMARK_PAGEIN_BYTES,
    COUNTER_LANDMARK_PAGEINS,
    COUNTER_LANDMARK_SPILL_BYTES,
    COUNTER_LANDMARK_SPILL_RUNS,
    Profiler,
)

#: Fault-injection hook points on the spill paths (see
#: :mod:`repro.testing.faults`); same contract as the durability hooks —
#: the hook fires *after* the named partial effect is on disk, so a
#: crash raised there leaves exactly the state the point describes.
HOOK_SPILL_RUN_BEFORE = "spill.run.before"
HOOK_SPILL_RUN_TORN = "spill.run.torn"
HOOK_SPILL_RUN_WRITTEN = "spill.run.written"
HOOK_SPILL_MANIFEST_WRITTEN = "spill.manifest_written"
HOOK_SPILL_PAGEIN = "spill.pagein"

SPILL_MANIFEST_NAME = "SPILL.json"

#: Fold the hot suffix once this many bundles accumulate even when the
#: byte budget is not exceeded — keeps per-firing packing cost bounded
#: for compacting combines that never need the disk at all.
HOT_FOLD_BUNDLES = 64

#: Consolidate all runs into one before exceeding this count, so a
#: firing pages in at most MAX_RUNS frames and the directory cannot
#: accumulate unbounded file-count even if bytes are bounded.
MAX_RUNS = 8


def run_name(index: int) -> str:
    return f"run-{index:08d}.bin"


def bundle_bytes(bundle: Bundle) -> int:
    """Approximate retained bytes of one bundle's columns."""
    total = 0
    for bat in bundle.values():
        tail = bat.tail
        if tail.dtype == object:  # strings: utf-8 payload + length prefix
            total += 4 * len(tail)
            for value in tail:
                total += len(value) if isinstance(value, str) else 8
        else:
            total += tail.nbytes
    return total


class SpillingStore:
    """Drop-in landmark replacement for :class:`PartialStore`.

    Presents the same interface (``add``/``live``/``bundle``/
    ``replace_all``/``newest_seq``/``snapshot_state``/...) but bounds
    retained memory: when the hot suffix exceeds ``budget_bytes`` the
    cold prefix is folded through ``fold`` (the factory's combine
    program) and, if still over budget, written out as one immutable
    run.  ``live()`` pages runs back in oldest-first, so the factory's
    pack-and-combine merge sees the exact bundle sequence an unbounded
    store would hold — emissions are byte-identical.
    """

    #: PartialStore-compatible marker: landmark stores are "unbounded"
    #: from the expiry machinery's point of view.
    capacity = 0

    def __init__(
        self,
        spill_dir: str,
        budget_bytes: int,
        fold: Callable[[list[Bundle]], Bundle],
        fault_hook: Optional[FaultHook] = None,
        profiler: Optional[Profiler] = None,
    ) -> None:
        self.spill_dir = spill_dir
        self.budget_bytes = budget_bytes
        self._fold = fold
        #: Test seam, same contract as DurabilityManager.fault_hook.
        self.fault_hook = fault_hook
        self._profiler = profiler
        self._bundles: "OrderedDict[int, Bundle]" = OrderedDict()
        self._sizes: dict[int, int] = {}
        self._hot_bytes = 0
        self._next_seq = 0
        #: Committed runs, oldest first: {"name", "seq", "bytes"} where
        #: ``seq`` is the newest basic-window seq the run covers.
        self._runs: list[dict] = []
        self._next_run = 1
        self.spill_count = 0
        self.pagein_count = 0
        self.pagein_bytes = 0

    # -- PartialStore interface -----------------------------------------
    def add(self, bundle: Bundle) -> int:
        """Store the newest bundle; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        self._bundles[seq] = bundle
        size = bundle_bytes(bundle)
        self._sizes[seq] = size
        self._hot_bytes += size
        self._maybe_spill()
        return seq

    def live(self) -> list[tuple[int, Bundle]]:
        """Live bundles oldest first — spilled runs paged back in, then
        the hot suffix.  Paged bundles are not cached: the merge consumes
        them immediately and retained memory stays at the hot budget."""
        out = [(run["seq"], self._page_in(run)) for run in self._runs]
        out.extend(self._bundles.items())
        return out

    def live_seqs(self) -> list[int]:
        return [run["seq"] for run in self._runs] + list(self._bundles)

    def bundle(self, seq: int) -> Bundle:
        try:
            return self._bundles[seq]
        except KeyError:
            raise SchedulerError(
                f"partial for basic window {seq} expired or spilled"
            ) from None

    def replace_all(self, bundle: Bundle) -> None:
        """Collapse everything — disk runs included — to one hot bundle."""
        newest = self.newest_seq
        if newest is None:
            raise SchedulerError("cannot compact an empty partial store")
        self._drop_runs()
        self._bundles.clear()
        self._sizes.clear()
        self._bundles[newest] = bundle
        self._sizes[newest] = bundle_bytes(bundle)
        self._hot_bytes = self._sizes[newest]

    @property
    def newest_seq(self) -> Optional[int]:
        if self._bundles:
            return next(reversed(self._bundles))
        if self._runs:
            return self._runs[-1]["seq"]
        return None

    def __len__(self) -> int:
        return len(self._runs) + len(self._bundles)

    # -- spill machinery ------------------------------------------------
    def _maybe_spill(self) -> None:
        over_budget = self._hot_bytes > self.budget_bytes
        if not over_budget and len(self._bundles) <= HOT_FOLD_BUNDLES:
            return
        if len(self._bundles) < 2:
            return  # a lone partial cannot shrink further; budget is soft
        # Fold the cold prefix (all hot bundles but the newest) into one
        # cumulative bundle keyed at the prefix's newest seq.  For a
        # compacting combine this alone re-bounds memory; otherwise the
        # folded prefix goes to disk.
        seqs = list(self._bundles)
        prefix, newest = seqs[:-1], seqs[-1]
        folded = self._fold([self._bundles[seq] for seq in prefix])
        for seq in prefix:
            self._hot_bytes -= self._sizes.pop(seq)
            del self._bundles[seq]
        fold_seq = prefix[-1]
        newest_bundle = self._bundles.pop(newest)
        self._bundles[fold_seq] = folded
        self._sizes[fold_seq] = bundle_bytes(folded)
        self._hot_bytes += self._sizes[fold_seq]
        self._bundles[newest] = newest_bundle
        if self._hot_bytes > self.budget_bytes:
            self._spill(fold_seq)

    def _spill(self, seq: int) -> None:
        bundle = self._bundles[seq]
        superseded: list[dict] = []
        if len(self._runs) + 1 > MAX_RUNS:
            # Consolidate: merge every existing run with the new bundle
            # into a single covering run (seq order is preserved).
            paged = [self._page_in(run) for run in self._runs]
            bundle = self._fold(paged + [bundle])
            superseded = self._runs
            self._runs = []
        name = run_name(self._next_run)
        self._next_run += 1
        size = self._write_run(name, seq, bundle)
        self._runs.append({"name": name, "seq": seq, "bytes": size})
        self._write_manifest()
        # Superseded runs are unlinked only after the manifest stopped
        # referencing them; a crash in between leaves orphans that the
        # restore path prunes.
        for run in superseded:
            self._unlink(run["name"])
        self._hot_bytes -= self._sizes.pop(seq)
        del self._bundles[seq]
        self.spill_count += 1
        if self._profiler is not None:
            self._profiler.count(COUNTER_LANDMARK_SPILL_RUNS)
            self._profiler.count(COUNTER_LANDMARK_SPILL_BYTES, size)

    def _write_run(self, name: str, seq: int, bundle: Bundle) -> int:
        os.makedirs(self.spill_dir, exist_ok=True)
        skeleton, blobs = pack_state(dict(bundle))
        frame = encode_frame(
            {"kind": "spill-run", "seq": seq, "state": skeleton}, blobs
        )
        path = os.path.join(self.spill_dir, name)
        hook = self.fault_hook
        if hook is not None:
            hook(HOOK_SPILL_RUN_BEFORE)
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            if hook is not None:
                # Same torn-write seam as SegmentWriter.append: leave a
                # half frame durable so a crash there is a real torn run.
                half = max(1, len(frame) // 2)
                fh.write(frame[:half])
                fh.flush()
                os.fsync(fh.fileno())
                hook(HOOK_SPILL_RUN_TORN)
                fh.write(frame[half:])
            else:
                fh.write(frame)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(self.spill_dir)
        if hook is not None:
            hook(HOOK_SPILL_RUN_WRITTEN)
        return len(frame)

    def _write_manifest(self) -> None:
        os.makedirs(self.spill_dir, exist_ok=True)
        manifest = {
            "version": 1,
            "next_run": self._next_run,
            "runs": [dict(run) for run in self._runs],
        }
        atomic_write(
            os.path.join(self.spill_dir, SPILL_MANIFEST_NAME),
            json.dumps(manifest, indent=2).encode("utf-8"),
        )
        hook = self.fault_hook
        if hook is not None:
            hook(HOOK_SPILL_MANIFEST_WRITTEN)

    def _page_in(self, run: dict) -> Bundle:
        hook = self.fault_hook
        if hook is not None:
            hook(HOOK_SPILL_PAGEIN)
        path = os.path.join(self.spill_dir, run["name"])
        frames = list(iter_frames(path))
        if len(frames) != 1:
            # The manifest only ever references fully-durable runs, so a
            # torn run here is corruption, not a crash artifact.
            raise DurabilityError(f"spill run {path} is torn or corrupt")
        header, blobs = frames[0]
        self.pagein_count += 1
        self.pagein_bytes += run["bytes"]
        if self._profiler is not None:
            self._profiler.count(COUNTER_LANDMARK_PAGEINS)
            self._profiler.count(COUNTER_LANDMARK_PAGEIN_BYTES, run["bytes"])
        return unpack_state(header["state"], blobs)

    def _unlink(self, name: str) -> None:
        try:
            os.unlink(os.path.join(self.spill_dir, name))
        except OSError:  # pragma: no cover - defensive
            pass

    def _drop_runs(self) -> None:
        had_runs = bool(self._runs)
        for run in self._runs:
            self._unlink(run["name"])
        self._runs = []
        if had_runs:
            self._write_manifest()

    # -- landmark reset -------------------------------------------------
    def reset(self) -> None:
        """Discard all state, hot and spilled (factory.reset_landmark).

        Mirrors swapping in a fresh PartialStore: the seq counter starts
        over (replay-deterministic), while run numbering stays monotonic
        so a pre-reset run name is never reused.
        """
        self._drop_runs()
        self._bundles.clear()
        self._sizes.clear()
        self._hot_bytes = 0
        self._next_seq = 0

    # -- durability (checkpoint/restore) --------------------------------
    def snapshot_state(self) -> dict:
        """PartialStore-shaped image plus the spill-run manifest.

        Run files are fsynced before the manifest (and hence any
        checkpoint) references them, so a snapshot's run list always
        points at durable files; post-snapshot spills are regenerated
        deterministically by journal replay.
        """
        return {
            "next_seq": self._next_seq,
            "bundles": [
                [seq, dict(bundle)] for seq, bundle in self._bundles.items()
            ],
            "spill": {
                "next_run": self._next_run,
                "runs": [dict(run) for run in self._runs],
            },
        }

    def restore_state(self, state: dict) -> None:
        self._next_seq = int(state["next_seq"])
        self._bundles = OrderedDict(
            (int(seq), bundle) for seq, bundle in state["bundles"]
        )
        self._sizes = {
            seq: bundle_bytes(bundle) for seq, bundle in self._bundles.items()
        }
        self._hot_bytes = sum(self._sizes.values())
        # Tolerate snapshots taken by a plain PartialStore (spill enabled
        # after the checkpoint) — they simply have no runs yet.
        spill = state.get("spill") or {"next_run": 1, "runs": []}
        self._next_run = int(spill["next_run"])
        self._runs = [
            {"name": r["name"], "seq": int(r["seq"]), "bytes": int(r["bytes"])}
            for r in spill["runs"]
        ]
        self._prune_unreferenced()

    def _prune_unreferenced(self) -> None:
        """Delete orphan runs and temp files; re-commit the manifest.

        A crash can leave (a) a fully-written run the checkpoint never
        referenced, (b) a half-written ``.tmp``, or (c) a manifest ahead
        of the restored snapshot.  The adopted snapshot is authoritative;
        journal replay regenerates any post-snapshot spill byte-for-byte
        under the same run names.
        """
        try:
            names = os.listdir(self.spill_dir)
        except FileNotFoundError:
            names = []
        keep = {run["name"] for run in self._runs}
        for name in names:
            if name == SPILL_MANIFEST_NAME or name in keep:
                continue
            self._unlink(name)
        if self._runs or SPILL_MANIFEST_NAME in names:
            self._write_manifest()

    # -- observability ---------------------------------------------------
    def stats(self) -> dict:
        """Gauges for metrics/console (see docs/METRICS.md)."""
        return {
            "budget_bytes": self.budget_bytes,
            "hot_bytes": self._hot_bytes,
            "hot_bundles": len(self._bundles),
            "disk_bytes": sum(run["bytes"] for run in self._runs),
            "runs": len(self._runs),
            "spills": self.spill_count,
            "pageins": self.pagein_count,
            "pagein_bytes": self.pagein_bytes,
        }

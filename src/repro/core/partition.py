"""Key-partitioned stream planning: routing, replication, merge synthesis.

A stream declared with ``partition_by=key`` is hash-partitioned into ``P``
disjoint sub-streams, each owned by one shard worker process
(:mod:`repro.core.shard`).  Every query submitted over the stream is
*replicated*: each worker runs its own factory over its partition, and the
coordinating engine combines the per-partition emissions.  This module is
the pure planning half — no processes, no shared memory — so the whole
taxonomy is unit-testable in isolation (DESIGN.md §14):

* **routing** — a deterministic splitmix/FNV hash of the key column maps
  every arriving tuple to its partition;
* **window alignment** — count-based windows are rewritten to time-based
  windows over a *virtual* time axis (1 ms per global arrival offset), so
  all partitions slice tuple counts identically and emit one batch per
  global window index even when a partition's slice is empty;
* **merge-free vs merge-required** — plans whose groups are functionally
  tied to the partition key concatenate; plans spanning partitions
  (global aggregates, other group keys, ORDER BY, LIMIT, DISTINCT) get a
  synthesized merge query over a ``__partials`` relation, compiled once
  at submit time and statically verified by the plan verifier.

The hidden ``__seq`` column (the tuple's global arrival offset) is fed to
every partition and used as the ORDER BY tie-break, so partitioned ORDER
BY / LIMIT results are *row-identical* to the P=1 engine, not merely
multiset-equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.errors import ReproError, UnsupportedQueryError
from repro.kernel.atoms import Atom, numpy_dtype
from repro.kernel.bat import BAT
from repro.kernel.storage import Catalog, Schema
from repro.sql.ast import (
    BinOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    TableRef,
    UnaryOp,
    WindowClause,
    contains_aggregate,
    walk,
)
from repro.sql.parser import parse
from repro.sql.unparse import unparse

#: Hidden per-tuple column carrying the global arrival offset.
SEQ_COLUMN = "__seq"
#: Relation name the synthesized merge query reads collected partials from.
PARTIALS_RELATION = "__partials"
#: Microseconds per global arrival offset on the virtual time axis.
VIRTUAL_TICK_US = 1_000

#: Atoms a partition key may have (float keys are an equality footgun).
_KEY_ATOMS = frozenset({Atom.INT, Atom.OID, Atom.TIMESTAMP, Atom.STR, Atom.BIT})


@dataclass(frozen=True)
class PartitionSpec:
    """One stream's partitioning declaration."""

    stream: str
    key: str
    partitions: int


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)


def _fnv1a(text: str) -> int:
    acc = 0xCBF29CE484222325
    for byte in text.encode("utf-8", "surrogatepass"):
        acc = ((acc ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


def partition_hash(values: np.ndarray, atom: Atom, partitions: int) -> np.ndarray:
    """Deterministic partition id per value (int64 array in ``[0, P)``).

    Integers go through a splitmix64 finalizer (vectorized, stable across
    processes and runs); strings through FNV-1a.  Never uses Python's
    randomized ``hash()`` — reproducers must route identically forever.
    """
    if atom == Atom.STR:
        hashed = np.fromiter(
            (_fnv1a(v) for v in values), dtype=np.uint64, count=len(values)
        )
    else:
        hashed = np.asarray(values).astype(np.int64, copy=False).view(np.uint64)
        hashed = (hashed + _SPLITMIX_GAMMA) & np.uint64(0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        hashed = (hashed ^ (hashed >> np.uint64(30))) * _MIX_1
        hashed = (hashed ^ (hashed >> np.uint64(27))) * _MIX_2
        hashed = hashed ^ (hashed >> np.uint64(31))
    return (hashed % np.uint64(partitions)).astype(np.int64)


def route_columns(
    columns: dict[str, np.ndarray],
    key: str,
    key_atom: Atom,
    partitions: int,
) -> list[np.ndarray]:
    """Row indices per partition for one arriving batch (stable order)."""
    ids = partition_hash(np.asarray(columns[key]), key_atom, partitions)
    return [np.flatnonzero(ids == p) for p in range(partitions)]


# ----------------------------------------------------------------------
# scratch catalogs
# ----------------------------------------------------------------------
def worker_schema(schema: Schema) -> list[tuple[str, Atom]]:
    """The per-partition stream schema: user columns plus ``__seq``."""
    columns = list(schema.columns)
    return columns + [(SEQ_COLUMN, Atom.INT)]


def scratch_catalog(schema: Schema, stream: str) -> Catalog:
    """A throwaway catalog for planning per-partition SQL at submit time."""
    catalog = Catalog()
    catalog.create_stream(stream, Schema(tuple(worker_schema(schema))))
    return catalog


# ----------------------------------------------------------------------
# expression helpers
# ----------------------------------------------------------------------
def _is_key_ref(expr: Expr, alias: str, key: str) -> bool:
    return (
        isinstance(expr, ColumnRef)
        and expr.name == key
        and expr.table in (None, alias)
    )


def _rebuild(expr: Expr, transform: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Bottom-up rebuild; ``transform`` may replace any subtree."""
    replaced = transform(expr)
    if replaced is not None:
        return replaced
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _rebuild(expr.left, transform), _rebuild(expr.right, transform))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _rebuild(expr.operand, transform))
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            tuple(_rebuild(a, transform) for a in expr.args),
            expr.star,
        )
    return expr


def _aggregate_calls(exprs: list[Expr]) -> list[FuncCall]:
    """Unique aggregate calls across ``exprs``, in first-seen order."""
    seen: dict[FuncCall, None] = {}
    for expr in exprs:
        for node in walk(expr):
            if isinstance(node, FuncCall) and node.is_aggregate:
                seen.setdefault(node, None)
    return list(seen)


# ----------------------------------------------------------------------
# the shard plan
# ----------------------------------------------------------------------
@dataclass
class MergeSpec:
    """The synthesized final-merge query over collected partials.

    ``partials`` is the exact (name, atom) schema every partition's
    emission carries; ``visible`` the user-facing output names (hidden
    ``__ord*``/``__seq``/``__pn`` columns are dropped after execution).
    """

    query: Query
    visible: list[str]
    partials: list[tuple[str, Atom]] = field(default_factory=list)
    compiled: Optional[object] = None  # CompiledQuery, set by finish_merge
    #: Global re-aggregation only: the hidden per-partition row counter
    #: the merge filters on (``WHERE __pn > 0``).  When *every* partition
    #: reports an empty slice, the collector promotes exactly one of the
    #: empty rows through the filter — its sentinel partials (sum=NULL,
    #: count=0) then reproduce the P=1 engine's empty-window aggregates
    #: bit-for-bit instead of aggregating over zero rows.
    pn_column: Optional[str] = None


@dataclass
class ShardPlan:
    """Everything needed to run one submitted SQL query sharded."""

    spec: PartitionSpec
    alias: str
    #: "virtual" — count windows on the offset×1ms axis (watermark driven
    #: by the global fed count); "time" — real user timestamps.
    flavor: str
    #: Per-partition query; FROM still names the parent stream (the
    #: engine substitutes each worker's private stream name at render).
    partition_query: Query
    merge: Optional[MergeSpec]
    #: Taxonomy label for explain/metrics: "concat" | "merge-sort" |
    #: "re-aggregate".
    route: str
    #: True when the per-partition plan scans the hidden __seq column.
    uses_seq: bool
    #: Concat route only: columns the coordinator sorts the concatenated
    #: rows by (ascending, in priority order) so row order matches the
    #: P=1 engine — group keys for grouped output, every output column
    #: for DISTINCT, the hidden __seq arrival offset for plain rows.
    #: Keys are all-unique per window, so no tie-break is needed.
    concat_sort: tuple[str, ...] = ()
    #: Concat-sort helper columns the partition query ships but the user
    #: never sees (dropped after the sort).
    concat_hidden: tuple[str, ...] = ()

    def partition_sql(self, relation: str) -> str:
        """Render the per-partition SQL with the worker's stream name."""
        query = self.partition_query
        table = query.tables[0]
        renamed = Query(
            select_items=query.select_items,
            tables=[TableRef(relation, table.alias, table.window)],
            where=query.where,
            group_by=query.group_by,
            having=query.having,
            order_by=query.order_by,
            limit=query.limit,
            distinct=query.distinct,
        )
        return unparse(renamed)

    def merge_sql(self) -> Optional[str]:
        return unparse(self.merge.query) if self.merge is not None else None


def plan_partition_query(sql: str, schema: Schema, spec: PartitionSpec) -> ShardPlan:
    """Classify + rewrite one submitted query for sharded execution.

    Raises :class:`UnsupportedQueryError` for shapes that cannot be
    merged back faithfully (joins, DISTINCT+LIMIT, DISTINCT with
    non-output ORDER BY keys).  Landmark windows partition fine — their
    cumulative per-partition slices merge window-for-window through the
    same concat / re-aggregate routes as sliding windows (see
    :func:`_aligned_window`).
    """
    query = parse(sql)
    if len(query.tables) != 1:
        raise UnsupportedQueryError(
            "joins are not supported on partitioned streams "
            "(partition the probe side manually or run unpartitioned)"
        )
    table = query.tables[0]
    if table.name != spec.stream:
        raise ReproError(
            f"partition plan for {spec.stream!r} got query over {table.name!r}"
        )
    if table.window is None:
        raise UnsupportedQueryError("continuous queries need a window clause")
    if query.distinct and query.limit is not None:
        raise UnsupportedQueryError(
            "DISTINCT with LIMIT is not supported on partitioned streams"
        )
    alias = table.alias
    window, flavor = _aligned_window(table.window)
    schema_cols = dict(schema.columns)
    if spec.key not in schema_cols:
        raise ReproError(f"partition key {spec.key!r} not in stream schema")

    has_aggregate = bool(query.group_by) or any(
        contains_aggregate(item.expr) for item in query.select_items
    )
    builder = _PlanBuilder(query, alias, spec, window, flavor)
    if not has_aggregate:
        return builder.row_route()
    if query.group_by and any(
        _is_key_ref(g, alias, spec.key) for g in query.group_by
    ):
        return builder.merge_free_grouped()
    return builder.re_aggregate()


def _aligned_window(clause: WindowClause) -> tuple[WindowClause, str]:
    """The cross-partition-aligned window and its timestamp flavor.

    Landmark windows partition like any other: each worker accumulates
    its routed subset's cumulative partials, and because every
    partition's window boundaries sit on the same (virtual or real)
    time axis, the coordinator's per-window concat / re-aggregate merge
    sees aligned, mergeable landmark slices — the per-partition state
    need not be re-merged *incrementally*, only per emitted window.
    """
    if clause.time_based:
        return clause, "time"
    if clause.kind == "landmark":
        # Count-based landmark: no size, only the slide moves onto the
        # virtual arrival-sequence axis.
        return (
            WindowClause(
                "landmark", None, clause.step * VIRTUAL_TICK_US, time_based=True
            ),
            "virtual",
        )
    assert clause.size is not None
    return (
        WindowClause(
            clause.kind,
            clause.size * VIRTUAL_TICK_US,
            clause.step * VIRTUAL_TICK_US,
            time_based=True,
        ),
        "virtual",
    )


class _PlanBuilder:
    """Builds the per-partition query + merge query for one route."""

    def __init__(
        self,
        query: Query,
        alias: str,
        spec: PartitionSpec,
        window: WindowClause,
        flavor: str,
    ) -> None:
        self.q = query
        self.alias = alias
        self.spec = spec
        self.window = window
        self.flavor = flavor
        self.uses_seq = False
        self.output_names = [
            item.output_name(i) for i, item in enumerate(query.select_items)
        ]

    def _table(self) -> TableRef:
        return TableRef(self.spec.stream, self.alias, self.window)

    def _seq_ref(self) -> ColumnRef:
        self.uses_seq = True
        return ColumnRef(None, SEQ_COLUMN)

    def _plan(
        self,
        partition_query: Query,
        merge: Optional[MergeSpec],
        route: str,
        concat_sort: tuple[str, ...] = (),
        concat_hidden: tuple[str, ...] = (),
    ) -> ShardPlan:
        return ShardPlan(
            spec=self.spec,
            alias=self.alias,
            flavor=self.flavor,
            partition_query=partition_query,
            merge=merge,
            route=route,
            uses_seq=self.uses_seq,
            concat_sort=concat_sort,
            concat_hidden=concat_hidden,
        )

    # -- non-aggregate rows ---------------------------------------------
    def row_route(self) -> ShardPlan:
        q = self.q
        if q.distinct:
            return self._row_distinct()
        if not q.order_by and q.limit is None:
            # Ship the arrival offset so the coordinator can restore the
            # P=1 engine's row order (global arrival order) after concat.
            partition = Query(
                select_items=list(q.select_items)
                + [SelectItem(self._seq_ref(), alias=SEQ_COLUMN)],
                tables=[self._table()],
                where=q.where,
            )
            return self._plan(
                partition,
                None,
                "concat",
                concat_sort=(SEQ_COLUMN,),
                concat_hidden=(SEQ_COLUMN,),
            )
        # ORDER BY / LIMIT: ship the user outputs plus hidden sort keys
        # (any non-output ORDER BY expressions and the __seq arrival
        # offset); each partition pre-sorts and pre-limits — the global
        # top-k is a subset of the union of per-partition top-k — and the
        # merge re-sorts with the same keys for exact P=1 row identity.
        items = [
            SelectItem(item.expr, alias=self.output_names[i])
            for i, item in enumerate(q.select_items)
        ]
        order_items: list[OrderItem] = []
        for index, order in enumerate(q.order_by):
            name = self._output_name_for(order.expr)
            if name is None:
                name = f"__ord{index}"
                items.append(SelectItem(order.expr, alias=name))
            order_items.append(OrderItem(ColumnRef(None, name), order.descending))
        items.append(SelectItem(self._seq_ref(), alias=SEQ_COLUMN))
        order_items.append(OrderItem(ColumnRef(None, SEQ_COLUMN), False))
        partition = Query(
            select_items=items,
            tables=[self._table()],
            where=q.where,
            order_by=list(order_items) if q.limit is not None else [],
            limit=q.limit,
        )
        merge_query = Query(
            select_items=[
                SelectItem(ColumnRef(None, item.alias or ""), alias=item.alias)
                for item in items
            ],
            tables=[TableRef(PARTIALS_RELATION, PARTIALS_RELATION, None)],
            order_by=order_items,
            limit=q.limit,
        )
        return self._plan(
            partition,
            MergeSpec(merge_query, visible=list(self.output_names)),
            "merge-sort",
        )

    def _row_distinct(self) -> ShardPlan:
        q = self.q
        key_in_output = any(
            _is_key_ref(item.expr, self.alias, self.spec.key)
            for item in q.select_items
        )
        items = [
            SelectItem(item.expr, alias=self.output_names[i])
            for i, item in enumerate(q.select_items)
        ]
        partition = Query(
            select_items=items,
            tables=[self._table()],
            where=q.where,
            distinct=True,
        )
        if key_in_output and not q.order_by:
            # Identical output rows carry identical keys, so duplicates
            # can never straddle partitions: per-partition DISTINCT is
            # globally complete and concat suffices.  The P=1 engine
            # emits distinct rows in ascending column order; the
            # coordinator restores it after concat (rows are unique).
            return self._plan(
                partition,
                None,
                "concat",
                concat_sort=tuple(self.output_names),
            )
        order_items = []
        for order in q.order_by:
            name = self._output_name_for(order.expr)
            if name is None:
                raise UnsupportedQueryError(
                    "DISTINCT with non-output ORDER BY keys is not "
                    "supported on partitioned streams"
                )
            order_items.append(OrderItem(ColumnRef(None, name), order.descending))
        merge_query = Query(
            select_items=[
                SelectItem(ColumnRef(None, name), alias=name)
                for name in self.output_names
            ],
            tables=[TableRef(PARTIALS_RELATION, PARTIALS_RELATION, None)],
            order_by=order_items,
            distinct=not key_in_output,
        )
        return self._plan(
            partition,
            MergeSpec(merge_query, visible=list(self.output_names)),
            "merge-sort",
        )

    def _output_name_for(self, expr: Expr) -> Optional[str]:
        """The output column an ORDER BY expr refers to, if any."""
        for index, item in enumerate(self.q.select_items):
            name = self.output_names[index]
            if expr == item.expr:
                return name
            if isinstance(expr, ColumnRef) and expr.table is None and expr.name == name:
                return name
        return None

    # -- merge-free grouped ---------------------------------------------
    def merge_free_grouped(self) -> ShardPlan:
        """GROUP BY includes the partition key: groups never straddle
        partitions, so per-partition results (including HAVING and
        DISTINCT) are exact — only a global ORDER BY / LIMIT needs a
        merge pass over the concatenated group rows."""
        q = self.q
        aliased = [
            SelectItem(item.expr, alias=self.output_names[i])
            for i, item in enumerate(q.select_items)
        ]
        if q.distinct and not q.order_by and q.limit is None:
            key_in_output = any(
                _is_key_ref(item.expr, self.alias, self.spec.key)
                for item in q.select_items
            )
            partition = Query(
                select_items=aliased,
                tables=[self._table()],
                where=q.where,
                group_by=list(q.group_by),
                having=q.having,
                distinct=True,
            )
            if key_in_output:
                # Identical rows carry identical keys — duplicates never
                # straddle partitions; DISTINCT re-sorts output rows, so
                # the P=1 order is ascending by every output column.
                return self._plan(
                    partition,
                    None,
                    "concat",
                    concat_sort=tuple(self.output_names),
                )
            # Key not in the output: identical rows from different key
            # groups can land on different partitions, so the dedup must
            # re-run over the concatenated rows at the coordinator.
            merge_query = Query(
                select_items=[
                    SelectItem(ColumnRef(None, name), alias=name)
                    for name in self.output_names
                ],
                tables=[TableRef(PARTIALS_RELATION, PARTIALS_RELATION, None)],
                distinct=True,
            )
            return self._plan(
                partition,
                MergeSpec(merge_query, visible=list(self.output_names)),
                "merge-sort",
            )
        if not q.order_by and q.limit is None:
            # The P=1 engine emits groups in ascending group-key order;
            # ship any group key missing from the output as a hidden
            # column so the coordinator can restore that order after
            # concat (group keys are unique across partitions).
            items = list(aliased)
            sort_names: list[str] = []
            hidden: list[str] = []
            for index, key_expr in enumerate(q.group_by):
                name = self._output_name_for(key_expr)
                if name is None:
                    name = f"__gk{index}"
                    items.append(SelectItem(key_expr, alias=name))
                    hidden.append(name)
                sort_names.append(name)
            partition = Query(
                select_items=items,
                tables=[self._table()],
                where=q.where,
                group_by=list(q.group_by),
                having=q.having,
            )
            return self._plan(
                partition,
                None,
                "concat",
                concat_sort=tuple(sort_names),
                concat_hidden=tuple(hidden),
            )
        items = [
            SelectItem(item.expr, alias=self.output_names[i])
            for i, item in enumerate(q.select_items)
        ]
        order_items: list[OrderItem] = []
        hidden = 0
        for order in q.order_by:
            name = self._output_name_for(order.expr)
            if name is None:
                name = f"__ord{hidden}"
                hidden += 1
                items.append(SelectItem(order.expr, alias=name))
            order_items.append(OrderItem(ColumnRef(None, name), order.descending))
        # Tie-break (and the sort key for a bare LIMIT): the group's first
        # global arrival — exactly the P=1 engine's group emission order.
        items.append(
            SelectItem(
                FuncCall("min", (self._seq_ref(),)), alias="__ordfirst"
            )
        )
        order_items.append(OrderItem(ColumnRef(None, "__ordfirst"), False))
        partition = Query(
            select_items=items,
            tables=[self._table()],
            where=q.where,
            group_by=list(q.group_by),
            having=q.having,
            distinct=q.distinct,
        )
        merge_query = Query(
            select_items=[
                SelectItem(ColumnRef(None, item.alias or ""), alias=item.alias)
                for item in items
            ],
            tables=[TableRef(PARTIALS_RELATION, PARTIALS_RELATION, None)],
            order_by=order_items,
            limit=q.limit,
        )
        return self._plan(
            partition,
            MergeSpec(merge_query, visible=list(self.output_names)),
            "merge-sort",
        )

    # -- re-aggregation --------------------------------------------------
    def re_aggregate(self) -> ShardPlan:
        """Global aggregates or group keys that straddle partitions:
        partitions emit raw partial aggregates (avg split into sum+count,
        count re-merged by summing) plus the group keys, and the merge
        query re-aggregates over the collected ``__partials`` rows."""
        q = self.q
        grouped = bool(q.group_by)
        ordered = bool(q.order_by) or q.limit is not None

        sources: list[Expr] = [item.expr for item in q.select_items]
        if q.having is not None:
            sources.append(q.having)
        sources.extend(order.expr for order in q.order_by)
        calls = _aggregate_calls(sources)

        items: list[SelectItem] = []
        group_map: dict[Expr, ColumnRef] = {}
        for index, g in enumerate(q.group_by):
            name = f"__g{index}"
            items.append(SelectItem(g, alias=name))
            group_map[g] = ColumnRef(None, name)
        call_map: dict[FuncCall, Expr] = {}
        counter = 0
        for call in calls:
            if call.name == "avg":
                s_name, c_name = f"__a{counter}", f"__a{counter + 1}"
                counter += 2
                items.append(SelectItem(FuncCall("sum", call.args), alias=s_name))
                items.append(SelectItem(FuncCall("count", call.args), alias=c_name))
                call_map[call] = BinOp(
                    "/",
                    FuncCall("sum", (ColumnRef(None, s_name),)),
                    FuncCall("sum", (ColumnRef(None, c_name),)),
                )
                continue
            name = f"__a{counter}"
            counter += 1
            items.append(SelectItem(call, alias=name))
            ref = ColumnRef(None, name)
            if call.name in ("sum", "count"):
                # COUNT partials are *summed*, never re-counted — the
                # plan verifier's closure rule, applied one level up.
                call_map[call] = FuncCall("sum", (ref,))
            else:
                call_map[call] = FuncCall(call.name, (ref,))
        if grouped and ordered:
            items.append(
                SelectItem(FuncCall("min", (self._seq_ref(),)), alias="__first")
            )
        if not grouped:
            # A partition with an empty window slice still emits its one
            # global-aggregate row (None/0 partials); __pn lets the merge
            # drop those rows so empty slices cannot poison the merge.
            items.append(SelectItem(FuncCall("count", (), star=True), alias="__pn"))

        partition = Query(
            select_items=items,
            tables=[self._table()],
            where=q.where,
            group_by=list(q.group_by),
        )

        def substitute(expr: Expr) -> Expr:
            def transform(node: Expr) -> Optional[Expr]:
                if isinstance(node, FuncCall) and node in call_map:
                    return call_map[node]
                if node in group_map:
                    return group_map[node]
                return None

            rebuilt = _rebuild(expr, transform)
            for node in walk(rebuilt):
                if isinstance(node, ColumnRef) and not node.name.startswith("__"):
                    raise UnsupportedQueryError(
                        f"cannot re-aggregate across partitions: "
                        f"{node} is neither a group key nor inside an "
                        "aggregate"
                    )
            return rebuilt

        merge_items = [
            SelectItem(substitute(item.expr), alias=self.output_names[i])
            for i, item in enumerate(q.select_items)
        ]
        merge_group = [group_map[g] for g in q.group_by]
        merge_having = substitute(q.having) if q.having is not None else None
        merge_order: list[OrderItem] = []
        hidden = 0
        for order in q.order_by:
            name = self._output_name_for(order.expr)
            if name is None:
                name = f"__ord{hidden}"
                hidden += 1
                merge_items.append(SelectItem(substitute(order.expr), alias=name))
            merge_order.append(OrderItem(ColumnRef(None, name), order.descending))
        if grouped and ordered:
            merge_items.append(
                SelectItem(
                    FuncCall("min", (ColumnRef(None, "__first"),)),
                    alias="__ordfirst",
                )
            )
            merge_order.append(OrderItem(ColumnRef(None, "__ordfirst"), False))
        merge_where = None
        if not grouped:
            merge_where = BinOp(">", ColumnRef(None, "__pn"), Literal(0))
        merge_query = Query(
            select_items=merge_items,
            tables=[TableRef(PARTIALS_RELATION, PARTIALS_RELATION, None)],
            where=merge_where,
            group_by=merge_group,
            having=merge_having,
            order_by=merge_order,
            limit=q.limit,
        )
        merge = MergeSpec(
            merge_query,
            visible=list(self.output_names),
            pn_column=None if grouped else "__pn",
        )
        return self._plan(partition, merge, "re-aggregate")


# ----------------------------------------------------------------------
# merge compilation + execution (engine side)
# ----------------------------------------------------------------------
def finish_merge(
    plan: ShardPlan, partials: list[tuple[str, Atom]], verify: bool = True
) -> None:
    """Compile + statically verify the merge program over ``partials``.

    ``partials`` is the per-partition output schema (from compiling the
    partition query); the merge query's scan of ``__partials`` binds to
    it.  Compilation happens once per submit; execution per window.
    """
    if plan.merge is None:
        return
    from repro.analysis.plan_verifier import check_program
    from repro.sql.optimizer import optimize
    from repro.sql.physical import compile_full
    from repro.sql.planner import plan_query

    catalog = Catalog()
    catalog.create_table(PARTIALS_RELATION, Schema(tuple(partials)))
    planned = optimize(plan_query(unparse(plan.merge.query), catalog))
    compiled = compile_full(planned)
    if verify:
        atoms = dict(partials)
        input_atoms = {
            slot: atoms[column]
            for alias_cols in compiled.scan_inputs.values()
            for column, slot in alias_cols.items()
        }
        check_program(
            compiled.program,
            input_atoms,
            subject=f"merge program ({plan.route})",
        )
    plan.merge.partials = list(partials)
    plan.merge.compiled = compiled


def run_merge(
    plan: ShardPlan,
    interp,
    part_columns: list[dict[str, np.ndarray]],
    profiler=None,
) -> tuple[list[str], dict[str, BAT]]:
    """Execute the merge over one window's collected partition partials.

    ``part_columns`` holds each partition's emitted columns (raw numpy
    tails, in partition order); they are concatenated per column and run
    through the compiled merge program.  Returns the visible outputs.
    """
    merge = plan.merge
    assert merge is not None and merge.compiled is not None
    compiled = merge.compiled
    atoms = dict(merge.partials)
    inputs: dict[str, BAT] = {}
    for alias_cols in compiled.scan_inputs.values():
        for column, slot in alias_cols.items():
            dtype = numpy_dtype(atoms[column])
            parts = [
                np.asarray(cols[column], dtype=dtype) for cols in part_columns
            ]
            stacked = (
                np.concatenate(parts) if parts else np.empty(0, dtype=dtype)
            )
            inputs[slot] = BAT(stacked, atoms[column])
    outputs = interp.run(compiled.program, inputs, profiler)
    named = {
        name: outputs[slot]
        for name, slot in zip(compiled.output_names, compiled.output_slots)
    }
    return list(merge.visible), {name: named[name] for name in merge.visible}


def promote_empty_pn(
    plan: ShardPlan, part_columns: list[dict[str, np.ndarray]]
) -> None:
    """See :attr:`MergeSpec.pn_column`: when every partition's window
    slice was empty, promote partition 0's row through the ``__pn > 0``
    filter (in place) so the merge reproduces P=1 empty-window output."""
    merge = plan.merge
    if merge is None or merge.pn_column is None:
        return
    pn = merge.pn_column
    if any(np.asarray(cols[pn]).sum() > 0 for cols in part_columns if len(cols[pn])):
        return
    if part_columns and len(part_columns[0][pn]):
        part_columns[0][pn] = np.ones_like(np.asarray(part_columns[0][pn]))


def concat_columns(
    names: list[str],
    atoms: list[Atom],
    part_columns: list[dict[str, np.ndarray]],
) -> dict[str, BAT]:
    """Merge-free combine: concatenate partition emissions per column."""
    out: dict[str, BAT] = {}
    for name, atom in zip(names, atoms):
        dtype = numpy_dtype(atom)
        parts = [np.asarray(cols[name], dtype=dtype) for cols in part_columns]
        stacked = np.concatenate(parts) if parts else np.empty(0, dtype=dtype)
        out[name] = BAT(stacked, atom)
    return out


def sort_concat_columns(
    columns: dict[str, BAT], keys: tuple[str, ...]
) -> dict[str, BAT]:
    """Reorder concatenated rows ascending by ``keys`` (priority order).

    Restores the P=1 engine's row order after a merge-free concat.  Key
    values are unique per window (disjoint group keys, distinct rows,
    or the ``__seq`` arrival offset), so no tie-break is needed.
    """
    tails = [columns[key].tail for key in keys]
    length = len(tails[0]) if tails else 0
    if length <= 1:
        return columns
    try:
        order = np.lexsort(tuple(reversed(tails)))
    except TypeError:
        # object-dtype keys (str columns): fall back to a Python sort
        order = np.array(
            sorted(range(length), key=lambda i: tuple(t[i] for t in tails))
        )
    return {
        name: BAT(bat.tail[order], bat.atom) for name, bat in columns.items()
    }


def validate_partition_key(schema: Schema, key: str, stream: str) -> Atom:
    """The key column's atom; raises for missing/unsupported columns."""
    columns = dict(schema.columns)
    if key not in columns:
        raise ReproError(
            f"partition key {key!r} is not a column of stream {stream!r}"
        )
    atom = columns[key]
    if atom not in _KEY_ATOMS:
        raise UnsupportedQueryError(
            f"cannot partition {stream!r} by {key!r}: {atom} keys are not "
            "hashable deterministically (use an int/str/bool key)"
        )
    return atom

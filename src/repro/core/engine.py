"""The DataCell engine facade — the library's main public entry point.

Wires together the whole stack: catalog, baskets, receptors, the SQL
front-end, the incremental rewriter, factories, the scheduler, and
emitters::

    from repro import DataCellEngine

    engine = DataCellEngine()
    engine.create_stream("s", [("x1", "int"), ("x2", "int")])
    query = engine.submit(
        "SELECT x1, sum(x2) FROM s [RANGE 1000 SLIDE 100] "
        "WHERE x1 > 10 GROUP BY x1"
    )
    engine.feed("s", columns={"x1": xs, "x2": ys})
    engine.run_until_idle()
    for batch in query.results():
        print(batch.rows())

Basket sharing: every submitted continuous query gets its *own* basket per
stream and :meth:`feed` fans arriving tuples out to all of them.  This
keeps per-query consumption independent (the paper's refcounted shared
baskets are an orthogonal multi-query optimization discussed in its future
work).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.core.basket import Basket
from repro.core.emitter import CollectingEmitter
from repro.core.factory import FactoryBase, IncrementalFactory, ResultBatch
from repro.core.overflow import OverflowPolicy
from repro.core.partials import FragmentCache
from repro.core.receptor import Receptor
from repro.core.reevaluate import ReevalFactory
from repro.core.rewriter import rewrite
from repro.core.rewriter.canonical import fragment_fingerprint
from repro.core.scheduler import Scheduler
from repro.errors import (
    BasketOverflowError,
    CatalogError,
    ReproError,
    UnsupportedQueryError,
)
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.kernel.execution.backends import BACKENDS
from repro.kernel.execution.interpreter import Interpreter
from repro.kernel.storage import Catalog, Schema, Table
from repro.obs import Observability, collect_metrics, render_json, render_prometheus
from repro.sql.logical import find_scans, pretty_plan
from repro.sql.optimizer import optimize
from repro.sql.physical import compile_full, scan_slot
from repro.sql.planner import plan_query

_ATOM_NAMES = {
    "int": Atom.INT,
    "bigint": Atom.INT,
    "float": Atom.FLT,
    "flt": Atom.FLT,
    "double": Atom.FLT,
    "str": Atom.STR,
    "string": Atom.STR,
    "varchar": Atom.STR,
    "bool": Atom.BIT,
    "bit": Atom.BIT,
    "timestamp": Atom.TIMESTAMP,
    "oid": Atom.OID,
}


def _as_atom(atom) -> Atom:
    if isinstance(atom, Atom):
        return atom
    try:
        return _ATOM_NAMES[str(atom).lower()]
    except KeyError:
        raise CatalogError(f"unknown column type {atom!r}") from None


def _as_schema(columns: Sequence[tuple[str, object]]) -> Schema:
    return Schema(tuple((name, _as_atom(atom)) for name, atom in columns))


@dataclass
class ContinuousQuery:
    """Handle to a registered continuous query."""

    name: str
    sql: str
    mode: str  # "incremental" | "reeval"
    factory: FactoryBase
    emitter: CollectingEmitter
    baskets: dict[str, Basket] = field(default_factory=dict)  # alias -> basket
    #: Static worst-case state bounds (incremental mode only): a
    #: :class:`repro.analysis.resources.ResourceReport` computed at
    #: submit time, or None for reeval queries.
    resources: Optional[object] = None

    def results(self) -> list[ResultBatch]:
        """All result batches produced so far."""
        return self.emitter.batches()

    def last(self) -> Optional[ResultBatch]:
        return self.emitter.last()

    def result_rows(self) -> list[list[tuple]]:
        """Convenience: per-window result rows."""
        return [batch.rows() for batch in self.results()]

    def response_times(self) -> list[float]:
        """Per-window response times in seconds."""
        return [batch.response_seconds for batch in self.results()]


class DataCellEngine:
    """A complete DataCell instance (Figure 1 of the paper).

    ``verify_plans=True`` statically verifies every rewritten plan at
    registration time (:func:`repro.analysis.check_plan`) — a debug mode
    that catches rewriter regressions before a factory ever fires.  The
    default follows the ``REPRO_VERIFY_PLANS`` environment variable
    (``1``/``true``/``yes``/``on`` enables it).

    ``workers`` sets the scheduler's firing parallelism (1 = the
    deterministic sequential mode, N > 1 fires ready factories
    concurrently on a thread pool).  ``fragment_sharing`` (default on)
    lets queries whose per-basic-window fragments are equivalent share one
    computation per basic window through an engine-wide
    :class:`FragmentCache`; it never changes results, only work.

    ``backend`` picks how factories execute their programs:
    ``"interpreted"`` (op-at-a-time, the default) or ``"compiled"``
    (each verified program specialized once into a fused callable, with
    automatic per-program interpreter fallback — DESIGN.md §13).  The
    choice never affects results, and ``backend="compiled"`` implies the
    static plan verifier runs on every submitted incremental plan.

    Overload control is configured per stream: ``create_stream(...,
    capacity=, overflow=)`` bounds that stream's baskets and picks the
    policy applied when producers outrun factories (see
    :mod:`repro.core.overflow` and docs/OPERATIONS.md).  Shed/blocked
    counts surface through :attr:`profiler` and :meth:`overload_stats`.
    """

    def __init__(
        self,
        verify_plans: Optional[bool] = None,
        workers: int = 1,
        fragment_sharing: bool = True,
        observability: bool = True,
        backend: str = "interpreted",
    ) -> None:
        if verify_plans is None:
            flag = os.environ.get("REPRO_VERIFY_PLANS", "")
            verify_plans = flag.strip().lower() in ("1", "true", "yes", "on")
        self.verify_plans = verify_plans
        if backend not in BACKENDS:
            raise ReproError(
                f"unknown execution backend {backend!r}; expected one of {BACKENDS}"
            )
        #: Program-execution backend every factory of this engine uses:
        #: ``"interpreted"`` (default) or ``"compiled"`` (fused callables,
        #: see DESIGN.md §13).  Results are identical either way.
        self.backend = backend
        self.fragment_sharing = fragment_sharing
        #: Tracing sinks (firing spans, latency histograms, per-opcode
        #: durations); ``observability=False`` drops them entirely — the
        #: hot paths then pay a single ``is None`` test (DESIGN.md §11).
        self.obs: Optional[Observability] = Observability() if observability else None
        self.catalog = Catalog()
        self.scheduler = Scheduler(workers=workers, obs=self.obs)
        self.fragment_cache = FragmentCache()
        self._queries: dict[str, ContinuousQuery] = {}
        self._stream_baskets: dict[str, list[Basket]] = {}
        self._stream_fed: dict[str, int] = {}
        # stream -> (capacity, overflow-policy template); templates are
        # cloned per basket so stateful policies never share state.
        self._stream_limits: dict[
            str, tuple[Optional[int], Optional[OverflowPolicy]]
        ] = {}
        # Streams whose per-query baskets no longer hold identical tuples
        # (a Fail/Block overflow raised partway through feed's fan-out).
        # Their queries must not share fragment-cache entries.
        self._diverged_streams: set[str] = set()
        self._query_counter = 0
        self._interp = Interpreter()

    @property
    def profiler(self):
        """The engine-wide profiler (timings + overload counters).

        Basket shed/blocked counts, receptor retries/drops, and factory
        firings all land here; ``engine.profiler.counter("overflow_shed")``
        is the number the acceptance tests and docs/OPERATIONS.md quote.
        """
        return self.scheduler.profiler

    # ------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------
    def create_stream(
        self,
        name: str,
        columns: Sequence[tuple[str, object]],
        capacity: Optional[int] = None,
        overflow: Optional[OverflowPolicy] = None,
    ) -> None:
        """Declare a stream with ``[(column, type), ...]``.

        ``capacity`` bounds every basket bound to this stream (per query —
        each continuous query has its own basket, so the worst-case parked
        memory is ``capacity × queries``).  ``overflow`` is the policy
        applied when an append does not fit (default
        :class:`~repro.core.overflow.Fail`); the instance passed here is a
        *template*, cloned per basket.  Streams with a shedding policy
        (``ShedOldest``/``ShedNewest``/``Sample``) opt their queries out
        of cross-query fragment sharing, because shedding breaks the
        arrival-offset alignment the shared cache keys on (DESIGN.md §7).
        """
        if overflow is not None and capacity is None:
            raise ReproError("an overflow policy needs a capacity")
        self.catalog.create_stream(name, _as_schema(columns))
        self._stream_baskets[name] = []
        self._stream_fed[name] = 0
        self._stream_limits[name] = (capacity, overflow)

    def _new_basket(self, query_name: str, relation: str) -> Basket:
        """A fresh per-query basket honouring the stream's overload knobs."""
        capacity, template = self._stream_limits.get(relation, (None, None))
        basket = Basket(
            f"{query_name}:{relation}",
            self.catalog.stream(relation).schema,
            capacity=capacity,
            overflow=template.clone() if template is not None else None,
        )
        basket.attach_profiler(self.scheduler.profiler)
        if self.obs is not None:
            basket.enable_arrival_tracking()
        return basket

    def _stream_sheds(self, relation: str) -> bool:
        __, template = self._stream_limits.get(relation, (None, None))
        return template is not None and template.sheds

    def create_table(self, name: str, columns: Sequence[tuple[str, object]]) -> Table:
        """Create a persistent base table."""
        return self.catalog.create_table(name, _as_schema(columns))

    def insert(self, table: str, rows: Iterable[Sequence]) -> int:
        """Append rows to a base table."""
        return self.catalog.table(table).append_rows(rows)

    # ------------------------------------------------------------------
    # continuous queries
    # ------------------------------------------------------------------
    def submit(
        self,
        sql: str,
        mode: str = "incremental",
        name: Optional[str] = None,
    ) -> ContinuousQuery:
        """Register a continuous query; returns its handle.

        ``mode`` selects the execution strategy: ``"incremental"`` (the
        paper's DataCell) or ``"reeval"`` (the DataCellR baseline).
        """
        if mode not in ("incremental", "reeval"):
            raise ReproError(f"unknown mode {mode!r}")
        self._query_counter += 1
        query_name = name or f"q{self._query_counter}"
        planned = optimize(plan_query(sql, self.catalog))

        baskets: dict[str, Basket] = {}
        tables: dict[str, Table] = {}
        seen_streams: set[str] = set()
        for scan in find_scans(planned.plan):
            if scan.is_stream:
                if scan.relation in seen_streams:
                    raise UnsupportedQueryError(
                        "self-joins on a single stream are not supported"
                    )
                seen_streams.add(scan.relation)
                basket = self._new_basket(query_name, scan.relation)
                baskets[scan.alias] = basket
                self._stream_baskets[scan.relation].append(basket)
            else:
                tables[scan.alias] = self.catalog.table(scan.relation)

        factory: FactoryBase
        resources = None
        if mode == "incremental":
            plan = rewrite(planned)
            # Static resource bounds (repro.analysis.resources): always
            # computed — it is one abstract-interpretation pass — and
            # attached to the handle; hard findings (a capacity that can
            # never admit a full basic window) raise only in verify mode
            # so production submits keep their warn-at-runtime behaviour.
            from repro.analysis.resources import analyze_resources

            resources = analyze_resources(
                plan, self._stream_limits, subject=query_name
            )
            if self.verify_plans and not resources.ok:
                raise ReproError(
                    "plan resource analysis failed:\n"
                    + resources.report.render(include_warnings=False)
                )
            if self.verify_plans or self.backend == "compiled":
                # Imported lazily: repro.analysis depends on this module.
                # The compiled backend always verifies first — the
                # compiler must only ever see typed, validated programs.
                from repro.analysis.plan_verifier import check_plan

                schemas = {
                    scan.alias: dict(
                        (
                            self.catalog.stream(scan.relation)
                            if scan.is_stream
                            else self.catalog.table(scan.relation)
                        ).schema.columns
                    )
                    for scan in find_scans(planned.plan)
                }
                check_plan(plan, schemas)
            factory = IncrementalFactory(
                plan, baskets, tables, name=query_name, backend=self.backend
            )
            if (
                self.fragment_sharing
                and plan.fragment is not None
                and not any(
                    self._stream_sheds(s) or s in self._diverged_streams
                    for s in seen_streams
                )
            ):
                self._enable_sharing(factory, plan)
        else:
            factory = ReevalFactory(
                planned, baskets, tables, name=query_name, backend=self.backend
            )

        emitter = CollectingEmitter()
        self.scheduler.register(factory, emitter)
        handle = ContinuousQuery(
            query_name, sql, mode, factory, emitter, baskets, resources
        )
        self._queries[query_name] = handle
        return handle

    def _enable_sharing(self, factory: IncrementalFactory, plan) -> None:
        """Register a single-stream factory with the shared fragment cache.

        The share key is ``(stream relation, basic-window geometry,
        canonical fragment fingerprint)``: queries collide exactly when
        they run the same computation over the same basic-window slices —
        window *size* may differ, only the step must match.  Spans are
        anchored at the stream's global arrival offset so queries
        submitted at different times never alias each other's windows.
        """
        alias = plan.stream_aliases[0]
        relation = plan.stream_relations[alias]
        window = plan.windows[alias]
        input_names = {
            scan_slot(alias, column): column for column in plan.scan_columns[alias]
        }
        fingerprint = fragment_fingerprint(plan.fragment, input_names)
        key = (relation, window.step, window.time_based, fingerprint)
        # Keep one ring slot per live basic window (landmark queries read
        # each basic window once, a short ring is plenty for them).
        capacity = window.basic_windows or 8
        self.fragment_cache.register(key, capacity)
        factory.enable_fragment_sharing(
            self.fragment_cache, key, self._stream_fed.get(relation, 0)
        )

    def remove(self, name: str) -> None:
        """Unregister a continuous query and release its baskets."""
        handle = self._queries.pop(name, None)
        if handle is None:
            return
        self.scheduler.unregister(name)
        for basket in handle.baskets.values():
            for baskets in self._stream_baskets.values():
                if basket in baskets:
                    baskets.remove(basket)

    def query(self, name: str) -> ContinuousQuery:
        return self._queries[name]

    # ------------------------------------------------------------------
    # data ingress / scheduling
    # ------------------------------------------------------------------
    def feed(
        self,
        stream: str,
        rows: Optional[Iterable[Sequence]] = None,
        columns: Optional[Mapping[str, Sequence | np.ndarray]] = None,
        timestamps: Optional[Sequence[int] | np.ndarray] = None,
    ) -> int:
        """Append tuples to every basket bound to ``stream``.

        Returns the batch size *offered*; on a bounded stream each query's
        basket admits tuples per its overflow policy independently (a
        ``Fail`` policy raises :class:`~repro.errors.BasketOverflowError`,
        ``Block`` may wait per basket).  Shedding is accounted on the
        baskets and the engine profiler, not in the return value.

        If an overflow raises after some baskets already admitted the
        batch, those baskets have diverged from their neighbours: the
        stream's queries are permanently opted out of fragment sharing
        before the error propagates (a performance demotion, never a
        correctness one), because the shared cache keys on every sharer
        having seen the same tuples (DESIGN.md §7).
        """
        if stream not in self._stream_baskets:
            raise CatalogError(f"unknown stream {stream!r}")
        if (rows is None) == (columns is None):
            raise ReproError("feed needs exactly one of rows= or columns=")
        baskets = self._stream_baskets[stream]
        if rows is not None:
            rows = list(rows)
            count = len(rows)
        else:
            assert columns is not None
            lengths = {len(values) for values in columns.values()}
            count = lengths.pop() if len(lengths) == 1 else 0
        admitted = 0
        for basket in baskets:
            try:
                if rows is not None:
                    basket.append_rows(rows, timestamps)
                else:
                    basket.append_columns(columns, timestamps)
            except BasketOverflowError:
                if admitted:
                    self._demote_sharing(stream)
                raise
            admitted += 1
        # Advance the stream's global arrival offset even when no query is
        # bound yet: fragment-cache spans of queries submitted later must
        # stay aligned with queries that did see these tuples.
        self._stream_fed[stream] += count
        return count

    def _demote_sharing(self, stream: str) -> None:
        """Opt a diverged stream's queries out of fragment sharing.

        Called when a fan-out append failed partway: some baskets hold the
        batch, others do not, so arrival offsets no longer describe the
        same tuples across queries and shared cache entries would be
        wrong.  Future submits on the stream stay unshared too.
        """
        self._diverged_streams.add(stream)
        stream_baskets = self._stream_baskets[stream]
        for handle in self._queries.values():
            if isinstance(handle.factory, IncrementalFactory) and any(
                basket in stream_baskets for basket in handle.baskets.values()
            ):
                handle.factory.disable_fragment_sharing()

    def advance_time(self, stream: str, ts: int) -> None:
        """Advance the time watermark of every basket bound to ``stream``.

        A punctuation: promises no tuple with arrival timestamp < ``ts``
        will arrive, so time-based windows can close during silence.
        """
        if stream not in self._stream_baskets:
            raise CatalogError(f"unknown stream {stream!r}")
        for basket in self._stream_baskets[stream]:
            basket.advance_watermark(ts)

    def receptor(self, query: ContinuousQuery, stream_alias: str) -> Receptor:
        """A receptor bound to one query's basket (threaded ingest).

        A receptor appends to *one* query's basket, bypassing
        :meth:`feed`'s fan-out, so this query's arrival offsets stop
        describing the same data as its neighbours' — fragment sharing is
        switched off for it.
        """
        if isinstance(query.factory, IncrementalFactory):
            query.factory.disable_fragment_sharing()
        return Receptor(
            query.baskets[stream_alias],
            max_retries=3,
            profiler=self.scheduler.profiler,
        )

    def run_until_idle(self) -> int:
        """Fire all ready factories until quiescence; returns firings."""
        return self.scheduler.run_until_idle()

    def overload_stats(self) -> dict[str, dict[str, int]]:
        """Per-stream overload summary aggregated over its query baskets.

        For each stream: the configured ``capacity`` (0 = unbounded),
        total ``parked`` tuples across baskets, the worst single-basket
        occupancy ``max_parked``, and the summed ``shed`` /
        ``block_waits`` / ``block_timeouts`` counters.  The console's
        ``STATS`` command and docs/OPERATIONS.md build on this.
        """
        stats: dict[str, dict[str, int]] = {}
        for stream, baskets in self._stream_baskets.items():
            capacity, __ = self._stream_limits.get(stream, (None, None))
            per = [basket.overflow_stats() for basket in baskets]
            stats[stream] = {
                "capacity": capacity or 0,
                "baskets": len(per),
                "parked": sum(s["parked"] for s in per),
                "max_parked": max((s["parked"] for s in per), default=0),
                "shed": sum(s["shed"] for s in per),
                "block_waits": sum(s["block_waits"] for s in per),
                "block_timeouts": sum(s["block_timeouts"] for s in per),
            }
        return stats

    def metrics(self, format: str = "dict"):
        """Everything the engine can report, in one snapshot.

        ``format="dict"`` (default) returns the structured snapshot of
        :func:`repro.obs.collect_metrics` — engine shape, counters
        (firings, cache hits/misses, overflow, worker errors), per-tag
        plan seconds, per-factory stats, per-stream basket depths, and —
        with observability on — ingest→emit latency quantiles, firing
        durations, per-opcode histograms, and span-ring occupancy.
        ``format="json"`` and ``format="prometheus"`` return the same
        snapshot serialized for export (see docs/OPERATIONS.md §6).
        """
        snapshot = collect_metrics(self)
        if format == "dict":
            return snapshot
        if format == "json":
            return render_json(snapshot)
        if format == "prometheus":
            return render_prometheus(snapshot, obs=self.obs)
        raise ReproError(f"unknown metrics format {format!r}")

    def start(self, poll_interval: float = 0.001) -> None:
        """Run the scheduler in the background (used with receptors)."""
        self.scheduler.start(poll_interval=poll_interval)

    def stop(self, drain: bool = True) -> None:
        self.scheduler.stop(drain=drain)

    def close(self) -> None:
        """Stop background work and release the scheduler's worker pool."""
        self.scheduler.stop(drain=False)
        self.scheduler.close()

    # ------------------------------------------------------------------
    # one-time queries & introspection
    # ------------------------------------------------------------------
    def query_once(self, sql: str) -> dict[str, list]:
        """Run a one-time query over base tables, returning named columns."""
        planned = optimize(plan_query(sql, self.catalog))
        for scan in find_scans(planned.plan):
            if scan.is_stream:
                raise UnsupportedQueryError(
                    "query_once only supports base tables; submit() streams"
                )
        compiled = compile_full(planned)
        inputs: dict[str, BAT] = {}
        for alias, cols in compiled.scan_inputs.items():
            table = self.catalog.table(
                next(
                    s.relation for s in find_scans(planned.plan) if s.alias == alias
                )
            )
            for column, slot in cols.items():
                inputs[slot] = table.column(column)
        outputs = self._interp.run(compiled.program, inputs)
        return {
            name: outputs[slot].to_list()
            for name, slot in zip(compiled.output_names, compiled.output_slots)
        }

    def explain(self, sql: str) -> str:
        """The optimized logical plan, as text."""
        planned = optimize(plan_query(sql, self.catalog))
        return pretty_plan(planned.plan)

    def explain_continuous(self, sql: str) -> str:
        """The rewritten incremental programs, as text."""
        planned = optimize(plan_query(sql, self.catalog))
        return rewrite(planned).describe()

"""The DataCell engine facade — the library's main public entry point.

Wires together the whole stack: catalog, baskets, receptors, the SQL
front-end, the incremental rewriter, factories, the scheduler, and
emitters::

    from repro import DataCellEngine

    engine = DataCellEngine()
    engine.create_stream("s", [("x1", "int"), ("x2", "int")])
    query = engine.submit(
        "SELECT x1, sum(x2) FROM s [RANGE 1000 SLIDE 100] "
        "WHERE x1 > 10 GROUP BY x1"
    )
    engine.feed("s", columns={"x1": xs, "x2": ys})
    engine.run_until_idle()
    for batch in query.results():
        print(batch.rows())

Basket sharing: every submitted continuous query gets its *own* basket per
stream and :meth:`feed` fans arriving tuples out to all of them.  This
keeps per-query consumption independent (the paper's refcounted shared
baskets are an orthogonal multi-query optimization discussed in its future
work).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.core.basket import Basket
from repro.core.durability import (
    DurabilityError,
    DurabilityManager,
    has_data,
    typed_values,
)
from repro.core.emitter import CollectingEmitter
from repro.core.factory import FactoryBase, IncrementalFactory, ResultBatch
from repro.core.overflow import OverflowPolicy, parse_overflow_spec, policy_spec
from repro.core.partials import FragmentCache
from repro.core.partition import (
    SEQ_COLUMN,
    PartitionSpec,
    VIRTUAL_TICK_US,
    finish_merge,
    plan_partition_query,
    route_columns,
    scratch_catalog,
    validate_partition_key,
    worker_schema,
)
from repro.core.windows import TS_COLUMN
from repro.core.receptor import Receptor
from repro.core.reevaluate import ReevalFactory
from repro.core.rewriter import rewrite
from repro.core.rewriter.canonical import fragment_fingerprint
from repro.core.scheduler import Scheduler
from repro.errors import (
    BasketOverflowError,
    CatalogError,
    ReproError,
    UnsupportedQueryError,
)
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.kernel.execution.backends import BACKENDS
from repro.kernel.execution.interpreter import Interpreter
from repro.kernel.execution.profiler import (
    COUNTER_RECOVERY_SUPPRESSED,
    COUNTER_REPLAYED_RECORDS,
)
from repro.kernel.storage import Catalog, Schema, Table
from repro.obs import Observability, collect_metrics, render_json, render_prometheus
from repro.sql.logical import find_scans, pretty_plan
from repro.sql.optimizer import optimize
from repro.sql.physical import compile_full, scan_slot
from repro.sql.planner import plan_query

_ATOM_NAMES = {
    "int": Atom.INT,
    "bigint": Atom.INT,
    "float": Atom.FLT,
    "flt": Atom.FLT,
    "double": Atom.FLT,
    "str": Atom.STR,
    "string": Atom.STR,
    "varchar": Atom.STR,
    "bool": Atom.BIT,
    "bit": Atom.BIT,
    "timestamp": Atom.TIMESTAMP,
    "oid": Atom.OID,
}


def _as_atom(atom) -> Atom:
    if isinstance(atom, Atom):
        return atom
    try:
        return _ATOM_NAMES[str(atom).lower()]
    except KeyError:
        raise CatalogError(f"unknown column type {atom!r}") from None


def _as_schema(columns: Sequence[tuple[str, object]]) -> Schema:
    return Schema(tuple((name, _as_atom(atom)) for name, atom in columns))


def _pack_batches(batches: Sequence[ResultBatch]) -> list[dict]:
    """Serializable image of emitted result batches (checkpointing)."""
    return [
        {
            "names": list(batch.names),
            "columns": dict(batch.columns),
            "window_index": batch.window_index,
            "response_seconds": batch.response_seconds,
            "breakdown": dict(batch.breakdown),
        }
        for batch in batches
    ]


def _unpack_batches(entries: Sequence[dict]) -> list[ResultBatch]:
    return [
        ResultBatch(
            names=list(entry["names"]),
            columns=entry["columns"],
            window_index=entry["window_index"],
            response_seconds=entry["response_seconds"],
            breakdown=entry["breakdown"],
        )
        for entry in entries
    ]


@dataclass
class _PartitionedStream:
    """Coordinator-side state of one ``PARTITION BY`` stream."""

    spec: PartitionSpec
    key_atom: Atom
    #: Tuples routed to each partition so far (skew gauge source).
    routed: list[int]
    #: Query names waiting for a real-time window anchor (the first
    #: arrival timestamp fed after their submit).
    pending_anchor: set = field(default_factory=set)


@dataclass
class ContinuousQuery:
    """Handle to a registered continuous query."""

    name: str
    sql: str
    mode: str  # "incremental" | "reeval"
    factory: FactoryBase
    emitter: CollectingEmitter
    baskets: dict[str, Basket] = field(default_factory=dict)  # alias -> basket
    #: Static worst-case state bounds (incremental mode only): a
    #: :class:`repro.analysis.resources.ResourceReport` computed at
    #: submit time, or None for reeval queries.
    resources: Optional[object] = None

    def results(self) -> list[ResultBatch]:
        """All result batches produced so far."""
        return self.emitter.batches()

    def last(self) -> Optional[ResultBatch]:
        return self.emitter.last()

    def result_rows(self) -> list[list[tuple]]:
        """Convenience: per-window result rows."""
        return [batch.rows() for batch in self.results()]

    def response_times(self) -> list[float]:
        """Per-window response times in seconds."""
        return [batch.response_seconds for batch in self.results()]


class DataCellEngine:
    """A complete DataCell instance (Figure 1 of the paper).

    ``verify_plans=True`` statically verifies every rewritten plan at
    registration time (:func:`repro.analysis.check_plan`) — a debug mode
    that catches rewriter regressions before a factory ever fires.  The
    default follows the ``REPRO_VERIFY_PLANS`` environment variable
    (``1``/``true``/``yes``/``on`` enables it).

    ``workers`` sets the scheduler's firing parallelism (1 = the
    deterministic sequential mode, N > 1 fires ready factories
    concurrently on a thread pool).  ``fragment_sharing`` (default on)
    lets queries whose per-basic-window fragments are equivalent share one
    computation per basic window through an engine-wide
    :class:`FragmentCache`; it never changes results, only work.

    ``backend`` picks how factories execute their programs:
    ``"interpreted"`` (op-at-a-time, the default) or ``"compiled"``
    (each verified program specialized once into a fused callable, with
    automatic per-program interpreter fallback — DESIGN.md §13).  The
    choice never affects results, and ``backend="compiled"`` implies the
    static plan verifier runs on every submitted incremental plan.

    Overload control is configured per stream: ``create_stream(...,
    capacity=, overflow=)`` bounds that stream's baskets and picks the
    policy applied when producers outrun factories (see
    :mod:`repro.core.overflow` and docs/OPERATIONS.md).  Shed/blocked
    counts surface through :attr:`profiler` and :meth:`overload_stats`.
    """

    def __init__(
        self,
        verify_plans: Optional[bool] = None,
        workers: int = 1,
        fragment_sharing: bool = True,
        observability: bool = True,
        backend: str = "interpreted",
        partitions: int = 1,
        data_dir: Optional[str] = None,
        landmark_spill_mb: Optional[float] = None,
    ) -> None:
        if partitions < 1:
            raise ReproError("partitions must be >= 1")
        if landmark_spill_mb is not None and landmark_spill_mb <= 0:
            raise ReproError("landmark_spill_mb must be > 0")
        #: Bounded-memory landmark state (DESIGN.md §16): when set, every
        #: single-stream landmark query keeps a hot in-memory suffix of
        #: partials within this byte budget and spills folded cold history
        #: to CRC-framed run files, paged back only for re-aggregation.
        self.landmark_spill_mb = landmark_spill_mb
        # Lazily-created tempdir root for ephemeral (no data_dir) engines'
        # spill runs; durable engines spill under <data_dir>/spill/.
        self._spill_root: Optional[str] = None
        # Fault-injection hook forwarded to spilling stores (and the
        # durability manager) — see install_fault_hook.
        self._fault_hook = None
        if verify_plans is None:
            flag = os.environ.get("REPRO_VERIFY_PLANS", "")
            verify_plans = flag.strip().lower() in ("1", "true", "yes", "on")
        self.verify_plans = verify_plans
        if backend not in BACKENDS:
            raise ReproError(
                f"unknown execution backend {backend!r}; expected one of {BACKENDS}"
            )
        #: Program-execution backend every factory of this engine uses:
        #: ``"interpreted"`` (default) or ``"compiled"`` (fused callables,
        #: see DESIGN.md §13).  Results are identical either way.
        self.backend = backend
        self.fragment_sharing = fragment_sharing
        #: Tracing sinks (firing spans, latency histograms, per-opcode
        #: durations); ``observability=False`` drops them entirely — the
        #: hot paths then pay a single ``is None`` test (DESIGN.md §11).
        self.obs: Optional[Observability] = Observability() if observability else None
        self.catalog = Catalog()
        self.scheduler = Scheduler(workers=workers, obs=self.obs)
        self.fragment_cache = FragmentCache()
        self._queries: dict[str, ContinuousQuery] = {}
        self._stream_baskets: dict[str, list[Basket]] = {}
        self._stream_fed: dict[str, int] = {}
        # stream -> (capacity, overflow-policy template); templates are
        # cloned per basket so stateful policies never share state.
        self._stream_limits: dict[
            str, tuple[Optional[int], Optional[OverflowPolicy]]
        ] = {}
        # Streams whose per-query baskets no longer hold identical tuples
        # (a Fail/Block overflow raised partway through feed's fan-out).
        # Their queries must not share fragment-cache entries.
        self._diverged_streams: set[str] = set()
        self._query_counter = 0
        self._interp = Interpreter()
        #: Sharded execution (DESIGN.md §14): ``partitions > 1`` spawns
        #: one worker process per partition *eagerly* (before any scheduler
        #: threads exist, so fork stays safe) and enables ``PARTITION BY``
        #: streams.  With ``partitions=1`` such streams degrade to the
        #: ordinary in-process path — same results, no worker processes.
        self.partitions = partitions
        self._shards = None
        self._partitioned: dict[str, _PartitionedStream] = {}
        self._pqueries: dict[str, "PartitionedQuery"] = {}
        #: Query names in submission order (both kinds) — the resubmission
        #: order a snapshot restore follows.
        self._submit_order: list[str] = []
        # Serializes the shard pump (run_until_idle's worker section)
        # against checkpoint's worker-snapshot request: both talk on the
        # same pipes, and interleaved request/reply pairs would cross.
        self._shard_pump_lock = threading.Lock()
        if partitions > 1:
            from repro.core.shard import ShardSet

            self._shards = ShardSet(
                partitions,
                backend=backend,
                verify_plans=False,  # the coordinator verifies once
                fragment_sharing=fragment_sharing,
                landmark_spill_mb=landmark_spill_mb,
            )
        #: Durability (DESIGN.md §15): a data_dir arms the write-ahead
        #: journal; every state-changing call below appends a record
        #: before returning.  ``DataCellEngine.restore(data_dir)``
        #: recovers; a dir that already holds data must go through it.
        self._dur: Optional[DurabilityManager] = None
        if data_dir is not None:
            if has_data(data_dir):
                raise DurabilityError(
                    f"data dir {data_dir!r} already holds a journal or "
                    "snapshot; recover it with DataCellEngine.restore()"
                )
            self._dur = DurabilityManager(data_dir, profiler=self.profiler)
            # The journal's first record carries the engine shape, so a
            # never-checkpointed dir can still be restored from seq 0.
            self._dur.journal("meta", self._meta())

    @property
    def profiler(self):
        """The engine-wide profiler (timings + overload counters).

        Basket shed/blocked counts, receptor retries/drops, and factory
        firings all land here; ``engine.profiler.counter("overflow_shed")``
        is the number the acceptance tests and docs/OPERATIONS.md quote.
        """
        return self.scheduler.profiler

    def _meta(self) -> dict:
        """The constructor shape a restore must reproduce."""
        return {
            "backend": self.backend,
            "partitions": self.partitions,
            "workers": self.scheduler.workers,
            "fragment_sharing": self.fragment_sharing,
            "observability": self.obs is not None,
            "verify_plans": self.verify_plans,
            "landmark_spill_mb": self.landmark_spill_mb,
        }

    def _dur_guard(self):
        """The journal lock when durability is armed (the engine's
        outermost lock, DESIGN.md §15) — a no-op context otherwise."""
        return self._dur.lock if self._dur is not None else nullcontext()

    # ------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------
    def create_stream(
        self,
        name: str,
        columns: Sequence[tuple[str, object]],
        capacity: Optional[int] = None,
        overflow: Optional[OverflowPolicy] = None,
        partition_by: Optional[str] = None,
    ) -> None:
        """Declare a stream with ``[(column, type), ...]``.

        ``partition_by`` names a key column: arriving tuples are
        hash-routed into ``engine.partitions`` disjoint sub-streams and
        every query over the stream runs replicated across the shard
        worker processes (DESIGN.md §14).  With ``partitions=1`` the
        declaration is accepted but execution stays in-process — the
        fallback is exact, results never differ.  Float keys are
        rejected (no deterministic hash); ``capacity``/``overflow`` are
        applied per partition, so a bounded partitioned stream parks at
        most ``capacity × partitions × queries`` tuples and shedding
        policies act on each partition's arrival order independently.

        ``capacity`` bounds every basket bound to this stream (per query —
        each continuous query has its own basket, so the worst-case parked
        memory is ``capacity × queries``).  ``overflow`` is the policy
        applied when an append does not fit (default
        :class:`~repro.core.overflow.Fail`); the instance passed here is a
        *template*, cloned per basket.  Streams with a shedding policy
        (``ShedOldest``/``ShedNewest``/``Sample``) opt their queries out
        of cross-query fragment sharing, because shedding breaks the
        arrival-offset alignment the shared cache keys on (DESIGN.md §7).
        """
        with self._dur_guard():
            schema = self._create_stream_impl(
                name, columns, capacity, overflow, partition_by, broadcast=True
            )
            if self._dur is not None:
                self._dur.journal(
                    "create_stream",
                    {
                        "name": name,
                        "columns": [[c, a.value] for c, a in schema.columns],
                        "capacity": capacity,
                        "overflow": policy_spec(overflow),
                        "partition_by": partition_by,
                    },
                )

    def _create_stream_impl(
        self,
        name: str,
        columns: Sequence[tuple[str, object]],
        capacity: Optional[int],
        overflow: Optional[OverflowPolicy],
        partition_by: Optional[str],
        broadcast: bool,
    ) -> Schema:
        """Shared by :meth:`create_stream` and the snapshot-restore path
        (which skips the worker broadcast — workers restore themselves)."""
        if overflow is not None and capacity is None:
            raise ReproError("an overflow policy needs a capacity")
        schema = _as_schema(columns)
        if partition_by is not None:
            key_atom = validate_partition_key(schema, partition_by, name)
        self.catalog.create_stream(name, schema)
        self._stream_baskets[name] = []
        self._stream_fed[name] = 0
        self._stream_limits[name] = (capacity, overflow)
        if partition_by is not None and self._shards is not None:
            spec = PartitionSpec(name, partition_by, self.partitions)
            self._partitioned[name] = _PartitionedStream(
                spec, key_atom, routed=[0] * self.partitions
            )
            if broadcast:
                self._shards.broadcast(
                    (
                        "create_stream",
                        name,
                        [(c, a.value) for c, a in worker_schema(schema)],
                        capacity,
                        overflow,
                    )
                )
        return schema

    def _new_basket(self, query_name: str, relation: str) -> Basket:
        """A fresh per-query basket honouring the stream's overload knobs."""
        capacity, template = self._stream_limits.get(relation, (None, None))
        basket = Basket(
            f"{query_name}:{relation}",
            self.catalog.stream(relation).schema,
            capacity=capacity,
            overflow=template.clone() if template is not None else None,
        )
        basket.attach_profiler(self.scheduler.profiler)
        if self.obs is not None:
            basket.enable_arrival_tracking()
        if self._dur is not None:
            basket.attach_journal(self._dur)
        return basket

    def _stream_sheds(self, relation: str) -> bool:
        __, template = self._stream_limits.get(relation, (None, None))
        return template is not None and template.sheds

    def create_table(self, name: str, columns: Sequence[tuple[str, object]]) -> Table:
        """Create a persistent base table."""
        with self._dur_guard():
            schema = _as_schema(columns)
            table = self.catalog.create_table(name, schema)
            if self._dur is not None:
                self._dur.journal(
                    "create_table",
                    {
                        "name": name,
                        "columns": [[c, a.value] for c, a in schema.columns],
                    },
                )
            return table

    def insert(self, table: str, rows: Iterable[Sequence]) -> int:
        """Append rows to a base table."""
        with self._dur_guard():
            rows = list(rows)
            count = self.catalog.table(table).append_rows(rows)
            if self._dur is not None:
                schema = self.catalog.table(table).schema
                self._dur.journal(
                    "insert",
                    {
                        "table": table,
                        "columns": {
                            name: typed_values(
                                [row[i] for row in rows], atom
                            )
                            for i, (name, atom) in enumerate(schema.columns)
                        },
                    },
                )
            return count

    # ------------------------------------------------------------------
    # continuous queries
    # ------------------------------------------------------------------
    def submit(
        self,
        sql: str,
        mode: str = "incremental",
        name: Optional[str] = None,
    ) -> ContinuousQuery:
        """Register a continuous query; returns its handle.

        ``mode`` selects the execution strategy: ``"incremental"`` (the
        paper's DataCell) or ``"reeval"`` (the DataCellR baseline).
        """
        with self._dur_guard():
            handle = self._submit_impl(sql, mode, name)
            if self._dur is not None:
                self._dur.journal(
                    "submit", {"sql": sql, "mode": mode, "name": handle.name}
                )
            return handle

    def _submit_impl(self, sql: str, mode: str, name: Optional[str]):
        if mode not in ("incremental", "reeval"):
            raise ReproError(f"unknown mode {mode!r}")
        self._query_counter += 1
        query_name = name or f"q{self._query_counter}"
        if self._shards is not None and self._partitioned:
            from repro.sql.parser import parse

            try:
                scanned = [t.name for t in parse(sql).tables]
            except ReproError:
                scanned = []  # let the ordinary path raise the parse error
            if any(t in self._partitioned for t in scanned):
                return self._submit_partitioned(sql, mode, query_name)
        planned = optimize(plan_query(sql, self.catalog))

        baskets: dict[str, Basket] = {}
        tables: dict[str, Table] = {}
        seen_streams: set[str] = set()
        for scan in find_scans(planned.plan):
            if scan.is_stream:
                if scan.relation in seen_streams:
                    raise UnsupportedQueryError(
                        "self-joins on a single stream are not supported"
                    )
                seen_streams.add(scan.relation)
                basket = self._new_basket(query_name, scan.relation)
                baskets[scan.alias] = basket
                self._stream_baskets[scan.relation].append(basket)
            else:
                tables[scan.alias] = self.catalog.table(scan.relation)

        factory: FactoryBase
        resources = None
        if mode == "incremental":
            plan = rewrite(planned)
            # Static resource bounds (repro.analysis.resources): always
            # computed — it is one abstract-interpretation pass — and
            # attached to the handle; hard findings (a capacity that can
            # never admit a full basic window) raise only in verify mode
            # so production submits keep their warn-at-runtime behaviour.
            from repro.analysis.resources import analyze_resources

            resources = analyze_resources(
                plan,
                self._stream_limits,
                subject=query_name,
                landmark_spill_mb=self.landmark_spill_mb,
            )
            if self.verify_plans and not resources.ok:
                raise ReproError(
                    "plan resource analysis failed:\n"
                    + resources.report.render(include_warnings=False)
                )
            if self.verify_plans or self.backend == "compiled":
                # Imported lazily: repro.analysis depends on this module.
                # The compiled backend always verifies first — the
                # compiler must only ever see typed, validated programs.
                from repro.analysis.plan_verifier import check_plan

                schemas = {
                    scan.alias: dict(
                        (
                            self.catalog.stream(scan.relation)
                            if scan.is_stream
                            else self.catalog.table(scan.relation)
                        ).schema.columns
                    )
                    for scan in find_scans(planned.plan)
                }
                check_plan(plan, schemas)
            factory = IncrementalFactory(
                plan, baskets, tables, name=query_name, backend=self.backend
            )
            if (
                self.landmark_spill_mb is not None
                and not plan.is_join
                and plan.windows
                and all(w.is_landmark for w in plan.windows.values())
            ):
                factory.enable_landmark_spill(
                    self._spill_dir_for(query_name),
                    int(self.landmark_spill_mb * 1024 * 1024),
                    fault_hook=self._fault_hook,
                    profiler=self.profiler,
                )
            if (
                self.fragment_sharing
                and plan.fragment is not None
                and not any(
                    self._stream_sheds(s) or s in self._diverged_streams
                    for s in seen_streams
                )
            ):
                self._enable_sharing(factory, plan)
        else:
            factory = ReevalFactory(
                planned, baskets, tables, name=query_name, backend=self.backend
            )

        emitter = CollectingEmitter()
        self.scheduler.register(factory, emitter)
        handle = ContinuousQuery(
            query_name, sql, mode, factory, emitter, baskets, resources
        )
        self._queries[query_name] = handle
        self._submit_order.append(query_name)
        return handle

    def _submit_partitioned(self, sql: str, mode: str, query_name: str):
        """Replicate one query across the shard workers (DESIGN.md §14).

        The coordinator classifies the query (concat / merge-sort /
        re-aggregate), renders per-partition SQL against each worker's
        private stream, statically verifies both the partition plan and
        the synthesized merge program, and returns a
        :class:`~repro.core.shard.PartitionedQuery` handle.
        """
        from repro.core.shard import PartitionedQuery

        from repro.sql.parser import parse

        stream = next(
            t.name for t in parse(sql).tables if t.name in self._partitioned
        )
        state = self._partitioned[stream]
        schema = self.catalog.schema_of(stream)
        plan = plan_partition_query(sql, schema, state.spec)
        self._verify_partition_query(plan, schema, mode)
        anchor = None
        if plan.flavor == "virtual":
            # Late submits: the virtual clock already advanced to the
            # stream's fed count; anchoring at it (not 0) keeps the first
            # window from closing on historical watermarks.
            anchor = self._stream_fed[stream] * VIRTUAL_TICK_US
        part_sql = plan.partition_sql(f"__shard_{query_name}")
        replies = self._shards.request_all(
            ("submit", query_name, stream, part_sql, mode, plan.flavor, anchor)
        )
        out_names, atom_values = replies[0][1]
        partials = [(n, Atom(a)) for n, a in zip(out_names, atom_values)]
        finish_merge(plan, partials, verify=True)
        partial_names: list[str] = []
        partial_atoms: list[Atom] = []
        if plan.merge is None:
            # Hidden concat-sort helpers ship with every emission but are
            # dropped after the coordinator's ordering pass.
            hidden = set(plan.concat_hidden)
            partial_names = [n for n, __ in partials]
            partial_atoms = [a for __, a in partials]
            visible_names = [n for n in partial_names if n not in hidden]
            visible_atoms = [a for n, a in partials if n not in hidden]
        else:
            compiled = plan.merge.compiled
            atom_of = dict(zip(compiled.output_names, compiled.output_atoms))
            visible_names = list(plan.merge.visible)
            visible_atoms = [atom_of[n] for n in visible_names]
        handle = PartitionedQuery(
            name=query_name,
            sql=sql,
            mode=mode,
            plan=plan,
            output_names=visible_names,
            output_atoms=visible_atoms,
            partitions=self.partitions,
            partial_names=partial_names,
            partial_atoms=partial_atoms,
        )
        if plan.flavor == "time":
            state.pending_anchor.add(query_name)
        self._pqueries[query_name] = handle
        self._submit_order.append(query_name)
        return handle

    def _verify_partition_query(self, plan, schema: Schema, mode: str) -> None:
        """Static checks the coordinator runs so workers never see a plan
        the P=1 engine would have rejected (workers run verify off)."""
        if not (self.verify_plans or self.backend == "compiled"):
            return
        catalog = scratch_catalog(schema, "__scratch")
        planned = optimize(plan_query(plan.partition_sql("__scratch"), catalog))
        if mode == "incremental":
            from repro.analysis.plan_verifier import check_plan

            rewritten = rewrite(planned)
            check_plan(rewritten, {plan.alias: dict(worker_schema(schema))})

    def _enable_sharing(self, factory: IncrementalFactory, plan) -> None:
        """Register a single-stream factory with the shared fragment cache.

        The share key is ``(stream relation, basic-window geometry,
        canonical fragment fingerprint)``: queries collide exactly when
        they run the same computation over the same basic-window slices —
        window *size* may differ, only the step must match.  Spans are
        anchored at the stream's global arrival offset so queries
        submitted at different times never alias each other's windows.
        """
        alias = plan.stream_aliases[0]
        relation = plan.stream_relations[alias]
        window = plan.windows[alias]
        input_names = {
            scan_slot(alias, column): column for column in plan.scan_columns[alias]
        }
        fingerprint = fragment_fingerprint(plan.fragment, input_names)
        key = (relation, window.step, window.time_based, fingerprint)
        # Keep one ring slot per live basic window (landmark queries read
        # each basic window once, a short ring is plenty for them).
        capacity = window.basic_windows or 8
        self.fragment_cache.register(key, capacity)
        factory.enable_fragment_sharing(
            self.fragment_cache, key, self._stream_fed.get(relation, 0)
        )

    # -- landmark spill plumbing (DESIGN.md §16) -----------------------
    def _spill_dir_for(self, query_name: str) -> str:
        """This query's private spill directory.

        Durable engines spill under ``<data_dir>/spill/<query>`` so runs
        survive a crash alongside the journal; ephemeral engines use a
        lazily-created tempdir removed on :meth:`close`/:meth:`abandon`.
        """
        if self._dur is not None:
            return os.path.join(self._dur.data_dir, "spill", query_name)
        if self._spill_root is None:
            self._spill_root = tempfile.mkdtemp(prefix="repro-spill-")
        return os.path.join(self._spill_root, query_name)

    def _drop_spill_dir(self, name: str) -> None:
        """Remove a query's spill directory (query removal)."""
        if self._dur is not None:
            shutil.rmtree(
                os.path.join(self._dur.data_dir, "spill", name),
                ignore_errors=True,
            )
        if self._spill_root is not None:
            shutil.rmtree(
                os.path.join(self._spill_root, name), ignore_errors=True
            )

    def _prune_spill_dirs(self) -> None:
        """Post-restore sweep: drop spill files nothing references.

        A crash can leave behind run files written after the snapshot
        (replay regenerates them deterministically under the same names,
        so whatever is still unreferenced now is garbage), ``.tmp``
        leftovers from torn renames, and whole directories of queries
        removed later in the journal.
        """
        for handle in self._queries.values():
            factory = handle.factory
            if isinstance(factory, IncrementalFactory):
                factory.prune_spill()
        if self._dur is not None:
            root = os.path.join(self._dur.data_dir, "spill")
            try:
                names = os.listdir(root)
            except FileNotFoundError:
                return
            for entry in names:
                if entry not in self._queries:
                    shutil.rmtree(os.path.join(root, entry), ignore_errors=True)

    def landmark_spill_stats(self) -> dict[str, dict]:
        """Per-query landmark spill gauges; ``{}`` when nothing spills.

        Each entry reports the byte budget, hot in-memory bytes/bundles,
        on-disk run count and bytes, and lifetime spill/page-in counters
        (surfaced in :meth:`metrics` under ``"landmark_spill"`` and as
        ``repro_landmark_spill_*`` Prometheus families, docs/METRICS.md).
        """
        stats: dict[str, dict] = {}
        for name, handle in self._queries.items():
            factory = handle.factory
            if isinstance(factory, IncrementalFactory):
                per = factory.landmark_spill_stats()
                if per is not None:
                    stats[name] = per
        return stats

    def reset_landmark(self, name: str) -> None:
        """Restart a landmark query's window from *now* (journaled).

        Discards the query's accumulated landmark state — spilled runs
        included — and re-anchors the window at the next unconsumed
        tuple.  The reset is written to the journal **before** this
        returns, so a crash after a reset can never resurrect the
        pre-reset partials and re-emit stale windows on recovery.

        The engine first drives to quiescence: a reset's effect depends
        on how much input was *consumed* before it, and journal replay
        fires factories only at explicit run points — pinning the reset
        at a quiescent point makes the live run and its replay consume
        the same prefix before resetting.
        """
        with self._dur_guard():
            self.run_until_idle()
            with self.scheduler.quiesced():
                self._reset_landmark_impl(name)
            if self._dur is not None:
                self._dur.journal("reset_landmark", {"name": name})

    def _reset_landmark_impl(self, name: str) -> None:
        if name in self._pqueries:
            raise UnsupportedQueryError(
                "reset_landmark is not supported on partitioned queries; "
                "remove and resubmit instead"
            )
        handle = self._queries.get(name)
        if handle is None:
            raise CatalogError(f"unknown query {name!r}")
        if not isinstance(handle.factory, IncrementalFactory):
            raise UnsupportedQueryError(
                "reset_landmark needs an incremental query"
            )
        handle.factory.reset_landmark()

    def remove(self, name: str) -> None:
        """Unregister a continuous query and release its baskets."""
        with self._dur_guard():
            self._remove_impl(name)
            if self._dur is not None:
                self._dur.journal("remove", {"name": name})

    def _remove_impl(self, name: str) -> None:
        if name in self._submit_order:
            self._submit_order.remove(name)
        if name in self._pqueries:
            del self._pqueries[name]
            self._shards.broadcast(("remove", name))
            for state in self._partitioned.values():
                state.pending_anchor.discard(name)
            return
        handle = self._queries.pop(name, None)
        if handle is None:
            return
        self.scheduler.unregister(name)
        for basket in handle.baskets.values():
            for baskets in self._stream_baskets.values():
                if basket in baskets:
                    baskets.remove(basket)
        self._drop_spill_dir(name)

    def query(self, name: str):
        if name in self._pqueries:
            return self._pqueries[name]
        return self._queries[name]

    # ------------------------------------------------------------------
    # data ingress / scheduling
    # ------------------------------------------------------------------
    def feed(
        self,
        stream: str,
        rows: Optional[Iterable[Sequence]] = None,
        columns: Optional[Mapping[str, Sequence | np.ndarray]] = None,
        timestamps: Optional[Sequence[int] | np.ndarray] = None,
    ) -> int:
        """Append tuples to every basket bound to ``stream``.

        Returns the batch size *offered*; on a bounded stream each query's
        basket admits tuples per its overflow policy independently (a
        ``Fail`` policy raises :class:`~repro.errors.BasketOverflowError`,
        ``Block`` may wait per basket).  Shedding is accounted on the
        baskets and the engine profiler, not in the return value.

        If an overflow raises after some baskets already admitted the
        batch, those baskets have diverged from their neighbours: the
        stream's queries are permanently opted out of fragment sharing
        before the error propagates (a performance demotion, never a
        correctness one), because the shared cache keys on every sharer
        having seen the same tuples (DESIGN.md §7).
        """
        if stream not in self._stream_baskets:
            raise CatalogError(f"unknown stream {stream!r}")
        if (rows is None) == (columns is None):
            raise ReproError("feed needs exactly one of rows= or columns=")
        if self._dur is None:
            return self._feed_impl(stream, rows, columns, timestamps)
        if rows is not None:
            rows = list(rows)
        # Write-ahead: the record lands before any basket admits a tuple,
        # so replay re-offers the batch through the restored overflow
        # policies (RNG state included) and reproduces even a partial
        # fan-out.  suppressed() keeps the per-basket journal hooks from
        # double-logging the same tuples.
        with self._dur.lock:
            self._dur.journal(
                "feed", self._feed_record(stream, rows, columns, timestamps)
            )
            with self._dur.suppressed():
                return self._feed_impl(stream, rows, columns, timestamps)

    def _feed_record(
        self,
        stream: str,
        rows: Optional[list],
        columns: Optional[Mapping[str, Sequence | np.ndarray]],
        timestamps: Optional[Sequence[int] | np.ndarray],
    ) -> dict:
        """Typed, replayable image of one feed batch (validates arity
        before anything reaches the journal)."""
        schema = self.catalog.schema_of(stream)
        names = schema.names
        if rows is not None:
            for row in rows:
                if len(row) != len(names):
                    raise ReproError(
                        f"row arity {len(row)} != schema arity {len(names)}"
                    )
            cols: Mapping[str, Sequence | np.ndarray] = {
                name: [row[i] for row in rows] for i, name in enumerate(names)
            }
        else:
            assert columns is not None
            cols = columns
        record: dict = {
            "stream": stream,
            "columns": {
                name: typed_values(values, schema.atom_of(name))
                for name, values in cols.items()
            },
        }
        if timestamps is not None:
            record["timestamps"] = np.asarray(timestamps, dtype=np.int64)
        return record

    def _feed_impl(
        self,
        stream: str,
        rows: Optional[Iterable[Sequence]],
        columns: Optional[Mapping[str, Sequence | np.ndarray]],
        timestamps: Optional[Sequence[int] | np.ndarray],
    ) -> int:
        if stream in self._partitioned:
            return self._feed_partitioned(stream, rows, columns, timestamps)
        baskets = self._stream_baskets[stream]
        if rows is not None:
            rows = list(rows)
            count = len(rows)
        else:
            assert columns is not None
            lengths = {len(values) for values in columns.values()}
            count = lengths.pop() if len(lengths) == 1 else 0
        admitted = 0
        for basket in baskets:
            try:
                if rows is not None:
                    basket.append_rows(rows, timestamps)
                else:
                    basket.append_columns(columns, timestamps)
            except BasketOverflowError:
                if admitted:
                    self._demote_sharing(stream)
                raise
            admitted += 1
        # Advance the stream's global arrival offset even when no query is
        # bound yet: fragment-cache spans of queries submitted later must
        # stay aligned with queries that did see these tuples.
        self._stream_fed[stream] += count
        return count

    def _feed_partitioned(
        self,
        stream: str,
        rows: Optional[Iterable[Sequence]],
        columns: Optional[Mapping[str, Sequence | np.ndarray]],
        timestamps: Optional[Sequence[int] | np.ndarray],
    ) -> int:
        """Hash-route one batch to the shard workers.

        Each tuple additionally carries its global arrival offset
        (``__seq``) — the workers' virtual clock and the merge layer's
        tie-breaker.  Missing timestamps default to the arrival offset,
        exactly the per-basket logical clock the P=1 path would assign.
        Overflow on bounded partitioned streams is enforced worker-side;
        a ``Fail`` policy therefore surfaces at the next
        :meth:`run_until_idle`, not at ``feed`` itself.
        """
        from repro.core.shard import as_typed_columns, split_fixed_columns

        state = self._partitioned[stream]
        schema = self.catalog.schema_of(stream)
        names = schema.names
        if rows is not None:
            rows = list(rows)
            for row in rows:
                if len(row) != len(names):
                    raise ReproError(
                        f"row arity {len(row)} != schema arity {len(names)}"
                    )
            cols: Mapping[str, Sequence | np.ndarray] = {
                name: [row[i] for row in rows]
                for i, name in enumerate(names)
            }
        else:
            assert columns is not None
            if set(columns) != set(names):
                raise ReproError(
                    f"feed needs exactly columns {sorted(names)}"
                )
            cols = columns
        typed = as_typed_columns(
            cols, {name: schema.atom_of(name) for name in names}
        )
        lengths = {len(values) for values in typed.values()}
        if len(lengths) > 1:
            raise ReproError(f"ragged column feed on {stream!r}")
        count = lengths.pop() if lengths else 0
        base = self._stream_fed[stream]
        seq = np.arange(base, base + count, dtype=np.int64)
        if timestamps is not None:
            ts = np.asarray(timestamps, dtype=np.int64)
            if len(ts) != count:
                raise ReproError("timestamp column length mismatch")
        else:
            ts = seq
        if count and state.pending_anchor:
            # First arrival after a real-time query's submit anchors its
            # window origin in every partition (pipe FIFO: the anchor
            # lands before this batch's feed message).
            origin = int(ts[0])
            for qname in sorted(state.pending_anchor):
                self._shards.broadcast(("anchor", qname, origin))
            state.pending_anchor.clear()
        routes = route_columns(
            typed, state.spec.key, state.key_atom, self.partitions
        )
        watermark = (base + count) * VIRTUAL_TICK_US
        # Real-time queries: each partition sees only its routed subset,
        # so the batch's newest timestamp travels to *every* partition as
        # a punctuation — otherwise a partition the window-closing row
        # didn't route to would hold its window open forever.  Mirrors
        # the P=1 watermark (newest arrival timestamp, ``tail[-1]``).
        ts_watermark = int(ts[-1]) if count else None
        for p, idx in enumerate(routes):
            part = {name: typed[name][idx] for name in names}
            part[SEQ_COLUMN] = seq[idx]
            part[TS_COLUMN] = ts[idx]
            fixed, pickled = split_fixed_columns(part)
            self._shards.feed_partition(
                p, stream, fixed, pickled, watermark, ts_watermark
            )
            state.routed[p] += len(idx)
        self._stream_fed[stream] += count
        return count

    def _demote_sharing(self, stream: str) -> None:
        """Opt a diverged stream's queries out of fragment sharing.

        Called when a fan-out append failed partway: some baskets hold the
        batch, others do not, so arrival offsets no longer describe the
        same tuples across queries and shared cache entries would be
        wrong.  Future submits on the stream stay unshared too.
        """
        self._diverged_streams.add(stream)
        stream_baskets = self._stream_baskets[stream]
        for handle in self._queries.values():
            if isinstance(handle.factory, IncrementalFactory) and any(
                basket in stream_baskets for basket in handle.baskets.values()
            ):
                handle.factory.disable_fragment_sharing()

    def advance_time(self, stream: str, ts: int) -> None:
        """Advance the time watermark of every basket bound to ``stream``.

        A punctuation: promises no tuple with arrival timestamp < ``ts``
        will arrive, so time-based windows can close during silence.
        """
        if stream not in self._stream_baskets:
            raise CatalogError(f"unknown stream {stream!r}")
        with self._dur_guard():
            if stream in self._partitioned:
                # Real-time queries only; the virtual (count) axis advances
                # with the fed count and ignores user punctuations.
                self._shards.broadcast(("advance", stream, int(ts)))
            else:
                for basket in self._stream_baskets[stream]:
                    basket.advance_watermark(ts)
            if self._dur is not None:
                self._dur.journal("advance", {"stream": stream, "ts": int(ts)})

    def receptor(self, query: ContinuousQuery, stream_alias: str) -> Receptor:
        """A receptor bound to one query's basket (threaded ingest).

        A receptor appends to *one* query's basket, bypassing
        :meth:`feed`'s fan-out, so this query's arrival offsets stop
        describing the same data as its neighbours' — fragment sharing is
        switched off for it.
        """
        if not hasattr(query, "baskets"):
            raise UnsupportedQueryError(
                "receptors are not supported on partitioned queries; "
                "feed() the coordinator instead"
            )
        if isinstance(query.factory, IncrementalFactory):
            query.factory.disable_fragment_sharing()
        return Receptor(
            query.baskets[stream_alias],
            max_retries=3,
            profiler=self.scheduler.profiler,
        )

    def run_until_idle(self) -> int:
        """Fire all ready factories until quiescence; returns firings.

        With shard workers attached this also pumps them: every worker
        runs its own scheduler to quiescence (concurrently — the request
        fans out before any reply is awaited), emitted windows are
        collected, and every window all partitions have reported is
        merged here, in window order.
        """
        fired = self.scheduler.run_until_idle()
        if self._shards is not None:
            with self._shard_pump_lock:
                fired += self._shards.run()
                for p, batches in enumerate(self._shards.collect()):
                    for qname, window_index, resp, cols in batches:
                        handle = self._pqueries.get(qname)
                        if handle is not None:
                            handle.offer(p, window_index, resp, cols)
                for handle in self._pqueries.values():
                    handle.drain(self._interp, self.profiler)
        return fired

    def overload_stats(self) -> dict[str, dict[str, int]]:
        """Per-stream overload summary aggregated over its query baskets.

        For each stream: the configured ``capacity`` (0 = unbounded),
        total ``parked`` tuples across baskets, the worst single-basket
        occupancy ``max_parked``, and the summed ``shed`` /
        ``block_waits`` / ``block_timeouts`` counters.  The console's
        ``STATS`` command and docs/OPERATIONS.md build on this.
        """
        stats: dict[str, dict[str, int]] = {}
        for stream, baskets in self._stream_baskets.items():
            capacity, __ = self._stream_limits.get(stream, (None, None))
            per = [basket.overflow_stats() for basket in baskets]
            stats[stream] = {
                "capacity": capacity or 0,
                "baskets": len(per),
                "parked": sum(s["parked"] for s in per),
                "max_parked": max((s["parked"] for s in per), default=0),
                "shed": sum(s["shed"] for s in per),
                "block_waits": sum(s["block_waits"] for s in per),
                "block_timeouts": sum(s["block_timeouts"] for s in per),
            }
        return stats

    def metrics(self, format: str = "dict"):
        """Everything the engine can report, in one snapshot.

        ``format="dict"`` (default) returns the structured snapshot of
        :func:`repro.obs.collect_metrics` — engine shape, counters
        (firings, cache hits/misses, overflow, worker errors), per-tag
        plan seconds, per-factory stats, per-stream basket depths, and —
        with observability on — ingest→emit latency quantiles, firing
        durations, per-opcode histograms, and span-ring occupancy.
        ``format="json"`` and ``format="prometheus"`` return the same
        snapshot serialized for export (see docs/OPERATIONS.md §6).
        """
        snapshot = collect_metrics(self)
        if format == "dict":
            return snapshot
        if format == "json":
            return render_json(snapshot)
        if format == "prometheus":
            return render_prometheus(snapshot, obs=self.obs)
        raise ReproError(f"unknown metrics format {format!r}")

    def start(self, poll_interval: float = 0.001) -> None:
        """Run the scheduler in the background (used with receptors)."""
        if self._pqueries:
            raise UnsupportedQueryError(
                "background mode does not pump shard workers; drive "
                "partitioned queries with run_until_idle()"
            )
        self.scheduler.start(poll_interval=poll_interval)

    def stop(self, drain: bool = True) -> None:
        self.scheduler.stop(drain=drain)

    def close(self) -> None:
        """Stop background work and release the scheduler's worker pool.

        Shard workers are shut down gracefully and every outstanding
        shared-memory segment is unlinked — ``/dev/shm`` holds nothing of
        this engine's after close (the CI partition job asserts this).
        """
        self.scheduler.stop(drain=False)
        self.scheduler.close()
        if self._shards is not None:
            self._shards.close()
        if self._dur is not None:
            self._dur.close()
        self._drop_spill_root()

    def _drop_spill_root(self) -> None:
        """Remove the ephemeral spill tempdir (non-durable engines only —
        durable engines keep ``<data_dir>/spill/`` for restore)."""
        if self._spill_root is not None:
            shutil.rmtree(self._spill_root, ignore_errors=True)
            self._spill_root = None

    # ------------------------------------------------------------------
    # durability: checkpoint / restore (DESIGN.md §15)
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Write one consistent snapshot and rotate the journal.

        Holds the journal lock (no new commands commit) and quiesces the
        scheduler (no factory is mid-firing), gathers the full engine
        state — baskets, factory partials, emitters, scheduler step
        counters, fragment cache, shard workers — and commits it through
        :meth:`DurabilityManager.write_checkpoint`.  Returns the stats
        dict (``snapshot_id``/``horizon``/``bytes``/``seconds``).
        """
        if self._dur is None:
            raise ReproError("checkpoint() needs an engine with a data_dir")
        with self._dur.lock:
            with self._shard_pump_lock:
                with self.scheduler.quiesced():
                    state = self._gather_state()
                    return self._dur.write_checkpoint(state)

    @classmethod
    def restore(cls, data_dir: str) -> "DataCellEngine":
        """Recover an engine from a data directory.

        Loads the manifest's snapshot (if any), replays every journal
        record past its horizon through the normal ingest path, and
        resumes journaling on a fresh segment.  Re-fired windows are
        produced exactly once from the emitters' point of view: factory
        ``window_index`` counters are part of the snapshot, and a dedup
        sink drops anything at or below the snapshot watermark as
        defense in depth (``recovery_suppressed`` counter).
        """
        dur = DurabilityManager(data_dir)
        snapshot, horizon = dur.load()
        records = dur.replay_records(horizon)
        if snapshot is not None:
            meta = snapshot["meta"]
        else:
            try:
                __, kind, payload = next(records)
            except StopIteration:
                raise DurabilityError(
                    f"nothing to restore in {data_dir!r}"
                ) from None
            if kind != "meta":
                raise DurabilityError(
                    f"journal does not start with a meta record (got {kind!r})"
                )
            meta = payload
        engine = cls(
            verify_plans=meta["verify_plans"],
            workers=meta["workers"],
            fragment_sharing=meta["fragment_sharing"],
            observability=meta["observability"],
            backend=meta["backend"],
            partitions=meta["partitions"],
            # .get(): journals written before spilling existed lack the key.
            landmark_spill_mb=meta.get("landmark_spill_mb"),
        )
        engine._adopt_durability(dur)
        last_seq = horizon
        with dur.replaying():
            if snapshot is not None:
                engine._apply_state(snapshot)
            replayed = 0
            for seq, kind, payload in records:
                engine._replay_record(kind, payload)
                last_seq = max(last_seq, seq)
                replayed += 1
            if replayed:
                engine.profiler.count(COUNTER_REPLAYED_RECORDS, replayed)
        engine._prune_spill_dirs()
        dur.resume(last_seq)
        return engine

    def _adopt_durability(self, dur: DurabilityManager) -> None:
        """Bind a loaded manager to this engine (restore path)."""
        self._dur = dur
        dur.attach_profiler(self.profiler)

    def abandon(self) -> None:
        """Die without cleanup — the crash-test path.

        No drain, no checkpoint, no graceful worker shutdown: shard
        processes are terminated, the journal fd is closed (every append
        already fsynced itself), and whatever was in memory is lost —
        exactly what :meth:`restore` must recover from.
        """
        try:
            self.scheduler.stop(drain=False)
        except Exception:  # noqa: BLE001 - crash path: state is forfeit
            pass
        self.scheduler.close()
        if self._shards is not None:
            self._shards.abandon()
        if self._dur is not None:
            self._dur.close()
        # Ephemeral spill state is unrecoverable anyway; don't leak tmpdirs.
        self._drop_spill_root()

    def durability_stats(self) -> dict:
        """Journal/checkpoint gauges; ``{}`` when durability is off."""
        if self._dur is None:
            return {}
        return self._dur.stats()

    def install_fault_hook(self, hook) -> None:
        """Test seam: called at every durability and spill HOOK_* point.

        The crash-recovery tests install a
        :class:`~repro.testing.faults.CrashPoint` here to simulate the
        process dying mid-append or mid-checkpoint (the hook raises;
        the test abandons the engine and restores the data dir).  The
        same hook is forwarded to every spilling landmark store, so one
        ordinal sweep covers journal, checkpoint, and spill effects in a
        single deterministic sequence.
        """
        if self._dur is None and self.landmark_spill_mb is None:
            raise ReproError(
                "install_fault_hook needs a durable or spilling engine"
            )
        if self._dur is not None:
            self._dur.fault_hook = hook
        self._fault_hook = hook
        for handle in self._queries.values():
            factory = handle.factory
            if isinstance(factory, IncrementalFactory):
                factory.set_fault_hook(hook)

    def _gather_state(self) -> dict:
        """The full engine image one snapshot frame carries.

        Caller holds the journal lock with the scheduler quiesced, so
        every piece is mutually consistent at the journal horizon.
        """
        state: dict = {
            "meta": self._meta(),
            "streams": [
                {
                    "name": name,
                    "columns": [
                        [c, a.value]
                        for c, a in self.catalog.schema_of(name).columns
                    ],
                    "capacity": self._stream_limits[name][0],
                    "overflow": policy_spec(self._stream_limits[name][1]),
                    "partition_by": (
                        self._partitioned[name].spec.key
                        if name in self._partitioned
                        else None
                    ),
                }
                for name in self._stream_baskets
            ],
            "stream_fed": dict(self._stream_fed),
            "diverged": sorted(self._diverged_streams),
            "tables": [
                {
                    "name": name,
                    "columns": [
                        [c, a.value] for c, a in table.schema.columns
                    ],
                    "data": table.columns(),
                }
                for name, table in self.catalog.tables().items()
            ],
            "queries": [
                {
                    "name": qname,
                    "sql": self.query(qname).sql,
                    "mode": self.query(qname).mode,
                    "partitioned": qname in self._pqueries,
                }
                for qname in self._submit_order
            ],
            "query_counter": self._query_counter,
            "query_states": {
                qname: {
                    "factory": handle.factory.snapshot_state(),
                    "baskets": {
                        alias: basket.snapshot_state()
                        for alias, basket in handle.baskets.items()
                    },
                    "emitter": handle.emitter.snapshot_state(),
                    "watermark": handle.factory.window_index,
                }
                for qname, handle in self._queries.items()
            },
            "steps": self.scheduler.steps_snapshot(),
            "fragment_cache": self.fragment_cache.snapshot_state(),
            "partitioned": {
                name: {
                    "routed": list(ps.routed),
                    "pending_anchor": sorted(ps.pending_anchor),
                }
                for name, ps in self._partitioned.items()
            },
            "pqueries": {
                name: {
                    "output_names": list(h.output_names),
                    "output_atoms": [a.value for a in h.output_atoms],
                    "partial_names": list(h.partial_names),
                    "partial_atoms": [a.value for a in h.partial_atoms],
                    "next_window": h.next_window,
                    "progress": list(h.progress),
                    "pending": [
                        [
                            window,
                            [
                                [p, resp, cols]
                                for p, (resp, cols) in sorted(parts.items())
                            ],
                        ]
                        for window, parts in sorted(h.pending.items())
                    ],
                    "batches": _pack_batches(h.batches),
                }
                for name, h in self._pqueries.items()
            },
        }
        if self._shards is not None:
            state["shards"] = [
                reply[1] for reply in self._shards.request_all(("snapshot",))
            ]
        return state

    def _apply_state(self, state: dict) -> None:
        """Adopt a snapshot image (restore path; journaling suppressed)."""
        for decl in state["streams"]:
            self._create_stream_impl(
                decl["name"],
                [(c, Atom(a)) for c, a in decl["columns"]],
                decl["capacity"],
                parse_overflow_spec(decl["overflow"])
                if decl["overflow"]
                else None,
                decl["partition_by"],
                broadcast=False,
            )
        self._stream_fed.update(state["stream_fed"])
        self._diverged_streams.update(state["diverged"])
        for tdecl in state["tables"]:
            table = self.catalog.create_table(
                tdecl["name"],
                _as_schema([(c, Atom(a)) for c, a in tdecl["columns"]]),
            )
            if tdecl["data"]:
                table.append_columns(
                    {name: bat.tail for name, bat in tdecl["data"].items()}
                )
        # Workers restore before queries: the coordinator-side rebuild of
        # partitioned handles asks them for the worker output schema, and
        # replayed journal feeds must land on restored worker state.
        if self._shards is not None and "shards" in state:
            for worker, wstate in zip(self._shards.workers, state["shards"]):
                worker.request(("restore", wstate))
        for entry in state["queries"]:
            if entry["partitioned"]:
                self._restore_partitioned_query(
                    entry, state["pqueries"][entry["name"]]
                )
            else:
                self._submit_impl(entry["sql"], entry["mode"], entry["name"])
        self._query_counter = state["query_counter"]
        for qname, qstate in state["query_states"].items():
            handle = self._queries[qname]
            handle.factory.restore_state(qstate["factory"])
            for alias, bstate in qstate["baskets"].items():
                handle.baskets[alias].restore_state(bstate)
            handle.emitter.restore_state(qstate["emitter"])
            self.scheduler.restore_steps(qname, state["steps"].get(qname, 0))
            self.scheduler.wrap_sinks(
                qname, self._dedup_wrapper(qstate["watermark"])
            )
        self.fragment_cache.restore_state(state["fragment_cache"])
        for name, pstate in state["partitioned"].items():
            ps = self._partitioned[name]
            ps.routed = [int(x) for x in pstate["routed"]]
            ps.pending_anchor = set(pstate["pending_anchor"])

    def _restore_partitioned_query(self, entry: dict, pstate: dict) -> None:
        """Rebuild one partitioned handle without re-submitting to the
        (already restored) shard workers."""
        from repro.core.shard import PartitionedQuery
        from repro.sql.parser import parse

        name, sql = entry["name"], entry["sql"]
        stream = next(
            t.name for t in parse(sql).tables if t.name in self._partitioned
        )
        ps = self._partitioned[stream]
        schema = self.catalog.schema_of(stream)
        plan = plan_partition_query(sql, schema, ps.spec)
        reply = self._shards.workers[0].request(("schema", name))
        out_names, atom_values = reply[1]
        partials = [(n, Atom(a)) for n, a in zip(out_names, atom_values)]
        finish_merge(plan, partials, verify=False)
        handle = PartitionedQuery(
            name=name,
            sql=sql,
            mode=entry["mode"],
            plan=plan,
            output_names=list(pstate["output_names"]),
            output_atoms=[Atom(a) for a in pstate["output_atoms"]],
            partitions=self.partitions,
            partial_names=list(pstate["partial_names"]),
            partial_atoms=[Atom(a) for a in pstate["partial_atoms"]],
        )
        handle.next_window = pstate["next_window"]
        handle.progress = [int(x) for x in pstate["progress"]]
        handle.pending = {
            int(window): {
                int(p): (resp, cols) for p, resp, cols in parts
            }
            for window, parts in pstate["pending"]
        }
        handle.batches = _unpack_batches(pstate["batches"])
        self._pqueries[name] = handle
        self._submit_order.append(name)

    def _dedup_wrapper(self, watermark: int):
        """Sink filter dropping windows the snapshot already emitted."""

        def wrap(sink):
            def dedup(name: str, batch: ResultBatch) -> None:
                if batch.window_index <= watermark:
                    self.profiler.count(COUNTER_RECOVERY_SUPPRESSED)
                    return
                sink(name, batch)

            return dedup

        return wrap

    def _replay_record(self, kind: str, payload) -> None:
        """Apply one journal record through the normal ingest path."""
        try:
            if kind == "meta":
                return
            if kind == "create_stream":
                self.create_stream(
                    payload["name"],
                    [(c, Atom(a)) for c, a in payload["columns"]],
                    capacity=payload["capacity"],
                    overflow=parse_overflow_spec(payload["overflow"])
                    if payload["overflow"]
                    else None,
                    partition_by=payload["partition_by"],
                )
            elif kind == "create_table":
                self.create_table(
                    payload["name"],
                    [(c, Atom(a)) for c, a in payload["columns"]],
                )
            elif kind == "insert":
                self.catalog.table(payload["table"]).append_columns(
                    payload["columns"]
                )
            elif kind == "submit":
                self.submit(
                    payload["sql"], mode=payload["mode"], name=payload["name"]
                )
            elif kind == "remove":
                self.remove(payload["name"])
            elif kind == "feed":
                self.feed(
                    payload["stream"],
                    columns=payload["columns"],
                    timestamps=payload.get("timestamps"),
                )
            elif kind == "advance":
                self.advance_time(payload["stream"], payload["ts"])
            elif kind == "reset_landmark":
                self.reset_landmark(payload["name"])
            elif kind == "basket":
                basket = self._basket_by_name(payload["basket"])
                if basket is not None:
                    basket.append_columns(
                        payload["columns"], payload.get("timestamps")
                    )
            else:
                raise DurabilityError(f"unknown journal record kind {kind!r}")
        except BasketOverflowError:
            # The live run continued past this overflow too; the basket
            # state after the (partial) admission is what we want.
            pass

    def _basket_by_name(self, name: str) -> Optional[Basket]:
        for handle in self._queries.values():
            for basket in handle.baskets.values():
                if basket.name == name:
                    return basket
        return None  # the owning query was removed later in the journal

    def partition_stats(self) -> dict:
        """Partition-execution gauges; ``{}`` unless sharding is active.

        Per stream: tuples ``routed`` to each partition and the relative
        ``skew`` ``(max - min) / max``.  Per query: the merge ``route``,
        timestamp ``flavor``, merged ``windows``, and ``lag`` — the
        window-progress spread across partitions (0 = lockstep).
        ``workers`` holds each worker engine's profiler counters plus its
        ``parked`` basket occupancy.  Surfaces in :meth:`metrics` under
        ``"partition"`` and as ``repro_partition_*`` Prometheus gauges
        (docs/METRICS.md).
        """
        if self._shards is None or not self._partitioned:
            return {}
        streams = {}
        for name, state in self._partitioned.items():
            top = max(state.routed, default=0)
            streams[name] = {
                "key": state.spec.key,
                "routed": list(state.routed),
                "skew": (top - min(state.routed)) / top if top else 0.0,
            }
        queries = {
            name: {
                "route": handle.plan.route,
                "flavor": handle.plan.flavor,
                "windows": len(handle.batches),
                "lag": handle.lag(),
            }
            for name, handle in self._pqueries.items()
        }
        return {
            "partitions": self.partitions,
            "streams": streams,
            "queries": queries,
            "workers": self._shards.stats(),
        }

    # ------------------------------------------------------------------
    # one-time queries & introspection
    # ------------------------------------------------------------------
    def query_once(self, sql: str) -> dict[str, list]:
        """Run a one-time query over base tables, returning named columns."""
        planned = optimize(plan_query(sql, self.catalog))
        for scan in find_scans(planned.plan):
            if scan.is_stream:
                raise UnsupportedQueryError(
                    "query_once only supports base tables; submit() streams"
                )
        compiled = compile_full(planned)
        inputs: dict[str, BAT] = {}
        for alias, cols in compiled.scan_inputs.items():
            table = self.catalog.table(
                next(
                    s.relation for s in find_scans(planned.plan) if s.alias == alias
                )
            )
            for column, slot in cols.items():
                inputs[slot] = table.column(column)
        outputs = self._interp.run(compiled.program, inputs)
        return {
            name: outputs[slot].to_list()
            for name, slot in zip(compiled.output_names, compiled.output_slots)
        }

    def explain(self, sql: str) -> str:
        """The optimized logical plan, as text."""
        planned = optimize(plan_query(sql, self.catalog))
        return pretty_plan(planned.plan)

    def explain_continuous(self, sql: str) -> str:
        """The rewritten incremental programs, as text."""
        planned = optimize(plan_query(sql, self.catalog))
        return rewrite(planned).describe()

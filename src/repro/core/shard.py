"""Shard workers: per-partition engine processes and their control channel.

Each partition of a ``PARTITION BY`` stream is owned by one worker
process running a private, ordinary :class:`DataCellEngine` (workers=1,
observability off).  The coordinating engine talks to workers over a
``multiprocessing.Pipe`` control channel; bulk column data travels
through named ``multiprocessing.shared_memory`` segments
(:func:`repro.kernel.storage.write_segment`), with object-dtype (str)
columns pickled alongside.

Protocol (all messages are tuples, strictly FIFO per worker):

* fire-and-forget: ``create_stream``, ``anchor``, ``feed``, ``advance``,
  ``remove`` — errors are queued worker-side and surfaced at the next
  sync point;
* request/reply: ``submit`` → output schema, ``run`` → firings + the
  consumed segment names (the creator-unlinks handshake) + queued
  errors, ``collect`` → new result batches, ``stats`` → profiler
  counters, ``close`` → goodbye.

Workers parse and plan SQL locally — no plan objects ever cross the
process boundary, so the control channel stays tiny and
version-agnostic.  Lifetime rules are in DESIGN.md §14.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.factory import ResultBatch
from repro.core.partition import (
    SEQ_COLUMN,
    ShardPlan,
    VIRTUAL_TICK_US,
    concat_columns,
    promote_empty_pn,
    run_merge,
    sort_concat_columns,
)
from repro.core.overflow import parse_overflow_spec, policy_spec
from repro.core.windows import TS_COLUMN
from repro.errors import ReproError
from repro.kernel.atoms import Atom, numpy_dtype
from repro.kernel.storage import SegmentMeta, read_segment, write_segment

#: Batches with at least this many rows ship fixed-width columns through
#: shared memory; smaller ones just ride the pipe (pickling a tiny array
#: is cheaper than a segment create/attach round trip).
SHM_MIN_ROWS = int(os.environ.get("REPRO_SHM_MIN_ROWS", "256"))


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _worker_main(conn, init: dict) -> None:
    """Entry point of one shard worker process."""
    from repro.core.engine import DataCellEngine

    engine = DataCellEngine(
        verify_plans=init["verify_plans"],
        workers=1,
        fragment_sharing=init["fragment_sharing"],
        observability=False,
        backend=init["backend"],
        landmark_spill_mb=init.get("landmark_spill_mb"),
    )
    streams: dict[str, dict] = {}  # stream -> decl
    queries: dict[str, dict] = {}  # qname -> state
    by_stream: dict[str, list[str]] = {}
    consumed_segments: list[str] = []
    errors: list[str] = []

    def _feed(stream: str, payload: dict) -> None:
        columns: dict[str, np.ndarray] = {}
        if payload["segment"] is not None:
            columns.update(read_segment(payload["segment"]))
            consumed_segments.append(payload["segment"].name)
        columns.update(payload["columns"])
        ts = columns.pop(TS_COLUMN, None)
        seq = np.asarray(columns[SEQ_COLUMN])
        watermark = payload["watermark"]
        ts_watermark = payload.get("ts_watermark")
        for qname in by_stream.get(stream, []):
            state = queries[qname]
            if state["flavor"] == "virtual":
                stamps = seq * VIRTUAL_TICK_US
            else:
                stamps = ts
            engine.feed(state["qstream"], columns=columns, timestamps=stamps)
            if state["flavor"] == "virtual" and watermark is not None:
                engine.advance_time(state["qstream"], watermark)
            elif state["flavor"] == "time" and ts_watermark is not None:
                # The batch's global newest timestamp: this partition may
                # not have routed the row that crossed a window boundary,
                # so time progress is punctuated explicitly.
                engine.advance_time(state["qstream"], ts_watermark)

    def _submit(msg) -> tuple:
        __, qname, stream, sql, mode, flavor, anchor = msg
        decl = streams[stream]
        qstream = f"__shard_{qname}"
        engine.create_stream(
            qstream,
            [(c, Atom(a)) for c, a in decl["columns"]],
            capacity=decl["capacity"],
            overflow=decl["overflow"],
        )
        handle = engine.submit(sql, mode=mode, name=qname)
        if anchor is not None:
            handle.factory.anchor_time(anchor)
        queries[qname] = {
            "handle": handle,
            "qstream": qstream,
            "flavor": flavor,
            "collected": 0,
        }
        by_stream.setdefault(stream, []).append(qname)
        return ("ok", _output_schema(handle))

    def _output_schema(handle) -> tuple[list[str], list[str]]:
        factory = handle.factory
        if hasattr(factory, "plan"):  # IncrementalFactory
            names = list(factory.plan.output_names)
            atoms = [a.value for a in factory.plan.output_atoms]
        else:  # ReevalFactory
            names = list(factory.compiled.output_names)
            atoms = [a.value for a in factory.compiled.output_atoms]
        return names, atoms

    def _snapshot_state() -> dict:
        """This worker's contribution to a coordinator checkpoint.

        The engine image rides the same snapshot/restore protocol the
        coordinator uses; the worker-local routing tables serialize with
        durable policy specs (the decl's policy object is a live
        template, not a checkpointable value).
        """
        return {
            "engine": engine._gather_state(),
            "streams": [
                [
                    stream,
                    {
                        "columns": [list(c) for c in decl["columns"]],
                        "capacity": decl["capacity"],
                        "overflow": policy_spec(decl["overflow"]),
                    },
                ]
                for stream, decl in streams.items()
            ],
            "queries": [
                [
                    qname,
                    {
                        "qstream": state["qstream"],
                        "flavor": state["flavor"],
                        "collected": state["collected"],
                    },
                ]
                for qname, state in queries.items()
            ],
            "by_stream": {k: list(v) for k, v in by_stream.items()},
        }

    def _restore_state(snapshot: dict) -> None:
        engine._apply_state(snapshot["engine"])
        streams.clear()
        queries.clear()
        by_stream.clear()
        for stream, decl in snapshot["streams"]:
            streams[stream] = {
                "columns": [tuple(c) for c in decl["columns"]],
                "capacity": decl["capacity"],
                "overflow": (
                    parse_overflow_spec(decl["overflow"])
                    if decl["overflow"]
                    else None
                ),
            }
        for qname, state in snapshot["queries"]:
            queries[qname] = {
                "handle": engine.query(qname),
                "qstream": state["qstream"],
                "flavor": state["flavor"],
                "collected": state["collected"],
            }
        for stream, names in snapshot["by_stream"].items():
            by_stream[stream] = list(names)

    def _collect() -> list[tuple]:
        out = []
        for qname, state in queries.items():
            batches = state["handle"].results()
            for batch in batches[state["collected"]:]:
                out.append(
                    (
                        qname,
                        batch.window_index,
                        batch.response_seconds,
                        {
                            name: np.asarray(batch.columns[name].tail)
                            for name in batch.names
                        },
                    )
                )
            state["collected"] = len(batches)
        return out

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        try:
            if kind == "create_stream":
                __, stream, columns, capacity, overflow = msg
                streams[stream] = {
                    "columns": columns,
                    "capacity": capacity,
                    "overflow": overflow,
                }
            elif kind == "submit":
                conn.send(_submit(msg))
            elif kind == "anchor":
                __, qname, origin = msg
                queries[qname]["handle"].factory.anchor_time(origin)
            elif kind == "feed":
                _feed(msg[1], msg[2])
            elif kind == "advance":
                __, stream, ts = msg
                for qname in by_stream.get(stream, []):
                    state = queries[qname]
                    if state["flavor"] == "time":
                        engine.advance_time(state["qstream"], ts)
            elif kind == "run":
                fired = engine.run_until_idle()
                conn.send(("ran", fired, consumed_segments, errors))
                consumed_segments, errors = [], []
            elif kind == "collect":
                conn.send(("batches", _collect()))
            elif kind == "stats":
                snapshot = engine.profiler.snapshot()
                parked = sum(
                    s["parked"] for s in engine.overload_stats().values()
                )
                conn.send(("stats", snapshot["counters"], parked))
            elif kind == "snapshot":
                conn.send(("state", _snapshot_state()))
            elif kind == "restore":
                _restore_state(msg[1])
                conn.send(("ok",))
            elif kind == "schema":
                conn.send(("ok", _output_schema(queries[msg[1]]["handle"])))
            elif kind == "remove":
                engine.remove(msg[1])
                queries.pop(msg[1], None)
                for names in by_stream.values():
                    if msg[1] in names:
                        names.remove(msg[1])
            elif kind == "close":
                conn.send(("bye", consumed_segments))
                break
            else:  # pragma: no cover - protocol defect
                raise ReproError(f"unknown shard message {kind!r}")
        except Exception as exc:  # noqa: BLE001 - boundary: report, don't die
            detail = f"{type(exc).__name__}: {exc}"
            if kind in (
                "submit",
                "run",
                "collect",
                "stats",
                "snapshot",
                "restore",
                "schema",
                "close",
            ):
                conn.send(("error", detail, traceback.format_exc()))
                if kind == "close":
                    break
            else:
                errors.append(f"{kind}: {detail}")
    try:
        engine.close()
    finally:
        conn.close()


# ----------------------------------------------------------------------
# parent-side proxies
# ----------------------------------------------------------------------
class ShardWorkerProxy:
    """Parent handle to one shard worker process."""

    def __init__(self, ctx, partition: int, init: dict) -> None:
        self.partition = partition
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(child, init),
            name=f"repro-shard-{partition}",
            daemon=True,
        )
        self.process.start()
        child.close()
        #: Segments created for this worker and not yet acknowledged:
        #: name -> still-open SharedMemory (creator unlinks on ack).
        self.outstanding: dict[str, object] = {}

    def send(self, msg: tuple) -> None:
        self.conn.send(msg)

    def request(self, msg: tuple):
        self.conn.send(msg)
        reply = self.conn.recv()
        if reply[0] == "error":
            raise ReproError(
                f"shard worker {self.partition}: {reply[1]}\n{reply[2]}"
            )
        return reply

    def ack_segments(self, names: list[str]) -> None:
        """Creator-unlinks: release segments the worker finished copying."""
        for name in names:
            shm = self.outstanding.pop(name, None)
            if shm is not None:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def shutdown(self, timeout: float = 5.0) -> None:
        try:
            if self.process.is_alive():
                reply = self.request(("close",))
                if reply[0] == "bye":
                    self.ack_segments(reply[1])
        except (ReproError, BrokenPipeError, EOFError, OSError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - hung worker
            self.process.terminate()
            self.process.join(timeout=timeout)
        # Crash path: unlink whatever the worker never acknowledged.
        for name in list(self.outstanding):
            self.ack_segments([name])
        self.conn.close()


class ShardSet:
    """All P shard workers of one engine, plus segment bookkeeping."""

    def __init__(
        self,
        partitions: int,
        backend: str,
        verify_plans: bool,
        fragment_sharing: bool,
        landmark_spill_mb=None,
    ) -> None:
        import multiprocessing as mp

        method = os.environ.get("REPRO_MP_START") or (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        ctx = mp.get_context(method)
        self.partitions = partitions
        init = {
            "backend": backend,
            "verify_plans": verify_plans,
            "fragment_sharing": fragment_sharing,
            # Workers spill landmark cold history too: each worker engine
            # is ephemeral, so its runs land in a private tempdir removed
            # by the worker's close path.
            "landmark_spill_mb": landmark_spill_mb,
        }
        self.workers = [
            ShardWorkerProxy(ctx, p, init) for p in range(partitions)
        ]
        self._segment_counter = 0
        self._closed = False

    def broadcast(self, msg: tuple) -> None:
        for worker in self.workers:
            worker.send(msg)

    def request_all(self, msg: tuple) -> list:
        # Send first, then gather: workers process concurrently.
        for worker in self.workers:
            worker.send(msg)
        replies = []
        for worker in self.workers:
            reply = worker.conn.recv()
            if reply[0] == "error":
                raise ReproError(
                    f"shard worker {worker.partition}: {reply[1]}\n{reply[2]}"
                )
            replies.append(reply)
        return replies

    def feed_partition(
        self,
        partition: int,
        stream: str,
        fixed: dict[str, np.ndarray],
        pickled: dict[str, np.ndarray],
        watermark: Optional[int],
        ts_watermark: Optional[int] = None,
    ) -> None:
        """Ship one routed batch; fixed-width columns via shared memory."""
        worker = self.workers[partition]
        rows = len(next(iter(fixed.values()), next(iter(pickled.values()), ())))
        segment: Optional[SegmentMeta] = None
        columns = dict(pickled)
        if fixed and rows >= SHM_MIN_ROWS:
            self._segment_counter += 1
            name = f"repro-{os.getpid()}-{partition}-{self._segment_counter}"
            segment, shm = write_segment(name, fixed)
            worker.outstanding[name] = shm
            shm.close()  # parent's mapping; the block itself lives on
        else:
            columns.update(fixed)
        worker.send(
            (
                "feed",
                stream,
                {
                    "segment": segment,
                    "columns": columns,
                    "watermark": watermark,
                    "ts_watermark": ts_watermark,
                },
            )
        )

    def run(self) -> int:
        """Pump every worker until idle; returns total worker firings."""
        fired = 0
        for reply in self._run_replies():
            fired += reply[1]
        return fired

    def _run_replies(self) -> list:
        replies = self.request_all(("run",))
        errors: list[str] = []
        for worker, reply in zip(self.workers, replies):
            worker.ack_segments(reply[2])
            errors.extend(
                f"partition {worker.partition}: {e}" for e in reply[3]
            )
        if errors:
            raise ReproError(
                "shard worker errors:\n" + "\n".join(errors)
            )
        return replies

    def collect(self) -> list[list[tuple]]:
        """New result batches per partition, in partition order."""
        return [reply[1] for reply in self.request_all(("collect",))]

    def stats(self) -> list[dict]:
        out = []
        for reply in self.request_all(("stats",)):
            counters = dict(reply[1])
            counters["parked"] = reply[2]
            out.append(counters)
        return out

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            worker.shutdown()

    def abandon(self) -> None:
        """Hard-kill every worker (crash simulation; no goodbye handshake).

        Outstanding shared-memory segments are still unlinked — a crash
        test must not leak ``/dev/shm`` blocks into the next run.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            if worker.process.is_alive():
                worker.process.terminate()
            worker.process.join(timeout=5)
            for name in list(worker.outstanding):
                worker.ack_segments([name])
            worker.conn.close()


# ----------------------------------------------------------------------
# the sharded query handle (coordinator side)
# ----------------------------------------------------------------------
@dataclass
class PartitionedQuery:
    """Handle to a continuous query replicated across shard workers.

    API-compatible with :class:`repro.core.engine.ContinuousQuery` for
    results access (``results``/``last``/``result_rows``/
    ``response_times``); there is no single ``factory`` — each partition
    runs its own, and the merge happens here as emissions arrive.
    """

    name: str
    sql: str
    mode: str
    plan: ShardPlan
    output_names: list[str]
    output_atoms: list[Atom]
    partitions: int
    resources: Optional[object] = None
    #: Concat route only: the full per-partition emission schema —
    #: ``output_names`` plus the plan's ``concat_hidden`` sort helpers,
    #: which are dropped after the coordinator's ordering pass.
    partial_names: list[str] = field(default_factory=list)
    partial_atoms: list[Atom] = field(default_factory=list)
    #: window_index -> partition -> (response_seconds, columns)
    pending: dict[int, dict[int, tuple[float, dict[str, np.ndarray]]]] = field(
        default_factory=dict
    )
    next_window: int = 1
    batches: list[ResultBatch] = field(default_factory=list)
    #: Highest window_index received per partition (lag gauge source).
    progress: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.progress:
            self.progress = [0] * self.partitions

    # -- ContinuousQuery-compatible results API -------------------------
    def results(self) -> list[ResultBatch]:
        return list(self.batches)

    def last(self) -> Optional[ResultBatch]:
        return self.batches[-1] if self.batches else None

    def result_rows(self) -> list[list[tuple]]:
        return [batch.rows() for batch in self.batches]

    def response_times(self) -> list[float]:
        return [batch.response_seconds for batch in self.batches]

    # -- collection ------------------------------------------------------
    def offer(
        self,
        partition: int,
        window_index: int,
        response_seconds: float,
        columns: dict[str, np.ndarray],
    ) -> None:
        """Record one partition's emission for one global window.

        Partitions may complete windows in any order; emissions are keyed
        by window index and merged strictly in-order once every partition
        has reported (window alignment guarantees each partition emits
        every index exactly once).
        """
        self.pending.setdefault(window_index, {})[partition] = (
            response_seconds,
            columns,
        )
        if window_index > self.progress[partition]:
            self.progress[partition] = window_index

    def drain(self, interp, profiler=None) -> int:
        """Merge every fully-collected window, in window order."""
        import time as _time

        merged = 0
        while True:
            parts = self.pending.get(self.next_window)
            if parts is None or len(parts) < self.partitions:
                break
            del self.pending[self.next_window]
            ordered = [parts[p] for p in range(self.partitions)]
            part_columns = [columns for __, columns in ordered]
            worst = max(resp for resp, __ in ordered)
            start = _time.perf_counter()
            if self.plan.merge is None:
                columns = concat_columns(
                    self.partial_names or self.output_names,
                    self.partial_atoms or self.output_atoms,
                    part_columns,
                )
                if self.plan.concat_sort:
                    columns = sort_concat_columns(
                        columns, self.plan.concat_sort
                    )
                for hidden in self.plan.concat_hidden:
                    columns.pop(hidden, None)
                names = self.output_names
            else:
                promote_empty_pn(self.plan, part_columns)
                names, columns = run_merge(
                    self.plan, interp, part_columns, profiler
                )
            merge_seconds = _time.perf_counter() - start
            self.batches.append(
                ResultBatch(
                    names=list(names),
                    columns=columns,
                    window_index=self.next_window,
                    response_seconds=worst + merge_seconds,
                    breakdown={
                        "partition_max": worst,
                        "shard_merge": merge_seconds,
                    },
                )
            )
            self.next_window += 1
            merged += 1
        return merged

    def lag(self) -> int:
        """Window-progress spread across partitions (0 = in lockstep)."""
        if not self.progress:
            return 0
        return max(self.progress) - min(self.progress)


def split_fixed_columns(
    columns: dict[str, np.ndarray],
) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    """(fixed-width, object-dtype) column split for the shm/pickle paths."""
    fixed: dict[str, np.ndarray] = {}
    pickled: dict[str, np.ndarray] = {}
    for name, values in columns.items():
        arr = np.asarray(values)
        (pickled if arr.dtype.hasobject else fixed)[name] = arr
    return fixed, pickled


def as_typed_columns(
    columns: dict[str, object], schema_atoms: dict[str, Atom]
) -> dict[str, np.ndarray]:
    """Coerce user feed columns to their schema dtypes (routing needs
    real arrays; object columns become object arrays)."""
    out: dict[str, np.ndarray] = {}
    for name, values in columns.items():
        atom = schema_atoms[name]
        if atom == Atom.STR:
            arr = np.empty(len(values), dtype=object)  # type: ignore[arg-type]
            arr[:] = list(values)  # type: ignore[arg-type]
        else:
            arr = np.asarray(values, dtype=numpy_dtype(atom))
        out[name] = arr
    return out

"""Firing spans — one trace record per factory firing.

A span is the observability twin of a Petri-net transition: it says *which*
factory fired, *when*, how long the firing took, what it consumed and
emitted, how long the factory had been ready before a worker picked it up,
and how the interpreter's cost tags (``main``/``merge``/``admin``) split
the work.  The scheduler records spans into a :class:`SpanRecorder`, a
fixed-capacity ring buffer: tracing a long-running engine costs bounded
memory, and ``repro trace`` reads the most recent window of activity.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class FiringSpan:
    """One factory firing, as observed by the scheduler."""

    #: Factory (continuous query) name.
    factory: str
    #: Per-factory firing sequence number (1-based, monotonic).
    seq: int
    #: Wall-clock time of the firing start (``time.time()``), for display.
    wall: float
    #: Firing duration in seconds (ready-check to dispatch completion).
    duration: float
    #: Tuples consumed from the factory's baskets by this firing.
    consumed: int
    #: Result rows emitted by this firing.
    emitted: int
    #: Seconds between the previous firing (while ready) and this one —
    #: how long enabled work sat waiting for a scheduler worker.
    ready_wait: float
    #: Per-tag cost breakdown of this firing (seconds by ``main``/
    #: ``merge``/``admin``), from the per-firing profiler.
    tags: dict[str, float] = field(default_factory=dict)


class SpanRecorder:
    """Bounded, thread-safe ring buffer of :class:`FiringSpan` records.

    ``capacity`` bounds memory; once full, each new span overwrites the
    oldest.  ``dropped`` counts the overwritten spans so dashboards can
    tell a quiet engine from an under-provisioned ring.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"span capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: list[FiringSpan | None] = [None] * capacity  # guarded-by: _lock
        self._next = 0  # total spans ever recorded; guarded-by: _lock
        self.dropped = 0  # guarded-by: _lock

    def record(self, span: FiringSpan) -> None:
        with self._lock:
            if self._next >= self.capacity:
                self.dropped += 1
            self._ring[self._next % self.capacity] = span
            self._next += 1

    def __len__(self) -> int:
        with self._lock:
            return min(self._next, self.capacity)

    @property
    def total(self) -> int:
        """Spans ever recorded (including those the ring overwrote)."""
        with self._lock:
            return self._next

    def stats(self) -> dict[str, int]:
        """Atomic snapshot of the ring counters.

        One lock acquisition, so ``recorded``/``total``/``dropped`` are
        mutually consistent — reading them as separate properties can
        tear against a concurrent :meth:`record`.
        """
        with self._lock:
            return {
                "recorded": min(self._next, self.capacity),
                "total": self._next,
                "capacity": self.capacity,
                "dropped": self.dropped,
            }

    def last(self, n: int | None = None) -> list[FiringSpan]:
        """The most recent ``n`` spans, oldest first (all retained if None)."""
        with self._lock:
            held = min(self._next, self.capacity)
            take = held if n is None else max(0, min(n, held))
            start = self._next - take
            return [
                self._ring[i % self.capacity]  # type: ignore[misc]
                for i in range(start, self._next)
            ]

    def clear(self) -> None:
        with self._lock:
            self._ring = [None] * self.capacity
            self._next = 0
            self.dropped = 0

"""Log-scale duration histograms.

Latencies span six orders of magnitude (a cached fragment lookup is
microseconds, a blocked ingest can be seconds), so the buckets are fixed
powers of two: bucket ``i`` holds observations in ``(2^(MIN_EXP+i-1),
2^(MIN_EXP+i)]`` seconds, covering ~1 µs to ~64 s with 27 buckets plus an
overflow bucket.  Fixed buckets mean an observation is a ``math.frexp``
(one float decomposition, no search), a short lock, and two integer
increments — cheap enough to sit on the firing hot path — and make
histograms mergeable and directly exportable as a Prometheus cumulative
``le`` series.

Quantiles are estimated by linear interpolation inside the owning bucket;
the exact ``min``/``max``/``sum`` are tracked on the side so the tails
reported by ``repro top`` never exceed an actually observed value.
"""

from __future__ import annotations

import math
import threading

#: Exponent of the smallest bucket upper bound: 2**-20 s ≈ 0.95 µs.
MIN_EXP = -20
#: Exponent of the largest finite bucket upper bound: 2**6 s = 64 s.
MAX_EXP = 6
#: Finite buckets; one extra overflow bucket (+inf) follows.
BUCKETS = MAX_EXP - MIN_EXP + 1


def bucket_index(seconds: float) -> int:
    """Bucket of an observation (0-based; ``BUCKETS`` = overflow)."""
    if seconds <= 0.0:
        return 0
    exp = math.frexp(seconds)[1]  # seconds in (2**(exp-1), 2**exp]
    if math.ldexp(1.0, exp - 1) == seconds:  # exact power of two: inclusive ub
        exp -= 1
    if exp <= MIN_EXP:
        return 0
    if exp > MAX_EXP:
        return BUCKETS
    return exp - MIN_EXP


def bucket_upper(index: int) -> float:
    """Inclusive upper bound of bucket ``index`` (+inf for the overflow)."""
    if index >= BUCKETS:
        return math.inf
    return math.ldexp(1.0, MIN_EXP + index)


class LogHistogram:
    """Fixed-bucket log-scale histogram of durations in seconds."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (BUCKETS + 1)  # guarded-by: _lock
        self.count = 0  # guarded-by: _lock
        self.sum = 0.0  # guarded-by: _lock
        self.min = math.inf  # guarded-by: _lock
        self.max = 0.0  # guarded-by: _lock

    def observe(self, seconds: float) -> None:
        index = bucket_index(seconds)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.sum += seconds
            if seconds < self.min:
                self.min = seconds
            if seconds > self.max:
                self.max = seconds

    def merge_from(self, other: "LogHistogram") -> None:
        with other._lock:
            counts = list(other._counts)
            count, total = other.count, other.sum
            lo, hi = other.min, other.max
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self.count += count
            self.sum += total
            self.min = min(self.min, lo)
            self.max = max(self.max, hi)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile in seconds (0.0 on an empty histogram).

        Linear interpolation inside the owning bucket, clamped to the
        exact observed ``min``/``max`` so estimates never leave the
        observed range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * self.count
            seen = 0.0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if seen + bucket_count >= rank:
                    upper = bucket_upper(index)
                    lower = 0.0 if index == 0 else bucket_upper(index - 1)
                    if math.isinf(upper):
                        return self.max
                    fraction = (rank - seen) / bucket_count
                    value = lower + fraction * (upper - lower)
                    return min(max(value, self.min), self.max)
                seen += bucket_count
            return self.max  # pragma: no cover - rank <= count always hits

    def buckets(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs (Prometheus ``le``)."""
        return self.export()[0]

    def export(self) -> tuple[list[tuple[float, int]], float, int]:
        """Atomic ``(cumulative buckets, sum, count)`` for exporters.

        A Prometheus histogram must satisfy ``le="+Inf" == count``;
        reading :meth:`buckets` and ``sum``/``count`` under separate lock
        acquisitions can tear against a concurrent :meth:`observe`, so
        exporters take all three from one locked read.
        """
        with self._lock:
            cumulative = 0
            out = []
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                out.append((bucket_upper(index), cumulative))
            return out, self.sum, self.count

    def snapshot(self) -> dict[str, float]:
        """Summary stats: count, sum, min/max, mean, p50/p95/p99."""
        with self._lock:
            count, total = self.count, self.sum
            lo = 0.0 if count == 0 else self.min
            hi = self.max
        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": total / count if count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (BUCKETS + 1)
            self.count = 0
            self.sum = 0.0
            self.min = math.inf
            self.max = 0.0

"""The engine-wide observability hub.

One :class:`Observability` instance per engine owns every tracing sink:
the firing-span ring, the ingest→emit latency histogram, the firing
duration histogram, and the per-opcode duration histograms.  The engine
hands it to the scheduler (spans, latency) and the scheduler attaches its
opcode observer to each per-firing profiler (per-opcode histograms).

Disabled observability is represented by *absence* — the engine passes
``None`` down the stack — so the disabled cost on the firing path is a
single ``is None`` test, not a flag check inside a constructed object.
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro.obs.hist import LogHistogram
from repro.obs.spans import SpanRecorder


class Observability:
    """Tracing sinks for one engine: spans + latency/duration histograms."""

    def __init__(self, span_capacity: int = 1024) -> None:
        #: Ring buffer of recent firing spans (``repro trace``).
        self.spans = SpanRecorder(span_capacity)
        #: Ingest→emit latency: basket arrival stamp → result dispatch.
        self.latency = LogHistogram()
        #: Wall time of whole firings (ready-check to dispatch).
        self.firing_duration = LogHistogram()
        self._lock = threading.Lock()
        self._opcodes: dict[str, LogHistogram] = {}  # guarded-by: _lock

    # -- per-opcode histograms ------------------------------------------
    def observe_opcode(self, opcode: str, seconds: float) -> None:
        """Record one instruction execution (the profiler's observer hook)."""
        with self._lock:
            hist = self._opcodes.setdefault(opcode, LogHistogram())
        hist.observe(seconds)  # after release: LogHistogram locks itself

    def opcode_histograms(self) -> dict[str, LogHistogram]:
        """Point-in-time view of the per-opcode histograms."""
        with self._lock:
            return dict(self._opcodes)

    def iter_opcode_snapshots(self) -> Iterator[tuple[str, dict[str, float]]]:
        for opcode, hist in sorted(self.opcode_histograms().items()):
            yield opcode, hist.snapshot()

    def reset(self) -> None:
        self.spans.clear()
        self.latency.reset()
        self.firing_duration.reset()
        with self._lock:
            self._opcodes.clear()

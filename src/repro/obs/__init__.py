"""Observability — tracing and metrics for a running DataCell engine.

The paper's evaluation attributes every sliding step's cost to main-plan
vs. merge/transition work (Figures 4-10); this package turns that
attribution into a first-class runtime facility instead of a benchmark
afterthought:

* **firing spans** (:mod:`repro.obs.spans`) — the scheduler wraps every
  factory firing in a :class:`FiringSpan` carrying the factory name,
  firing sequence number, tuples consumed/emitted, ready-wait time, and
  the per-tag (``main``/``merge``/``admin``) cost breakdown the
  interpreter already produces.  Spans land in a bounded ring buffer
  (:class:`SpanRecorder`); when observability is disabled the scheduler
  never constructs one, so the cost is a single ``is None`` check;
* **latency histograms** (:mod:`repro.obs.hist`) — baskets stamp batch
  arrival, the scheduler closes the loop when the consuming firing
  emits, giving an ingest→emit latency distribution (p50/p95/p99) plus
  per-opcode duration histograms.  :class:`LogHistogram` uses fixed
  log-scale buckets and a single short lock per observation;
* **metrics export** (:mod:`repro.obs.metrics`) — engine-wide counters,
  gauges and histograms assembled into one structured snapshot by
  :meth:`DataCellEngine.metrics` and rendered as Prometheus text
  exposition format or JSON;
* **console views** (:mod:`repro.obs.console`) — ``repro top`` (live
  per-factory table: firings/s, basket depth, cache hit rate, lag) and
  ``repro trace --last N`` (recent span dump).

docs/OPERATIONS.md §6 is the operator guide; DESIGN.md §11 records the
design rationale.
"""

from repro.obs.core import Observability
from repro.obs.hist import LogHistogram
from repro.obs.metrics import collect_metrics, render_json, render_prometheus
from repro.obs.spans import FiringSpan, SpanRecorder

__all__ = [
    "Observability",
    "FiringSpan",
    "SpanRecorder",
    "LogHistogram",
    "collect_metrics",
    "render_prometheus",
    "render_json",
]

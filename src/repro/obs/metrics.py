"""Metrics assembly and export.

:func:`collect_metrics` folds every observable surface of an engine —
profiler counters, per-tag plan seconds, per-factory stats, per-stream
basket/overload stats, the fragment cache, and (when tracing is enabled)
the latency/duration histograms and span ring — into one plain-dict
snapshot.  That dict is the single source of truth: ``engine.metrics()``
returns it, :func:`render_json` serializes it, and
:func:`render_prometheus` flattens it into Prometheus text exposition
format (counters as ``_total``, histograms as cumulative ``le`` bucket
series) for scraping.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.core import Observability

#: Counters every snapshot carries, even before anything happened, so
#: dashboards and tests can rely on the keys existing.
BASE_COUNTERS = (
    "firings",
    "fragment_cache_hits",
    "fragment_cache_misses",
    "overflow_shed",
    "overflow_block_waits",
    "overflow_block_timeouts",
    "ingest_retries",
    "ingest_dropped",
    "emit_retries",
    "dead_letter_batches",
    "worker_errors",
    "tuples_consumed",
    "rows_emitted",
    "checkpoints",
    "checkpoint_bytes",
    "journal_records",
    "journal_bytes",
    "replayed_records",
    "recovery_suppressed",
    "landmark_spill_runs",
    "landmark_spill_bytes",
    "landmark_spill_pageins",
    "landmark_spill_pagein_bytes",
)


def collect_metrics(engine) -> dict:
    """One structured snapshot of everything the engine can report.

    ``engine`` is a :class:`~repro.core.engine.DataCellEngine` (duck-typed
    to avoid an import cycle: the engine imports this module).
    """
    profile = engine.profiler.snapshot()
    counters = {name: 0 for name in BASE_COUNTERS}
    counters.update(profile["counters"])

    factories = {}
    for name, stats in engine.scheduler.factory_stats().items():
        factories[name] = {
            "firings": stats["counters"].get("firings", 0),
            "counters": stats["counters"],
            "tags": stats["tags"],
        }

    obs = engine.obs
    metrics: dict = {
        "engine": {
            "queries": len(engine._queries),
            "streams": len(engine._stream_baskets),
            "workers": engine.scheduler.workers,
            "partitions": getattr(engine, "partitions", 1),
            "observability": obs is not None,
        },
        "counters": counters,
        "tags": profile["tags"],
        "factories": factories,
        "streams": engine.overload_stats(),
        "fragment_cache": engine.fragment_cache.stats(),
    }
    partition = getattr(engine, "partition_stats", None)
    if partition is not None:
        stats = partition()
        if stats:
            metrics["partition"] = stats
    durability = getattr(engine, "durability_stats", None)
    if durability is not None:
        stats = durability()
        if stats:
            metrics["durability"] = stats
    spill = getattr(engine, "landmark_spill_stats", None)
    if spill is not None:
        stats = spill()
        if stats:
            metrics["landmark_spill"] = stats
    if obs is not None:
        metrics["latency"] = obs.latency.snapshot()
        metrics["firing_duration"] = obs.firing_duration.snapshot()
        metrics["opcodes"] = {
            opcode: snap for opcode, snap in obs.iter_opcode_snapshots()
        }
        # One locked read: the separate len()/total/dropped properties
        # can tear against a concurrent record() mid-snapshot.
        metrics["spans"] = obs.spans.stats()
    return metrics


def render_json(metrics: dict, indent: int = 2) -> str:
    """The metrics snapshot as a JSON document."""
    return json.dumps(metrics, indent=indent, sort_keys=True, default=str)


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels(**labels: str) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in labels.items())
    return "{" + inner + "}"


class _PromWriter:
    def __init__(self) -> None:
        self.lines: list[str] = []

    def header(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, value: float, **labels: str) -> None:
        self.lines.append(f"{name}{_labels(**labels)} {_fmt(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _render_histogram(
    writer: _PromWriter, name: str, help_text: str, hist
) -> None:
    writer.header(name, "histogram", help_text)
    # Atomic read: Prometheus requires le="+Inf" == _count, which only
    # holds if buckets, sum, and count come from the same locked view.
    buckets, total, count = hist.export()
    for upper, cumulative in buckets:
        writer.sample(f"{name}_bucket", cumulative, le=_fmt(upper))
    writer.sample(f"{name}_sum", total)
    writer.sample(f"{name}_count", count)


def render_prometheus(metrics: dict, obs: Optional["Observability"] = None) -> str:
    """The metrics snapshot in Prometheus text exposition format.

    ``obs`` (optional) supplies raw histogram buckets for the latency and
    firing-duration series; without it only the counter/gauge families
    are rendered.
    """
    w = _PromWriter()

    w.header("repro_firings_total", "counter", "Factory firings engine-wide.")
    w.sample("repro_firings_total", metrics["counters"].get("firings", 0))

    counter_help = {
        "fragment_cache_hits": "Shared fragment-cache hits.",
        "fragment_cache_misses": "Shared fragment-cache misses.",
        "overflow_shed": "Tuples shed by bounded baskets.",
        "overflow_block_waits": "Appends that waited for basket room.",
        "overflow_block_timeouts": "Blocked appends that timed out.",
        "ingest_retries": "Receptor append retries after overflow.",
        "ingest_dropped": "Tuples dropped by background receptors.",
        "emit_retries": "Emitter delivery retries.",
        "dead_letter_batches": "Result batches routed to dead letter.",
        "worker_errors": "Factory firing failures seen by the scheduler.",
        "tuples_consumed": "Tuples consumed by firings.",
        "rows_emitted": "Result rows emitted by firings.",
        "compiled_fallbacks": "Programs the compiled backend handed back.",
        "checkpoints": "Consistent checkpoints committed.",
        "checkpoint_bytes": "Snapshot bytes written by checkpoints.",
        "journal_records": "Records appended to the input journal.",
        "journal_bytes": "Bytes appended to the input journal.",
        "replayed_records": "Journal records replayed during recovery.",
        "recovery_suppressed": "Duplicate emissions dropped after restore.",
        "landmark_spill_runs": "Cold landmark runs spilled to disk.",
        "landmark_spill_bytes": "Bytes written to landmark spill runs.",
        "landmark_spill_pageins": "Spilled landmark runs paged back in.",
        "landmark_spill_pagein_bytes": "Bytes read back from spill runs.",
    }
    for counter, help_text in counter_help.items():
        name = f"repro_{counter}_total"
        w.header(name, "counter", help_text)
        w.sample(name, metrics["counters"].get(counter, 0))

    w.header(
        "repro_plan_seconds_total",
        "counter",
        "Interpreter seconds by cost tag (main/merge/admin).",
    )
    for tag, seconds in sorted(metrics["tags"].items()):
        w.sample("repro_plan_seconds_total", seconds, tag=tag)

    w.header(
        "repro_factory_firings_total", "counter", "Firings per factory."
    )
    for factory, stats in sorted(metrics["factories"].items()):
        w.sample("repro_factory_firings_total", stats["firings"], factory=factory)

    stream_gauges = (
        ("parked", "repro_basket_parked", "Tuples parked across a stream's baskets."),
        ("max_parked", "repro_basket_max_parked", "Worst single-basket occupancy."),
        ("capacity", "repro_basket_capacity", "Configured capacity (0 = unbounded)."),
        ("baskets", "repro_stream_baskets", "Baskets bound to the stream."),
    )
    for key, name, help_text in stream_gauges:
        w.header(name, "gauge", help_text)
        for stream, stats in sorted(metrics["streams"].items()):
            w.sample(name, stats[key], stream=stream)

    partition = metrics.get("partition")
    if partition:
        w.header(
            "repro_partition_routed_total",
            "counter",
            "Tuples hash-routed to each partition of a stream.",
        )
        for stream, stats in sorted(partition["streams"].items()):
            for p, routed in enumerate(stats["routed"]):
                w.sample(
                    "repro_partition_routed_total",
                    routed,
                    stream=stream,
                    partition=str(p),
                )
        w.header(
            "repro_partition_skew",
            "gauge",
            "Routing skew per stream: (max - min) / max tuples routed.",
        )
        for stream, stats in sorted(partition["streams"].items()):
            w.sample("repro_partition_skew", stats["skew"], stream=stream)
        w.header(
            "repro_partition_lag_windows",
            "gauge",
            "Window-progress spread across a query's partitions.",
        )
        for qname, stats in sorted(partition["queries"].items()):
            w.sample("repro_partition_lag_windows", stats["lag"], query=qname)
        w.header(
            "repro_partition_merged_windows_total",
            "counter",
            "Windows merged by the coordinator per partitioned query.",
        )
        for qname, stats in sorted(partition["queries"].items()):
            w.sample(
                "repro_partition_merged_windows_total",
                stats["windows"],
                query=qname,
            )
        w.header(
            "repro_partition_worker_parked",
            "gauge",
            "Tuples parked in one shard worker's baskets.",
        )
        for p, counters in enumerate(partition["workers"]):
            w.sample(
                "repro_partition_worker_parked",
                counters.get("parked", 0),
                partition=str(p),
            )

    durability = metrics.get("durability")
    if durability:
        w.header(
            "repro_journal_seq",
            "gauge",
            "Highest sequence number appended to the input journal.",
        )
        w.sample("repro_journal_seq", durability.get("seq", 0))
        w.header(
            "repro_journal_segment_bytes",
            "gauge",
            "Bytes in the live (post-checkpoint) journal segment.",
        )
        w.sample("repro_journal_segment_bytes", durability.get("journal_bytes", 0))
        w.header(
            "repro_checkpoint_snapshot_id",
            "gauge",
            "Identifier of the live snapshot (0 = none yet).",
        )
        w.sample("repro_checkpoint_snapshot_id", durability.get("snapshot_id", 0))
        last = durability.get("last_checkpoint") or {}
        w.header(
            "repro_last_checkpoint_bytes",
            "gauge",
            "Size of the most recent snapshot file.",
        )
        w.sample("repro_last_checkpoint_bytes", last.get("bytes", 0))
        w.header(
            "repro_last_checkpoint_seconds",
            "gauge",
            "Wall-clock duration of the most recent checkpoint.",
        )
        w.sample("repro_last_checkpoint_seconds", last.get("seconds", 0.0))

    spill = metrics.get("landmark_spill")
    if spill:
        spill_gauges = (
            ("hot_bytes", "repro_landmark_spill_hot_bytes",
             "In-memory landmark partial bytes (hot suffix)."),
            ("budget_bytes", "repro_landmark_spill_budget_bytes",
             "Configured per-query hot-state byte budget."),
            ("disk_bytes", "repro_landmark_spill_disk_bytes",
             "Bytes held in a query's on-disk spill runs."),
            ("runs", "repro_landmark_spill_run_files",
             "Spill run files currently on disk for a query."),
        )
        for key, name, help_text in spill_gauges:
            w.header(name, "gauge", help_text)
            for qname, stats in sorted(spill.items()):
                w.sample(name, stats.get(key, 0), query=qname)

    cache = metrics["fragment_cache"]
    w.header(
        "repro_fragment_cache_hit_rate",
        "gauge",
        "Shared fragment-cache hit rate over its lifetime.",
    )
    w.sample("repro_fragment_cache_hit_rate", cache.get("hit_rate", 0.0))

    if obs is not None:
        _render_histogram(
            w,
            "repro_ingest_emit_latency_seconds",
            "Latency from basket arrival to result dispatch.",
            obs.latency,
        )
        _render_histogram(
            w,
            "repro_firing_duration_seconds",
            "Duration of factory firings.",
            obs.firing_duration,
        )
        spans = metrics.get("spans", {})
        w.header("repro_spans_recorded", "gauge", "Spans held in the trace ring.")
        w.sample("repro_spans_recorded", spans.get("recorded", 0))
        w.header("repro_spans_dropped_total", "counter", "Spans evicted from the ring.")
        w.sample("repro_spans_dropped_total", spans.get("dropped", 0))
    return w.text()

"""Text renderings of the observability state (``repro top`` / ``trace``).

Both renderers read only public engine surfaces (``metrics()``, the span
ring, per-query baskets), so they work on any engine regardless of how it
is driven.  They return strings rather than printing, which keeps them
testable and lets the CLI choose its own refresh/paging behaviour.
"""

from __future__ import annotations

import time


def _rate(spans) -> float:
    """Firings per second over the span window (0.0 if not measurable)."""
    if len(spans) < 2:
        return 0.0
    elapsed = spans[-1].wall - spans[0].wall
    if elapsed <= 0:
        return 0.0
    return (len(spans) - 1) / elapsed


def _pct(numerator: float, denominator: float) -> str:
    if denominator <= 0:
        return "-"
    return f"{100.0 * numerator / denominator:.1f}%"


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}"


def render_top(engine) -> str:
    """One ``repro top`` frame: engine summary + per-factory table."""
    metrics = engine.metrics()
    counters = metrics["counters"]
    lines = []
    cache = metrics["fragment_cache"]
    summary = (
        f"queries={metrics['engine']['queries']} "
        f"streams={metrics['engine']['streams']} "
        f"workers={metrics['engine']['workers']} "
        f"firings={counters['firings']} "
        f"cache_hit_rate={cache.get('hit_rate', 0.0):.3f} "
        f"shed={counters['overflow_shed']} "
        f"worker_errors={counters['worker_errors']}"
    )
    lines.append(summary)
    partition = metrics.get("partition")
    if partition:
        for stream, stats in sorted(partition["streams"].items()):
            routed = "/".join(str(n) for n in stats["routed"])
            lines.append(
                f"partitions[{stream}] key={stats['key']} "
                f"routed={routed} skew={stats['skew']:.3f}"
            )
        for qname, stats in sorted(partition["queries"].items()):
            lines.append(
                f"partitioned {qname}: route={stats['route']} "
                f"flavor={stats['flavor']} windows={stats['windows']} "
                f"lag={stats['lag']}"
            )
    latency = metrics.get("latency")
    if latency is not None:
        lines.append(
            "ingest→emit latency: "
            f"p50={_ms(latency['p50'])}ms p95={_ms(latency['p95'])}ms "
            f"p99={_ms(latency['p99'])}ms max={_ms(latency['max'])}ms "
            f"(n={latency['count']})"
        )
    header = (
        f"{'FACTORY':<12} {'FIRINGS':>8} {'FIRE/S':>8} {'IN':>10} "
        f"{'OUT':>10} {'DEPTH':>7} {'CACHE%':>7} {'LAG ms':>8}"
    )
    lines.append(header)
    obs = engine.obs
    by_factory: dict[str, list] = {}
    if obs is not None:
        for span in obs.spans.last():
            by_factory.setdefault(span.factory, []).append(span)
    for name, stats in sorted(metrics["factories"].items()):
        fc = stats["counters"]
        spans = by_factory.get(name, [])
        waits = [s.ready_wait for s in spans]
        lag = _ms(sum(waits) / len(waits)) if waits else "-"
        hits = fc.get("fragment_cache_hits", 0)
        misses = fc.get("fragment_cache_misses", 0)
        try:
            depth = sum(len(b) for b in engine.query(name).baskets.values())
        except KeyError:  # factory registered outside submit()
            depth = 0
        lines.append(
            f"{name:<12} {fc.get('firings', 0):>8} {_rate(spans):>8.2f} "
            f"{fc.get('tuples_consumed', 0):>10} {fc.get('rows_emitted', 0):>10} "
            f"{depth:>7} {_pct(hits, hits + misses):>7} {lag:>8}"
        )
    if not metrics["factories"]:
        lines.append("(no factories registered)")
    return "\n".join(lines)


def render_trace(engine, last: int = 10) -> str:
    """The most recent ``last`` firing spans, oldest first."""
    obs = engine.obs
    if obs is None:
        return "observability is disabled (engine was built with observability=False)"
    spans = obs.spans.last(last)
    if not spans:
        return "(no spans recorded yet)"
    lines = []
    for span in spans:
        clock = time.strftime("%H:%M:%S", time.localtime(span.wall))
        millis = int((span.wall % 1) * 1000)
        tags = " ".join(
            f"{tag}={_ms(seconds)}ms" for tag, seconds in sorted(span.tags.items())
        )
        lines.append(
            f"{clock}.{millis:03d} {span.factory} #{span.seq} "
            f"{_ms(span.duration)}ms wait={_ms(span.ready_wait)}ms "
            f"in={span.consumed} out={span.emitted}"
            + (f" [{tags}]" if tags else "")
        )
    shown = len(spans)
    stats = obs.spans.stats()
    lines.append(
        f"({shown} span(s) shown, {stats['total']} recorded, "
        f"{stats['dropped']} evicted)"
    )
    return "\n".join(lines)

"""Deterministic, seedable fault injection for overload testing.

Overload behaviour is only trustworthy if it is *tested under failure* —
but failures injected with wall-clock randomness make tests flaky, which
is worse than no test.  Every injector here is driven either by an
explicit schedule (exact ordinals) or by a seeded
``numpy.random.default_rng``, so a failing run replays identically.

Injectors (each wraps the real component and delegates everything else):

* :class:`StallingSource` — wraps a receptor's row iterator; every
  ``every``-th row the producer sleeps ``seconds`` (a bursty/stalling
  upstream).
* :class:`FlakyEmitter` — wraps a result sink; chosen deliveries raise
  :class:`InjectedFault` (a crashing downstream).  Pair it with
  :class:`~repro.core.emitter.RetryingEmitter` to test retry/dead-letter
  paths: ``fail_streak`` controls how many *consecutive* attempts for the
  same batch fail, so retries can be made to succeed or exhaust on
  purpose.
* :class:`SlowFactory` — wraps a factory; every ``every``-th ``step``
  sleeps ``delay`` before executing (a slow operator, the canonical way
  to make producers outrun the scheduler without huge data volumes).
* :class:`CrashPoint` — a durability fault hook that simulates the
  process dying (raises :class:`InjectedCrash`) at an exact hook
  ordinal: mid-segment-append (torn frame on disk), mid-checkpoint
  (snapshot written, manifest not), or any other
  :mod:`repro.core.durability` hook point.  The crash-recovery tests
  sweep the ordinal to kill the engine *everywhere* and assert restore
  yields exactly-once emissions.

All injectors are thread-safe where the wrapped component is driven from
scheduler/receptor threads.  :func:`wait_until` is the polling barrier the
concurrency tests use to sequence threads on observable state instead of
fixed sleeps.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.core.factory import FactoryBase, ResultBatch
from repro.errors import ReproError
from repro.kernel.execution.profiler import Profiler


class InjectedFault(ReproError):
    """Raised by fault injectors; never raised by the engine itself, so
    tests can assert a failure came from the harness."""


class InjectedCrash(InjectedFault):
    """Raised by :class:`CrashPoint` to simulate the process dying at an
    exact durability hook point (the caller abandons the engine next)."""


class CrashPoint:
    """Deterministic process-death injector for durability tests.

    Installed via :meth:`DataCellEngine.install_fault_hook`, it counts the
    :mod:`repro.core.durability` hook invocations matching ``points`` (all
    hook points when None) and raises :class:`InjectedCrash` on the
    ``at``-th (0-based).  Because ``segment.append.torn`` fires *after*
    the first half of a frame is fsynced, a crash there leaves a torn
    record on disk — byte-for-byte what a power cut produces — and
    ``checkpoint.snapshot_written`` kills between the snapshot and the
    manifest rename, the classic half-committed checkpoint.  The test
    then calls ``engine.abandon()`` (never ``close()``: a dying process
    does not flush) and restores from the data dir.

    Deterministic: the ordinal is an exact count, so a failing ``at``
    replays identically.  ``fired`` records whether the crash triggered,
    letting kill-anywhere sweeps detect when they have run out of hook
    points and the workload completed uninterrupted.
    """

    def __init__(self, at: int, points: Optional[Iterable[str]] = None) -> None:
        if at < 0:
            raise ReproError(f"at must be >= 0, got {at}")
        self.at = at
        self.points = frozenset(points) if points is not None else None
        self.seen = 0
        self.fired = False

    def __call__(self, point: str) -> None:
        if self.points is not None and point not in self.points:
            return
        ordinal = self.seen
        self.seen += 1
        if ordinal == self.at:
            self.fired = True
            raise InjectedCrash(
                f"injected crash at {point} (hook ordinal {ordinal})"
            )


def wait_until(
    predicate: Callable[[], bool],
    timeout: float = 5.0,
    interval: float = 0.001,
) -> bool:
    """Poll ``predicate`` until it holds; ``False`` on timeout.

    The deterministic alternative to ``time.sleep(guess)`` in concurrency
    tests: the caller names the exact state transition it is waiting for
    (e.g. "both producers are parked on the basket's not-full condition")
    instead of hoping a fixed delay was long enough on a loaded machine.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class StallingSource:
    """Iterator wrapper: sleep ``seconds`` before every ``every``-th row.

    Deterministic: stalls happen at fixed ordinals (rows ``every``,
    ``2*every``, ...), not at random times.
    """

    def __init__(
        self, source: Iterable[Sequence], every: int, seconds: float
    ) -> None:
        if every < 1:
            raise ReproError(f"every must be >= 1, got {every}")
        self._source = iter(source)
        self.every = every
        self.seconds = seconds
        self.stalls = 0
        self._emitted = 0

    def __iter__(self) -> Iterator[Sequence]:
        return self

    def __next__(self) -> Sequence:
        row = next(self._source)
        self._emitted += 1
        if self._emitted % self.every == 0:
            self.stalls += 1
            time.sleep(self.seconds)
        return row


class FlakyEmitter:
    """Result sink that fails on schedule.

    Failure schedule, in precedence order:

    * ``failures`` — explicit 0-based *delivery ordinals* that fail (a
      delivery is one batch; retries of the same batch count via
      ``fail_streak``, not as new ordinals);
    * ``rate``/``seed`` — each delivery fails independently with
      probability ``rate`` from a seeded RNG (deterministic sequence).

    ``fail_streak`` (default 1) makes the first ``fail_streak`` attempts
    of a failing delivery raise before the batch goes through — set it
    above a :class:`RetryingEmitter`'s retry budget to force dead-letters,
    below it to test recovery.  ``inner`` (optional) receives every batch
    that succeeds.
    """

    def __init__(
        self,
        inner: Optional[Callable[[str, ResultBatch], None]] = None,
        failures: Optional[Iterable[int]] = None,
        rate: float = 0.0,
        seed: int = 0,
        fail_streak: int = 1,
    ) -> None:
        if fail_streak < 1:
            raise ReproError(f"fail_streak must be >= 1, got {fail_streak}")
        self._inner = inner
        self._failures = set(failures) if failures is not None else None
        self._rate = rate
        self._rng = np.random.default_rng(seed)
        self.fail_streak = fail_streak
        self._lock = threading.Lock()
        self._delivery = -1  # current delivery ordinal
        self._attempts = 0  # attempts made for the current delivery
        self._fail_this = False
        self._last_batch: Optional[ResultBatch] = None
        self.raised = 0
        self.delivered = 0

    def _should_fail(self, delivery: int) -> bool:
        if self._failures is not None:
            return delivery in self._failures
        return bool(self._rng.random() < self._rate)

    def __call__(self, factory_name: str, batch: ResultBatch) -> None:
        with self._lock:
            if batch is not self._last_batch:
                self._last_batch = batch
                self._delivery += 1
                self._attempts = 0
                self._fail_this = self._should_fail(self._delivery)
            self._attempts += 1
            if self._fail_this and self._attempts <= self.fail_streak:
                self.raised += 1
                raise InjectedFault(
                    f"injected emitter failure (delivery {self._delivery}, "
                    f"attempt {self._attempts})"
                )
            self.delivered += 1
        if self._inner is not None:
            self._inner(factory_name, batch)


class SlowFactory(FactoryBase):
    """Factory wrapper adding a fixed delay to every ``every``-th step.

    Slows the *service rate* deterministically so a synthetic stream at a
    known arrival rate overloads the engine by a chosen factor.  Delegates
    ``ready``/``step`` (and attribute access, e.g. ``window_index``) to
    the wrapped factory.
    """

    def __init__(self, inner: FactoryBase, delay: float, every: int = 1) -> None:
        if every < 1:
            raise ReproError(f"every must be >= 1, got {every}")
        self.inner = inner
        self.name = inner.name
        self.delay = delay
        self.every = every
        self.slow_steps = 0
        self._steps = 0

    def ready(self) -> bool:
        return self.inner.ready()

    def step(self, profiler: Optional[Profiler] = None) -> Optional[ResultBatch]:
        self._steps += 1
        if self._steps % self.every == 0:
            self.slow_steps += 1
            time.sleep(self.delay)
        return self.inner.step(profiler)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
used by the overload stress tests and available to downstream users who
want to chaos-test their own pipelines.
"""

from repro.testing.faults import (
    FlakyEmitter,
    InjectedFault,
    SlowFactory,
    StallingSource,
    wait_until,
)

__all__ = [
    "FlakyEmitter",
    "InjectedFault",
    "SlowFactory",
    "StallingSource",
    "wait_until",
]

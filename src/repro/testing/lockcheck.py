"""Runtime lock-order conformance: the dynamic oracle for the static model.

:class:`ObservedLock` wraps an engine lock and reports every acquisition
to a :class:`LockObserver`, which keeps a per-thread stack of held locks
and records the *edges* actually taken (held node → newly acquired
node).  After a concurrency test or fuzzer run,
:meth:`LockObserver.violations` replays the observed edges against the
declared engine lock order (:data:`repro.analysis.guards.LOCK_ORDER`) —
any edge that acquires a lower-ranked lock while holding a higher-ranked
one, or nests two locks of the same rank, is a divergence between what
the code *did* and what the static graph says it may do.

:func:`instrument` swaps the observable locks of a built engine in
place.  Call it after every ``submit`` and before feeding: swapping a
lock some thread already holds would split its identity.  Two engine
locks stay unobserved by design:

* per-span pending locks (``FragmentCache.pending``) are created on
  demand inside the cache; the static edge to ``FragmentCache._lock``
  is checked by ``repro check`` instead;
* ``Basket._not_full`` is a Condition *sharing* the basket lock —
  waits go through the raw lock underneath the wrapper, which is
  correct (same lock) but invisible here.

This module is test-tooling: nothing in the engine imports it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.analysis.guards import LOCK_RANKS

__all__ = [
    "LockOrderViolation",
    "ObservedLock",
    "LockObserver",
    "instrument",
]


class LockOrderViolation(AssertionError):
    """Observed acquisition order diverges from the static lock order."""


@dataclass(frozen=True)
class ObservedEdge:
    """One observed held → acquired transition (deduplicated)."""

    src: str  # lock node held ("Scheduler._lock", ...)
    dst: str  # lock node acquired while src was held
    thread: str  # name of the first thread that took this edge

    def describe(self) -> str:
        return f"{self.src} -> {self.dst} (thread {self.thread})"


class LockObserver:
    """Collects acquisition edges from every :class:`ObservedLock`."""

    def __init__(self) -> None:
        # Internal bookkeeping lock: a plain Lock, never observed, and
        # only ever taken as the innermost lock (no engine code runs
        # under it), so it cannot perturb the order being measured.
        self._lock = threading.Lock()
        self._edges: dict[tuple[str, str], ObservedEdge] = {}  # guarded-by: _lock
        self.acquisitions = 0  # total non-reentrant acquires; guarded-by: _lock
        self._held = threading.local()  # per-thread stack of ObservedLock

    # -- called by ObservedLock ---------------------------------------
    def _stack(self) -> list["ObservedLock"]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def on_acquire(self, lock: "ObservedLock") -> None:
        stack = self._stack()
        reentrant = any(held is lock for held in stack)
        if not reentrant:
            edges = [
                (held.node, lock.node)
                for held in stack
                if held is not lock
            ]
            with self._lock:
                self.acquisitions += 1
                thread = threading.current_thread().name
                for src, dst in edges:
                    self._edges.setdefault((src, dst), ObservedEdge(src, dst, thread))
        stack.append(lock)

    def on_release(self, lock: "ObservedLock") -> None:
        stack = self._stack()
        # Releases may be non-LIFO (rare, but acquire()/release() pairs
        # are free-form): drop the most recent entry for this instance.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return

    # -- conformance ---------------------------------------------------
    def edges(self) -> list[ObservedEdge]:
        with self._lock:
            return sorted(self._edges.values(), key=lambda e: (e.src, e.dst))

    def violations(self) -> list[str]:
        """Observed edges that the static lock order forbids.

        Edges touching undeclared (unranked) locks are ignored — the
        static lint already warns on those at their acquisition sites.
        """
        out = []
        for edge in self.edges():
            src_rank = LOCK_RANKS.get(edge.src)
            dst_rank = LOCK_RANKS.get(edge.dst)
            if src_rank is None or dst_rank is None:
                continue
            if src_rank >= dst_rank:
                kind = (
                    "nests two locks of the same node"
                    if src_rank == dst_rank
                    else "acquires against the declared order"
                )
                out.append(f"{edge.describe()}: {kind}")
        return out

    def assert_conforms(self) -> None:
        """Raise :class:`LockOrderViolation` on any divergence."""
        found = self.violations()
        if found:
            raise LockOrderViolation(
                "observed lock acquisitions diverge from the static "
                "lock order:\n  " + "\n  ".join(found)
            )


class ObservedLock:
    """A lock proxy that reports acquire/release to a :class:`LockObserver`.

    Wraps ``threading.Lock`` and ``threading.RLock`` instances alike;
    everything not intercepted delegates to the raw lock.
    """

    def __init__(self, raw: Any, node: str, observer: LockObserver) -> None:
        self._raw = raw
        self.node = node
        self._observer = observer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._raw.acquire(blocking, timeout)
        if acquired:
            self._observer.on_acquire(self)
        return acquired

    def release(self) -> None:
        self._observer.on_release(self)
        self._raw.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def locked(self) -> bool:
        return self._raw.locked()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._raw, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ObservedLock({self.node})"


@dataclass
class _Instrumented:
    """What :func:`instrument` wrapped (handy for assertions in tests)."""

    observer: LockObserver
    wrapped: list[str] = field(default_factory=list)


def instrument(engine: Any, observer: Optional[LockObserver] = None) -> LockObserver:
    """Swap a built engine's locks for :class:`ObservedLock` wrappers.

    Call after all ``submit``/``create_stream`` calls and before any
    feeding or ``scheduler.start()``; swapping a held lock would split
    its identity between the wrapper and the raw lock.
    """
    observer = observer or LockObserver()

    def wrap(obj: Any, attr: str, node: str) -> None:
        raw = getattr(obj, attr, None)
        if raw is None or isinstance(raw, ObservedLock):
            return
        # Test-harness surgery on private lock attributes, by design.
        setattr(obj, attr, ObservedLock(raw, node, observer))

    scheduler = engine.scheduler
    wrap(scheduler, "_lock", "Scheduler._lock")
    # Quiescent by contract (no threads yet), so the registry read is safe.
    for registration in scheduler._registrations.values():  # repro-check: allow(unguarded-read)
        wrap(registration, "firing_lock", "_Registration.firing_lock")
    for baskets in engine._stream_baskets.values():
        for basket in baskets:
            wrap(basket, "_lock", "Basket._lock")
    wrap(engine.fragment_cache, "_lock", "FragmentCache._lock")
    wrap(scheduler.profiler, "_lock", "Profiler._lock")
    if engine.obs is not None:
        wrap(engine.obs, "_lock", "Observability._lock")
        wrap(engine.obs.spans, "_lock", "SpanRecorder._lock")
        for hist in list(getattr(engine.obs, "_opcodes", {}).values()):
            wrap(hist, "_lock", "LogHistogram._lock")
    for handle in engine._queries.values():
        wrap(handle.emitter, "_lock", "CollectingEmitter._lock")
    return observer

"""Shrinking reducer and the ``.repro.json`` replay format.

A fuzz divergence is only actionable if it is small and replayable.  On
failure the runner wraps the offending (query, feed, config, check) into
a :class:`ReproCase`, greedily shrinks it — feed truncation first (rows
dominate readability), then clause-level query simplification — and
writes a versioned JSON file that ``repro fuzz --replay`` re-executes
deterministically.

Shrinking is *validity-preserving*: every candidate is re-planned before
re-evaluation and a candidate whose divergence degenerates into an
engine error (when the original was a genuine result mismatch) is
rejected, so the reducer cannot "simplify" a correctness bug into an
unrelated crash.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional

from repro.errors import ReproError
from repro.testing.fuzz.generator import Feed, FuzzQuery
from repro.testing.fuzz.metamorphic import check_relation
from repro.testing.fuzz.oracle import Divergence, OracleConfig, run_oracle
from repro.testing.fuzz.reference import ReferenceOracle

FORMAT = "repro-fuzz/1"


@dataclass
class ReproCase:
    """Everything needed to re-execute one fuzz failure deterministically."""

    query: FuzzQuery
    feed: Feed
    config: OracleConfig
    check: str = "oracle"  # "oracle" or a metamorphic relation name
    relation_seed: int = 0
    seed: int = 0
    iteration: int = 0
    divergence: Optional[Divergence] = None

    def to_json(self) -> dict:
        return {
            "format": FORMAT,
            "seed": self.seed,
            "iteration": self.iteration,
            "check": self.check,
            "relation_seed": self.relation_seed,
            "sql": self.query.sql,
            "query": self.query.to_json(),
            "feed": self.feed.to_json(),
            "config": self.config.to_json(),
            "divergence": self.divergence.to_json() if self.divergence else None,
        }

    @staticmethod
    def from_json(data: dict) -> "ReproCase":
        if data.get("format") != FORMAT:
            raise ReproError(
                f"unsupported repro format {data.get('format')!r} "
                f"(expected {FORMAT!r})"
            )
        divergence = data.get("divergence")
        return ReproCase(
            query=FuzzQuery.from_json(data["query"]),
            feed=Feed.from_json(data["feed"]),
            config=OracleConfig.from_json(data["config"]),
            check=data.get("check", "oracle"),
            relation_seed=data.get("relation_seed", 0),
            seed=data.get("seed", 0),
            iteration=data.get("iteration", 0),
            divergence=Divergence(**divergence) if divergence else None,
        )


def write_case(case: ReproCase, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(case.to_json(), indent=2) + "\n")
    return path


def load_case(path: str | Path) -> ReproCase:
    return ReproCase.from_json(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def evaluate_case(case: ReproCase) -> Optional[Divergence]:
    """Re-run the case's check; the divergence if it still reproduces."""
    if case.check == "oracle":
        return run_oracle(case.query, case.feed, case.config).divergence
    return check_relation(
        case.check,
        case.query,
        case.feed,
        case.relation_seed,
        case.config.float_tol,
    )


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
class _Budget:
    def __init__(self, runs: int) -> None:
        self.remaining = runs

    def spend(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def _plans(query: FuzzQuery) -> bool:
    try:
        ReferenceOracle(query)
    except ReproError:
        return False
    return True


def _still_fails(
    case: ReproCase, candidate: ReproCase, budget: _Budget
) -> Optional[Divergence]:
    if not budget.spend():
        return None
    try:
        divergence = evaluate_case(candidate)
    except ReproError:
        return None
    if divergence is None:
        return None
    # don't let a genuine mismatch degrade into an unrelated crash
    original_kind = case.divergence.kind if case.divergence else None
    if original_kind not in (None, "error") and divergence.kind == "error":
        return None
    return divergence


def _truncated_feed(feed: Feed, stream: str, keep: int, drop_head: int = 0) -> Feed:
    columns = {s: dict(cols) for s, cols in feed.columns.items()}
    timestamps = dict(feed.timestamps)
    columns[stream] = {
        col: values[drop_head : drop_head + keep]
        for col, values in feed.columns[stream].items()
    }
    ts = feed.timestamps.get(stream)
    if ts is not None:
        timestamps[stream] = ts[drop_head : drop_head + keep]
    return Feed(columns=columns, timestamps=timestamps, punctuate=dict(feed.punctuate))


def _shrink_feed(case: ReproCase, budget: _Budget) -> ReproCase:
    changed = True
    while changed and budget.remaining > 0:
        changed = False
        for stream in list(case.query.streams):
            total = case.feed.row_count(stream)
            step = case.query.windows[stream].step if not case.query.windows[
                stream
            ].time_based else 0
            candidates: list[tuple[int, int]] = []  # (keep, drop_head)
            if total > 1:
                candidates.append((total // 2, 0))
            if step and total > step:
                candidates.append((total - step, 0))
                candidates.append((total - step, step))
            if total > 1:
                candidates.append((total - 1, 0))
            for keep, drop in candidates:
                if keep <= 0 or keep >= total:
                    continue
                trimmed = replace(
                    case, feed=_truncated_feed(case.feed, stream, keep, drop)
                )
                divergence = _still_fails(case, trimmed, budget)
                if divergence is not None:
                    case = replace(trimmed, divergence=divergence)
                    changed = True
                    break
    return case


def _query_edits(query: FuzzQuery):
    """Candidate clause-level simplifications, most aggressive first."""
    if query.order_by:
        yield replace(query, order_by=[])
    if query.having:
        yield replace(query, having=None)
    if query.where:
        yield replace(query, where=None)
    if query.distinct:
        yield replace(query, distinct=False)
    if len(query.select_items) > 1:
        for index in range(len(query.select_items)):
            items = [s for i, s in enumerate(query.select_items) if i != index]
            dropped = query.select_items[index]
            name = dropped.split(" AS ")[-1].strip()
            order_by = [
                key for key in query.order_by if key.split()[0] != name
            ]
            expr = dropped.split(" AS ")[0].strip()
            group_by = list(query.group_by)
            if expr in group_by and len(group_by) > 1:
                group_by = [g for g in group_by if g != expr]
            yield replace(
                query,
                select_items=items,
                order_by=order_by,
                group_by=group_by,
            )


def _shrink_query(case: ReproCase, budget: _Budget) -> ReproCase:
    changed = True
    while changed and budget.remaining > 0:
        changed = False
        for candidate_query in _query_edits(case.query):
            if not _plans(candidate_query):
                continue
            candidate = replace(case, query=candidate_query)
            divergence = _still_fails(case, candidate, budget)
            if divergence is not None:
                case = replace(candidate, divergence=divergence)
                changed = True
                break
    return case


def shrink(case: ReproCase, max_runs: int = 60) -> ReproCase:
    """Greedy minimization bounded by ``max_runs`` re-executions."""
    budget = _Budget(max_runs)
    case = _shrink_feed(case, budget)
    case = _shrink_query(case, budget)
    case = _shrink_feed(case, budget)  # query edits often unlock more rows
    return case

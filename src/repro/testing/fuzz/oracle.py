"""Four-way differential oracle for generated continuous queries.

Each generated query is executed on up to six legs and every fired
window is compared across them:

* ``incremental`` — the paper's DataCell (split/replicate/merge plans);
* ``reeval`` — the DataCellR full-recompute baseline;
* ``systemx`` — the specialized tuple-at-a-time simulation (skipped for
  time-based windows and stream⋈table joins, which it rejects);
* ``reference`` — the naive Python evaluator
  (:mod:`repro.testing.fuzz.reference`);
* ``incremental-dup`` — a second identical incremental query in the same
  engine, so the cross-query fragment cache serves shared fragments;
* ``incremental-chunked`` — the same plan driven through
  ``step_chunked(m)`` (single-stream count-based sliding only);
* ``incremental-partitioned`` — the same query on a separate
  ``partitions=P`` engine (hash-routed shard worker processes plus the
  coordinator's merge, DESIGN.md §14; single-stream non-landmark shapes
  with a hashable key only);
* ``incremental-crash`` — the same query on a separate *durable* engine
  that is checkpointed, killed, and restored at deterministic points
  mid-run (DESIGN.md §15); recovery must reproduce the uninterrupted
  emission list exactly once.

Configurable axes (workers, fragment sharing, feed chunking, lockcheck,
execution backend) shake the concurrency, caching, and compilation
layers with the *same* query; results must be invariant.  The
``backend`` axis runs the whole engine on the compiled backend
(DESIGN.md §13), making every leg a differential test of compiled vs
reference execution.  The ``lockcheck`` axis additionally runs the engine
under :mod:`repro.testing.lockcheck` wrappers and reports a
``lockorder`` divergence when the observed acquisition order escapes
the static lock-order graph.  Window rows are compared as multisets with float tolerance;
when the query has ORDER BY, each engine's emission order is additionally
checked for sortedness (ties stay unconstrained — LIMIT is never
generated).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Optional

from repro.core.engine import ContinuousQuery, DataCellEngine, _as_schema
from repro.dsms.engine import SystemX
from repro.errors import ReproError
from repro.testing.fuzz.generator import Feed, FuzzQuery, build_engine
from repro.testing.fuzz.reference import (
    ReferenceOracle,
    check_sorted,
    rows_equivalent,
)

#: Comparison legs in pivot-first order.
PIVOT = "incremental"


@dataclass
class OracleConfig:
    """One oracle run's execution axes."""

    workers: int = 1
    fragment_sharing: bool = True
    duplicate: bool = False  # second incremental query (fragment sharing)
    chunk_plan: Optional[dict[str, list[int]]] = None  # feed batch sizes
    step_chunk: Optional[int] = None  # m for step_chunked (chunk_ok only)
    float_tol: float = 1e-6
    lockcheck: bool = False  # run under ObservedLock, assert lock order
    backend: str = "interpreted"  # engine execution backend for all legs
    partitions: int = 1  # extra sharded leg when > 1 (partition_ok only)
    crash: bool = False  # extra durable leg: checkpoint+kill+restore mid-run

    def to_json(self) -> dict:
        return {
            "workers": self.workers,
            "fragment_sharing": self.fragment_sharing,
            "duplicate": self.duplicate,
            "chunk_plan": self.chunk_plan,
            "step_chunk": self.step_chunk,
            "float_tol": self.float_tol,
            "lockcheck": self.lockcheck,
            "backend": self.backend,
            "partitions": self.partitions,
            "crash": self.crash,
        }

    @staticmethod
    def from_json(data: dict) -> "OracleConfig":
        return OracleConfig(
            workers=data.get("workers", 1),
            fragment_sharing=data.get("fragment_sharing", True),
            duplicate=data.get("duplicate", False),
            chunk_plan=data.get("chunk_plan"),
            step_chunk=data.get("step_chunk"),
            float_tol=data.get("float_tol", 1e-6),
            lockcheck=data.get("lockcheck", False),
            # Pre-backend reproducers carry no "backend" key and replay
            # on the interpreter, exactly as they originally ran; the
            # same convention keeps pre-partition reproducers at P=1 and
            # pre-durability reproducers crash-free.
            backend=data.get("backend", "interpreted"),
            partitions=data.get("partitions", 1),
            crash=data.get("crash", False),
        )

    def describe(self) -> str:
        parts = [f"workers={self.workers}", f"sharing={self.fragment_sharing}"]
        if self.duplicate:
            parts.append("dup")
        if self.step_chunk:
            parts.append(f"m={self.step_chunk}")
        if self.chunk_plan:
            parts.append("chunked-feed")
        if self.lockcheck:
            parts.append("lockcheck")
        if self.backend != "interpreted":
            parts.append(f"backend={self.backend}")
        if self.partitions > 1:
            parts.append(f"partitions={self.partitions}")
        if self.crash:
            parts.append("crash")
        return " ".join(parts)


@dataclass
class Divergence:
    """One observed disagreement between two oracle legs."""

    kind: str  # "window-count" | "rows" | "order" | "error" | "lint" | "lockorder"
    left: str
    right: str
    window: Optional[int]
    detail: str

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "left": self.left,
            "right": self.right,
            "window": self.window,
            "detail": self.detail,
        }

    def describe(self) -> str:
        where = f" window {self.window}" if self.window is not None else ""
        return f"{self.kind} {self.left} vs {self.right}{where}: {self.detail}"


@dataclass
class OracleResult:
    divergence: Optional[Divergence]
    windows: dict[str, list[list[tuple]]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.divergence is None


# ----------------------------------------------------------------------
# feeding
# ----------------------------------------------------------------------
def normalize_chunks(total: int, sizes: Optional[list[int]]) -> list[int]:
    """Positive chunk sizes covering exactly ``total`` rows."""
    if total <= 0:
        return []
    if not sizes:
        return [total]
    out: list[int] = []
    used = 0
    for size in sizes:
        size = min(max(int(size), 1), total - used)
        if size <= 0:
            break
        out.append(size)
        used += size
        if used >= total:
            break
    if used < total:
        out.append(total - used)
    return out


def _feed_rounds(
    engine: DataCellEngine,
    query: FuzzQuery,
    feed: Feed,
    chunk_plan: Optional[dict[str, list[int]]],
    on_round,
    systemx: Optional[SystemX] = None,
) -> None:
    """Feed all streams in interleaved chunk rounds, firing after each."""
    plans = {
        name: normalize_chunks(
            feed.row_count(name),
            (chunk_plan or {}).get(name),
        )
        for name in query.streams
    }
    offsets = {name: 0 for name in query.streams}
    rounds = max((len(p) for p in plans.values()), default=0)
    for index in range(rounds):
        for name, sizes in plans.items():
            if index >= len(sizes):
                continue
            lo = offsets[name]
            hi = lo + sizes[index]
            offsets[name] = hi
            columns = {
                col: values[lo:hi]
                for col, values in feed.columns[name].items()
            }
            ts = feed.timestamps.get(name)
            engine.feed(
                name,
                columns=columns,
                timestamps=ts[lo:hi] if ts is not None else None,
            )
            if systemx is not None:
                for row in feed.rows(name, query.streams[name])[lo:hi]:
                    systemx.push(name, row)
        on_round()
    for name, watermark in feed.punctuate.items():
        engine.advance_time(name, watermark)
    on_round()


# ----------------------------------------------------------------------
# running one engine-side configuration
# ----------------------------------------------------------------------
def run_incremental(
    query: FuzzQuery,
    feed: Feed,
    chunk_plan: Optional[dict[str, list[int]]] = None,
    workers: int = 1,
    fragment_sharing: bool = True,
    sql: Optional[str] = None,
) -> list[list[tuple]]:
    """One incremental leg alone (the metamorphic relations' workhorse).

    ``sql`` overrides the rendered query text (e.g. substituted window
    geometries) while keeping the query's schemas and feed.
    """
    engine = build_engine(query, workers=workers, fragment_sharing=fragment_sharing)
    try:
        handle = engine.submit(sql if sql is not None else query.sql)
        _feed_rounds(
            engine, query, feed, chunk_plan, on_round=engine.run_until_idle
        )
        return [batch.rows() for batch in handle.results()]
    finally:
        engine.close()


def run_partitioned(
    query: FuzzQuery, feed: Feed, config: OracleConfig
) -> Optional[list[list[tuple]]]:
    """The sharded leg: the same query on a P-partition engine.

    Runs in its own engine (shard workers replace the thread axes — the
    step-chunk and lockcheck instruments only see in-process state).
    Returns None when the partition planner rejects the query shape, so
    the caller simply skips the leg.
    """
    from repro.errors import UnsupportedQueryError

    engine = build_engine(
        query,
        backend=config.backend,
        partitions=config.partitions,
        # A deliberately tiny budget: landmark queries must produce
        # identical windows whether their cold history is hot or spilled,
        # so the sharded leg doubles as a spill-correctness leg.  Gated on
        # the query shape (no rng draw) — historical reproducers replay
        # unchanged.
        landmark_spill_mb=0.01 if query.has_landmark else None,
    )
    try:
        try:
            handle = engine.submit(query.sql, name="qp")
        except UnsupportedQueryError:
            return None
        _feed_rounds(
            engine, query, feed, config.chunk_plan,
            on_round=engine.run_until_idle,
        )
        return [batch.rows() for batch in handle.results()]
    finally:
        engine.close()


def run_crash_leg(
    query: FuzzQuery, feed: Feed, config: OracleConfig
) -> list[list[tuple]]:
    """The durability leg: checkpoint + kill + restore cycles mid-run.

    Runs the query on its own durable P=1 engine and interrupts it twice
    at deterministic points — once *after feeding but before firing* a
    middle round (the journal holds input the factories never saw), and
    once after all input is consumed (results must survive verbatim).  A
    checkpoint partway through makes the second half replay from the
    snapshot + journal suffix; the recovery dedup filter must suppress
    every window emitted before the kill, so the final emission list is
    exactly the uninterrupted one (exactly-once from the emitter's view).
    """
    tmp = tempfile.mkdtemp(prefix="repro-fuzz-crash-")
    data_dir = os.path.join(tmp, "data")
    engine = build_engine(
        query,
        backend=config.backend,
        data_dir=data_dir,
        # Landmark queries spill under <data_dir>/spill here, so both
        # kill/restore cycles below also recover spilled cold history
        # (shape-gated, no rng — historical reproducers replay unchanged).
        landmark_spill_mb=0.01 if query.has_landmark else None,
    )
    try:
        handle = engine.submit(query.sql, name="qx")
        plans = {
            name: normalize_chunks(
                feed.row_count(name),
                (config.chunk_plan or {}).get(name),
            )
            for name in query.streams
        }
        offsets = {name: 0 for name in query.streams}
        rounds = max((len(p) for p in plans.values()), default=0)
        checkpoint_round = rounds // 3
        crash_round = (2 * rounds) // 3
        for index in range(rounds):
            for name, sizes in plans.items():
                if index >= len(sizes):
                    continue
                lo = offsets[name]
                hi = lo + sizes[index]
                offsets[name] = hi
                columns = {
                    col: values[lo:hi]
                    for col, values in feed.columns[name].items()
                }
                ts = feed.timestamps.get(name)
                engine.feed(
                    name,
                    columns=columns,
                    timestamps=ts[lo:hi] if ts is not None else None,
                )
            if index == crash_round:
                # Kill with this round's input journaled but unfired.
                engine.abandon()
                engine = DataCellEngine.restore(data_dir)
                handle = engine.query("qx")
            engine.run_until_idle()
            if index == checkpoint_round:
                engine.checkpoint()
        for name, watermark in feed.punctuate.items():
            engine.advance_time(name, watermark)
        engine.run_until_idle()
        # Final kill after quiescence: emissions must survive verbatim.
        engine.abandon()
        engine = DataCellEngine.restore(data_dir)
        engine.run_until_idle()
        handle = engine.query("qx")
        return [batch.rows() for batch in handle.results()]
    finally:
        engine.close()
        shutil.rmtree(tmp, ignore_errors=True)


def run_oracle(query: FuzzQuery, feed: Feed, config: OracleConfig) -> OracleResult:
    """Execute every applicable leg and compare all fired windows."""
    windows: dict[str, list[list[tuple]]] = {}
    reference = ReferenceOracle(query)
    windows["reference"] = reference.windows(feed)

    systemx: Optional[SystemX] = None
    sysx_query = None
    if query.systemx_ok:
        systemx = SystemX()
        for name, cols in query.streams.items():
            systemx.create_stream(name, _as_schema(cols))
        sysx_query = systemx.submit(query.sql)

    engine = build_engine(
        query,
        workers=config.workers,
        fragment_sharing=config.fragment_sharing,
        backend=config.backend,
    )
    chunk_batches: list = []
    try:
        incremental: ContinuousQuery = engine.submit(query.sql, name="qi")
        reeval = engine.submit(query.sql, mode="reeval", name="qr")
        duplicate = (
            engine.submit(query.sql, name="qd") if config.duplicate else None
        )
        chunked = None
        if config.step_chunk and query.chunk_ok:
            chunked = engine.submit(query.sql, name="qc")

        lock_observer = None
        if config.lockcheck:
            # After every submit, before any feeding: swap the engine's
            # locks for recording wrappers (the dynamic oracle for the
            # static lock-order graph).
            from repro.testing.lockcheck import instrument

            lock_observer = instrument(engine)

        def fire() -> None:
            if chunked is not None:
                while True:
                    batch = chunked.factory.step_chunked(config.step_chunk)
                    if batch is None:
                        break
                    chunk_batches.append(batch)
            engine.run_until_idle()

        try:
            _feed_rounds(
                engine, query, feed, config.chunk_plan, fire, systemx=systemx
            )
        except ReproError as exc:
            return OracleResult(
                Divergence("error", "engine", "feed", None, str(exc)), windows
            )
        windows[PIVOT] = [b.rows() for b in incremental.results()]
        windows["reeval"] = [b.rows() for b in reeval.results()]
        if duplicate is not None:
            windows["incremental-dup"] = [b.rows() for b in duplicate.results()]
        if chunked is not None:
            windows["incremental-chunked"] = [b.rows() for b in chunk_batches]
    finally:
        engine.close()
    if sysx_query is not None:
        windows["systemx"] = [list(rows) for rows in sysx_query.results]

    if config.partitions > 1 and query.partition_ok:
        partitioned = run_partitioned(query, feed, config)
        if partitioned is not None:
            windows["incremental-partitioned"] = partitioned

    if config.crash:
        windows["incremental-crash"] = run_crash_leg(query, feed, config)

    if lock_observer is not None:
        divergences = lock_observer.violations()
        if divergences:
            return OracleResult(
                Divergence(
                    "lockorder",
                    "dynamic",
                    "static",
                    None,
                    "; ".join(divergences),
                ),
                windows,
            )

    return OracleResult(compare_windows(windows, reference, config), windows)


def compare_windows(
    windows: dict[str, list[list[tuple]]],
    reference: ReferenceOracle,
    config: OracleConfig,
) -> Optional[Divergence]:
    """First divergence between the pivot leg and every other leg."""
    pivot = windows[PIVOT]
    for label, other in windows.items():
        if label == PIVOT:
            continue
        if len(other) != len(pivot):
            return Divergence(
                "window-count",
                PIVOT,
                label,
                None,
                f"{len(pivot)} vs {len(other)} windows",
            )
        for index, (left, right) in enumerate(zip(pivot, other)):
            if not rows_equivalent(left, right, config.float_tol):
                return Divergence(
                    "rows",
                    PIVOT,
                    label,
                    index,
                    f"{_preview(left)} vs {_preview(right)}",
                )
    if reference.order_keys:
        for label in (
            PIVOT,
            "reeval",
            "systemx",
            "incremental-dup",
            "incremental-partitioned",
            "incremental-crash",
        ):
            for index, rows in enumerate(windows.get(label, ())):
                if not check_sorted(rows, reference.order_keys, config.float_tol):
                    return Divergence(
                        "order",
                        label,
                        "order-by",
                        index,
                        f"rows not sorted: {_preview(rows)}",
                    )
    return None


def _preview(rows: list[tuple], limit: int = 6) -> str:
    text = repr(rows[:limit])
    if len(rows) > limit:
        text = text[:-1] + f", ... {len(rows)} rows]"
    return text

"""Naive Python reference evaluator for generated continuous queries.

The fourth oracle leg: a from-scratch interpreter that shares *no* code
with the kernel's physical compiler, the incremental rewriter, or the
SystemX simulation.  It reuses only the SQL front end (parse → plan →
:func:`repro.core.rewriter.analysis.analyze`) to agree on what the query
*means*, then evaluates each fired window by brute force over Python row
dicts — per-window full recompute, nested-loop joins, dict-based
grouping.

Window semantics implemented here (matching the engine's contracts):

* count sliding/tumbling: window ``k`` holds rows ``[k·w, k·w + W)`` and
  fires once ``W + k·w`` tuples arrived;
* count landmark: window ``k`` holds rows ``[0, (k+1)·w)``;
* time sliding: window ``k`` covers ``[origin + k·w, origin + k·w + W)``
  with ``origin`` the first tuple's timestamp; it fires when the
  watermark reaches ``origin + W + k·w`` (empty time windows *do* fire);
* time landmark: window ``k`` covers ``[origin, origin + (k+1)·w)``;
* joins fire ``min`` over the sides' fired-window counts;
* a window with zero qualifying rows emits one all-zero row iff the
  query is a global aggregation whose aggregates are all ``count``,
  otherwise nothing.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.engine import _as_schema
from repro.core.rewriter.analysis import PlanShape, StreamInput, analyze
from repro.errors import ReproError
from repro.kernel.storage import Catalog
from repro.sql.ast import BinOp, ColumnRef, Expr, Literal, UnaryOp
from repro.sql.optimizer import optimize
from repro.sql.planner import plan_query
from repro.testing.fuzz.generator import Feed, FuzzQuery


def _catalog_for(query: FuzzQuery) -> Catalog:
    catalog = Catalog()
    for name, cols in query.streams.items():
        catalog.create_stream(name, _as_schema(cols))
    for name, table in query.tables.items():
        handle = catalog.create_table(name, _as_schema(table["columns"]))
        if table["rows"]:
            handle.append_rows([tuple(r) for r in table["rows"]])
    return catalog


# ----------------------------------------------------------------------
# expression evaluation over row environments
# ----------------------------------------------------------------------
def _lookup(env: dict, ref: ColumnRef):
    if ref.table is not None:
        return env[ref.table][ref.name]
    if "" in env and ref.name in env[""]:
        return env[""][ref.name]
    for scope in env.values():
        if ref.name in scope:
            return scope[ref.name]
    raise KeyError(ref.name)


def eval_scalar(expr: Expr, env: dict):
    """Evaluate a non-aggregate expression over ``{alias: {col: value}}``."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return _lookup(env, expr)
    if isinstance(expr, UnaryOp):
        value = eval_scalar(expr.operand, env)
        return (not value) if expr.op == "not" else -value
    if isinstance(expr, BinOp):
        if expr.op == "and":
            return bool(eval_scalar(expr.left, env)) and bool(
                eval_scalar(expr.right, env)
            )
        if expr.op == "or":
            return bool(eval_scalar(expr.left, env)) or bool(
                eval_scalar(expr.right, env)
            )
        left = eval_scalar(expr.left, env)
        right = eval_scalar(expr.right, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right if right != 0 else float("nan")
        if expr.op == "%":
            return left % right if right != 0 else float("nan")
        if expr.op == "==":
            return left == right
        if expr.op == "!=":
            return left != right
        if expr.op == "<":
            return left < right
        if expr.op == "<=":
            return left <= right
        if expr.op == ">":
            return left > right
        if expr.op == ">=":
            return left >= right
        raise ReproError(f"reference: unknown operator {expr.op!r}")
    raise ReproError(f"reference: unknown expression {type(expr).__name__}")


def _aggregate_value(func: str, values: list):
    if func == "count":
        return len(values)
    if not values:
        raise ReproError("reference: empty non-count aggregate group")
    if func == "sum":
        return sum(values)
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    if func == "avg":
        return sum(values) / len(values)
    raise ReproError(f"reference: unknown aggregate {func!r}")


# ----------------------------------------------------------------------
# window slicing
# ----------------------------------------------------------------------
def _fired_count(
    stream: StreamInput,
    n_rows: int,
    ts: Optional[list[int]],
    watermark: Optional[int],
) -> int:
    window = stream.window
    if window.time_based:
        if not ts or watermark is None:
            return 0
        origin = ts[0]
        if window.is_landmark:
            return max(0, (watermark - origin) // window.step)
        if watermark < origin + window.size:
            return 0
        return (watermark - origin - window.size) // window.step + 1
    if window.is_landmark:
        return n_rows // window.step
    if n_rows < window.size:
        return 0
    return (n_rows - window.size) // window.step + 1


def _window_rows(
    stream: StreamInput,
    rows: list[dict],
    ts: Optional[list[int]],
    index: int,
) -> list[dict]:
    window = stream.window
    if window.time_based:
        assert ts is not None
        origin = ts[0]
        if window.is_landmark:
            low, high = origin, origin + (index + 1) * window.step
        else:
            low = origin + index * window.step
            high = low + window.size
        return [row for row, t in zip(rows, ts) if low <= t < high]
    if window.is_landmark:
        return rows[: (index + 1) * window.step]
    start = index * window.step
    return rows[start : start + window.size]


# ----------------------------------------------------------------------
# the oracle
# ----------------------------------------------------------------------
class ReferenceOracle:
    """Evaluate a generated query over a feed, window by window."""

    def __init__(self, query: FuzzQuery) -> None:
        self.query = query
        catalog = _catalog_for(query)
        self.planned = optimize(plan_query(query.sql, catalog))
        self.shape: PlanShape = analyze(self.planned)
        self.output_names = [name for __, name in self.shape.project.items]
        order = self.shape.order
        self.order_keys: list[tuple[int, bool]] = []
        if order is not None:
            positions = {name: i for i, name in enumerate(self.output_names)}
            self.order_keys = [
                (positions[name], desc) for name, desc in order.keys
            ]
        self._table_rows: list[dict] = []
        if self.shape.table is not None:
            table = query.tables[self.shape.table.scan.relation]
            names = [c for c, __ in table["columns"]]
            rows = [dict(zip(names, r)) for r in table["rows"]]
            predicate = self.shape.table.predicate
            alias = self.shape.table.alias
            if predicate is not None:
                rows = [
                    r for r in rows if eval_scalar(predicate, {alias: r})
                ]
            self._table_rows = rows

    # ------------------------------------------------------------------
    def windows(self, feed: Feed) -> list[list[tuple]]:
        """All fired windows' result rows (unordered unless ORDER BY)."""
        sides: list[tuple[StreamInput, list[dict], Optional[list[int]]]] = []
        counts: list[int] = []
        for stream in self.shape.streams:
            name = stream.scan.relation
            schema = self.query.streams[name]
            cols = feed.columns[name]
            n = feed.row_count(name)
            rows = [
                {col: cols[col][i] for col, __ in schema}
                for i in range(n)
            ]
            ts = feed.timestamps.get(name)
            counts.append(_fired_count(stream, n, ts, feed.watermark(name)))
            sides.append((stream, rows, ts))
        fired = min(counts) if counts else 0
        return [self._evaluate(sides, k) for k in range(fired)]

    # ------------------------------------------------------------------
    def _evaluate(self, sides, index: int) -> list[tuple]:
        envs = self._join_envs(sides, index)
        shape = self.shape
        if shape.residual is not None:
            envs = [e for e in envs if eval_scalar(shape.residual, e)]
        if shape.aggregate is not None:
            rows = self._aggregate(envs)
        else:
            rows = [
                tuple(eval_scalar(expr, env) for expr, __ in shape.project.items)
                for env in envs
            ]
        if shape.distinct:
            seen: set = set()
            unique = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique
        # ORDER BY affects presentation order only; the comparator checks
        # sortedness separately, so no need to sort here.  LIMIT is never
        # generated (ties make it nondeterministic).
        return rows

    def _join_envs(self, sides, index: int) -> list[dict]:
        shape = self.shape
        filtered: list[tuple[str, list[dict]]] = []
        for stream, rows, ts in sides:
            window = _window_rows(stream, rows, ts, index)
            if stream.predicate is not None:
                window = [
                    r
                    for r in window
                    if eval_scalar(stream.predicate, {stream.alias: r})
                ]
            filtered.append((stream.alias, window))
        if shape.join is None:
            alias, rows = filtered[0]
            return [{alias: row} for row in rows]
        if shape.table is not None:
            filtered.append((shape.table.alias, self._table_rows))
        (la, lrows), (ra, rrows) = filtered
        left_key, right_key = shape.join.left_key, shape.join.right_key
        envs = []
        for lrow in lrows:
            for rrow in rrows:
                env = {la: lrow, ra: rrow}
                if eval_scalar(left_key, env) == eval_scalar(right_key, env):
                    envs.append(env)
        return envs

    def _aggregate(self, envs: list[dict]) -> list[tuple]:
        shape = self.shape
        aggregate = shape.aggregate
        assert aggregate is not None
        groups: dict[tuple, list[dict]] = {}
        for env in envs:
            key = tuple(eval_scalar(k, env) for k in aggregate.keys)
            groups.setdefault(key, []).append(env)
        if not groups and not aggregate.keys:
            if all(spec.func == "count" for spec in aggregate.aggs):
                groups[()] = []  # count-only global aggregate: a zero row
            else:
                return []
        rows = []
        for key, members in groups.items():
            flat: dict = {f"key_{i}": v for i, v in enumerate(key)}
            for spec in aggregate.aggs:
                if spec.arg is None:
                    values = members  # count(*)
                    flat[spec.out] = len(members)
                else:
                    values = [eval_scalar(spec.arg, m) for m in members]
                    flat[spec.out] = _aggregate_value(spec.func, values)
            env = {"": flat}
            if shape.having is not None and not eval_scalar(shape.having, env):
                continue
            rows.append(
                tuple(eval_scalar(expr, env) for expr, __ in shape.project.items)
            )
        return rows


# ----------------------------------------------------------------------
# canonical comparison
# ----------------------------------------------------------------------
def _canon_value(value):
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        return round(value, 6) + 0.0
    if hasattr(value, "item"):  # numpy scalar
        return _canon_value(value.item())
    return value


def canon_rows(rows: list[tuple]) -> list[tuple]:
    """Order-insensitive canonical form: normalized values, sorted rows."""
    return sorted(
        (tuple(_canon_value(v) for v in row) for row in rows),
        key=lambda r: tuple((str(type(v)), str(v)) for v in r),
    )


def _values_close(a, b, tol: float) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        fa, fb = float(a), float(b)
        if math.isnan(fa) or math.isnan(fb):
            return math.isnan(fa) and math.isnan(fb)
        return abs(fa - fb) <= tol + tol * max(abs(fa), abs(fb))
    return a == b


def rows_equivalent(
    left: list[tuple], right: list[tuple], tol: float = 1e-6
) -> bool:
    """Multiset equality with float tolerance.

    The fast path compares rounded canonical forms; on mismatch an O(n²)
    greedy matching absorbs values straddling a rounding boundary
    (windows are small, so the quadratic fallback is cheap).
    """
    if len(left) != len(right):
        return False
    cl, cr = canon_rows(left), canon_rows(right)
    if cl == cr:
        return True
    remaining = list(cr)
    for row in cl:
        for index, other in enumerate(remaining):
            if len(row) == len(other) and all(
                _values_close(a, b, tol) for a, b in zip(row, other)
            ):
                del remaining[index]
                break
        else:
            return False
    return True


def check_sorted(
    rows: list[tuple], order_keys: list[tuple[int, bool]], tol: float = 1e-6
) -> bool:
    """True if ``rows`` respect the ORDER BY keys (ties unconstrained)."""
    for prev, cur in zip(rows, rows[1:]):
        for position, descending in order_keys:
            a, b = prev[position], cur[position]
            if _values_close(a, b, tol):
                continue
            if descending:
                if a > b:
                    break
                return False
            if a < b:
                break
            return False
    return True

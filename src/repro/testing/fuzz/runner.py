"""The ``repro fuzz`` driver: budgeted differential fuzzing sessions.

One session runs ``budget`` iterations.  Iteration ``i`` is fully
determined by ``(seed, i)`` — the generator RNG is
``np.random.default_rng([seed, i])`` — so any failure replays from the
two integers printed in the banner.  Each iteration:

1. draws a valid query with a *focus* feature rotating through
   :data:`~repro.testing.fuzz.generator.TAXONOMY` (guaranteed operator
   coverage at modest budgets) plus a matching feed;
2. lints the rewritten plan (:mod:`repro.analysis.lint`) — the fuzzer
   doubles as a free corpus for the static verifier;
3. runs the four-way oracle under randomly drawn execution axes
   (workers, fragment sharing, feed chunking, ``step_chunked``, a
   ``lockcheck`` axis that replays observed lock acquisitions against
   the static lock order — always on under ``--lockcheck`` — and a
   ``backend`` axis that runs the engine on the compiled execution
   backend — forceable via ``--backend compiled`` — and a
   ``partitions`` axis that adds a key-partitioned multi-process leg
   for supported query shapes — forceable via ``--partitions N`` — and
   a ``crash`` axis that adds a durable leg interrupted by
   checkpoint/kill/restore cycles mid-run — forceable via ``--crash``);
4. checks one metamorphic relation (rotating through
   :data:`~repro.testing.fuzz.metamorphic.RELATIONS`).

On divergence the case is shrunk (:mod:`repro.testing.fuzz.minimize`)
and written as ``fuzz-<seed>-<iteration>.repro.json``;
``repro fuzz --replay FILE`` re-executes it deterministically.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections import Counter
from typing import Optional, TextIO

import numpy as np

from repro.analysis.lint import lint_sql
from repro.errors import ReproError
from repro.testing.fuzz.generator import TAXONOMY, QueryGenerator, build_engine
from repro.testing.fuzz.metamorphic import RELATIONS, check_relation, random_chunk_plan
from repro.testing.fuzz.minimize import (
    ReproCase,
    evaluate_case,
    load_case,
    shrink,
    write_case,
)
from repro.testing.fuzz.oracle import Divergence, OracleConfig, run_oracle

#: relation seeds must be deterministic in (seed, iteration) alone
_RELATION_SALT = 1_000_003


class FuzzSession:
    """One budgeted fuzzing run; see the module docstring for the loop."""

    def __init__(
        self,
        budget: int,
        seed: int,
        out_dir: str = ".fuzz",
        rows_scale: float = 1.0,
        metamorphic: bool = True,
        lint: bool = True,
        vary_axes: bool = True,
        lockcheck: bool = False,
        backend: Optional[str] = None,
        partitions: Optional[int] = None,
        crash: bool = False,
        max_failures: int = 5,
        shrink_runs: int = 60,
        out: Optional[TextIO] = None,
    ) -> None:
        self.budget = budget
        self.seed = seed
        self.out_dir = out_dir
        self.rows_scale = rows_scale
        self.metamorphic = metamorphic
        self.lint = lint
        self.vary_axes = vary_axes
        self.lockcheck = lockcheck
        #: Forced execution backend; None leaves it to the random axis.
        self.backend = backend
        #: Forced partition count for the sharded leg; None leaves it to
        #: the random axis (P drawn from {2, 3} on ~1 in 4 iterations).
        self.partitions = partitions
        #: Force the checkpoint/kill/restore leg on every iteration;
        #: otherwise drawn as a random axis (~1 in 5 iterations).
        self.crash = crash
        self.max_failures = max_failures
        self.shrink_runs = shrink_runs
        self.out = out if out is not None else sys.stdout
        self.coverage: Counter = Counter()
        self.failures: list[ReproCase] = []
        self.iterations = 0
        self.rejected = 0

    def println(self, text: str = "") -> None:
        print(text, file=self.out)

    # ------------------------------------------------------------------
    def run(self) -> int:
        started = time.perf_counter()
        self.println(
            f"repro fuzz: budget={self.budget} seed={self.seed} "
            f"out={self.out_dir}"
        )
        for iteration in range(self.budget):
            self.iterations = iteration + 1
            if not self._iteration(iteration):
                break
        elapsed = time.perf_counter() - started
        self._report(elapsed)
        if self.failures:
            return 1
        if self.budget >= 2 * len(TAXONOMY) and self._missing():
            return 1
        return 0

    # ------------------------------------------------------------------
    def _iteration(self, iteration: int) -> bool:
        rng = np.random.default_rng([self.seed, iteration])
        generator = QueryGenerator(rng)
        focus = TAXONOMY[iteration % len(TAXONOMY)]
        try:
            query = generator.query(focus)
        except ReproError:
            self.rejected += 1
            return True
        feed = generator.feed(query, rows_scale=self.rows_scale)
        config = self._config(rng, query, feed)
        self.coverage.update(query.features)

        if self.lint:
            engine = build_engine(query)
            try:
                report, __ = lint_sql(engine, query.sql, subject=f"fuzz[{iteration}]")
            finally:
                engine.close()
            if not report.ok:
                detail = "; ".join(d.render() for d in report.errors())
                divergence = Divergence("lint", "plan-verifier", "rewriter", None, detail)
                return self._failure(iteration, query, feed, config, "lint", divergence)

        divergence = run_oracle(query, feed, config).divergence
        if divergence is not None:
            return self._failure(iteration, query, feed, config, "oracle", divergence)

        if self.metamorphic:
            relation = RELATIONS[iteration % len(RELATIONS)]
            relation_seed = self.seed * _RELATION_SALT + iteration
            divergence = check_relation(
                relation, query, feed, relation_seed, config.float_tol
            )
            if divergence is not None:
                return self._failure(
                    iteration, query, feed, config, relation, divergence,
                    relation_seed=relation_seed,
                )
        return True

    def _config(self, rng, query, feed) -> OracleConfig:
        if not self.vary_axes:
            return OracleConfig(
                lockcheck=self.lockcheck,
                backend=self.backend or "interpreted",
                partitions=self.partitions or 1,
                crash=self.crash,
            )
        # New axes draw *after* the existing ones so historical
        # (seed, iteration) pairs keep reproducing the same config.
        config = OracleConfig(
            workers=3 if rng.random() < 0.20 else 1,
            fragment_sharing=bool(rng.random() < 0.75),
            duplicate=bool(rng.random() < 0.35),
            chunk_plan=(
                random_chunk_plan(rng, query, feed)
                if rng.random() < 0.50
                else None
            ),
            step_chunk=(
                int(rng.integers(2, 5))
                if query.chunk_ok and rng.random() < 0.35
                else None
            ),
            lockcheck=self.lockcheck or bool(rng.random() < 0.25),
        )
        # Backend axis: drawn after the core axes (see comment above).
        # A --backend override skips the draw entirely, keeping older
        # draws aligned.
        config.backend = self.backend or (
            "compiled" if rng.random() < 0.45 else "interpreted"
        )
        # Partitions axis: drawn last.  The partitioned leg only runs for
        # shapes the sharded engine supports (query.partition_ok); other
        # shapes keep P=1 so the draw stays cheap and deterministic.
        if self.partitions is not None:
            config.partitions = self.partitions
        elif query.partition_ok and rng.random() < 0.25:
            config.partitions = int(rng.choice([2, 3]))
        # Crash axis: drawn LAST so historical (seed, iteration) pairs —
        # including saved .repro.json reproducers — replay byte-identical
        # configs.  A --crash override skips the draw entirely.
        if self.crash:
            config.crash = True
        else:
            config.crash = bool(rng.random() < 0.20)
        return config

    # ------------------------------------------------------------------
    def _failure(
        self,
        iteration: int,
        query,
        feed,
        config: OracleConfig,
        check: str,
        divergence: Divergence,
        relation_seed: int = 0,
    ) -> bool:
        case = ReproCase(
            query=query,
            feed=feed,
            config=config,
            check=check,
            relation_seed=relation_seed,
            seed=self.seed,
            iteration=iteration,
            divergence=divergence,
        )
        self.println()
        self.println(
            f"FAILURE iteration {iteration} (seed {self.seed}, check {check})"
        )
        self.println(f"  sql: {query.sql}")
        self.println(f"  divergence: {divergence.describe()}")
        self.println(f"  axes: {config.describe()}")
        if check != "lint":  # a lint diagnostic is already minimal
            case = shrink(case, max_runs=self.shrink_runs)
            rows = sum(case.feed.row_count(s) for s in case.query.streams)
            self.println(f"  minimized: {rows} rows, {case.query.sql}")
        path = write_case(
            case, f"{self.out_dir}/fuzz-{self.seed}-{iteration}.repro.json"
        )
        self.println(f"  wrote {path}")
        self.println(f"  replay: python -m repro fuzz --replay {path}")
        self.failures.append(case)
        return len(self.failures) < self.max_failures

    # ------------------------------------------------------------------
    def _missing(self) -> list[str]:
        return [f for f in TAXONOMY if self.coverage[f] == 0]

    def _report(self, elapsed: float) -> None:
        self.println()
        self.println(
            f"operator class coverage ({self.iterations} iterations, "
            f"{self.rejected} rejected draws, {elapsed:.1f}s):"
        )
        for feature in TAXONOMY:
            count = self.coverage[feature]
            marker = "" if count else "   <-- NOT COVERED"
            self.println(f"  {feature:<16} {count:>5}{marker}")
        missing = self._missing()
        if missing and self.budget >= 2 * len(TAXONOMY):
            self.println(f"coverage FAILED: {', '.join(missing)} never generated")
        verdict = (
            f"{len(self.failures)} divergence(s) — repros in {self.out_dir}/"
            if self.failures
            else "zero divergences"
        )
        self.println(f"repro fuzz: seed={self.seed}: {verdict}")


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def replay(path: str, out: Optional[TextIO] = None) -> int:
    """Re-execute a ``.repro.json``; exit 1 iff the divergence reproduces."""
    out = out if out is not None else sys.stdout
    case = load_case(path)
    print(
        f"replaying {path} (seed {case.seed}, iteration {case.iteration}, "
        f"check {case.check})",
        file=out,
    )
    print(f"  sql: {case.query.sql}", file=out)
    print(f"  axes: {case.config.describe()}", file=out)
    if case.check == "lint":
        engine = build_engine(case.query)
        try:
            report, __ = lint_sql(engine, case.query.sql, subject=path)
        finally:
            engine.close()
        divergence = (
            Divergence(
                "lint",
                "plan-verifier",
                "rewriter",
                None,
                "; ".join(d.render() for d in report.errors()),
            )
            if not report.ok
            else None
        )
    else:
        divergence = evaluate_case(case)
    if divergence is None:
        print("  did not reproduce (divergence fixed?)", file=out)
        return 0
    print(f"  REPRODUCED: {divergence.describe()}", file=out)
    return 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def run_fuzz_cli(argv: list[str], out: Optional[TextIO] = None) -> int:
    """``repro fuzz`` entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="differential fuzzing: random continuous queries × "
        "incremental/reeval/SystemX/reference oracle × metamorphic relations",
    )
    parser.add_argument("--budget", type=int, default=200,
                        help="number of fuzz iterations (default 200)")
    parser.add_argument("--seed", type=int, default=None,
                        help="session seed; drawn from OS entropy (and "
                        "printed) when omitted")
    parser.add_argument("--out", default=".fuzz",
                        help="directory for .repro.json reproducers")
    parser.add_argument("--rows-scale", type=float, default=1.0,
                        help="scale factor for generated feed sizes")
    parser.add_argument("--max-failures", type=int, default=5,
                        help="stop after this many divergences (default 5)")
    parser.add_argument("--shrink-runs", type=int, default=60,
                        help="re-execution budget for the minimizer")
    parser.add_argument("--no-metamorphic", action="store_true",
                        help="skip the metamorphic relations")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip static plan linting of generated queries")
    parser.add_argument("--fixed-axes", action="store_true",
                        help="run every query under the default axes "
                        "(workers=1, sharing on, unchunked)")
    parser.add_argument("--lockcheck", action="store_true",
                        help="run every oracle execution under ObservedLock "
                        "wrappers and fail on static/dynamic lock-order "
                        "divergence (otherwise drawn as a random axis)")
    parser.add_argument("--backend", choices=("interpreted", "compiled"),
                        default=None,
                        help="force the engine execution backend for every "
                        "oracle run (otherwise drawn as a random axis)")
    parser.add_argument("--partitions", type=int, default=None,
                        help="force the key-partitioned leg to run with this "
                        "many shard workers on every supported query "
                        "(otherwise drawn as a random axis: P in {2, 3} on "
                        "~25%% of iterations)")
    parser.add_argument("--crash", action="store_true",
                        help="run the checkpoint/kill/restore durability leg "
                        "on every iteration (otherwise drawn as a random "
                        "axis on ~20%% of iterations)")
    parser.add_argument("--replay", metavar="FILE", default=None,
                        help="re-execute a .repro.json reproducer and exit")
    args = parser.parse_args(argv)

    if args.replay is not None:
        try:
            return replay(args.replay, out=out)
        except (OSError, ReproError, ValueError) as exc:
            print(f"repro fuzz: cannot replay {args.replay}: {exc}", file=out)
            return 2

    if args.budget < 1:
        print("repro fuzz: --budget must be >= 1", file=out)
        return 2
    seed = args.seed
    if seed is None:
        import os

        seed = int.from_bytes(os.urandom(4), "little")
    session = FuzzSession(
        budget=args.budget,
        seed=seed,
        out_dir=args.out,
        rows_scale=args.rows_scale,
        metamorphic=not args.no_metamorphic,
        lint=not args.no_lint,
        vary_axes=not args.fixed_axes,
        lockcheck=args.lockcheck,
        backend=args.backend,
        partitions=args.partitions,
        crash=args.crash,
        max_failures=args.max_failures,
        shrink_runs=args.shrink_runs,
        out=out,
    )
    return session.run()
